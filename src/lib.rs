//! # smart-drilldown
//!
//! Facade crate for the *smart drill-down* workspace — a from-scratch Rust
//! reproduction of **“Interactive Data Exploration with Smart Drill-Down”**
//! (Joglekar, Garcia-Molina, Parameswaran — ICDE 2016).
//!
//! Smart drill-down is an OLAP interaction operator that expands a rule (a
//! tuple pattern with `?` wildcards) into the `k` most *interesting*
//! sub-patterns — maximizing `Σ W(r) · MCount(r, R)`, the weighted marginal
//! coverage of the rule list — instead of listing every distinct value like a
//! traditional drill-down does.
//!
//! ## Crates
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`table`] | `sdd-table` | dictionary-encoded columnar table, views, CSV, bucketization |
//! | [`datagen`] | `sdd-datagen` | synthetic retail / Marketing / Census datasets |
//! | [`core`] | `sdd-core` | rules, weighting functions, Score, the BRS optimizer, drill-down ops, sessions |
//! | [`sampling`] | `sdd-sampling` | SampleHandler, reservoir sampling, DP/convex sample-memory allocation |
//! | [`olap`] | `sdd-olap` | traditional drill-down baseline and comparison utilities |
//! | [`explorer`] | `sdd-explorer` | sampled, prefetching, CI-annotated interactive sessions |
//! | [`server`] | `sdd-server` | concurrent multi-session TCP server (line-delimited JSON, background prefetch) |
//!
//! ## Quickstart
//!
//! ```
//! use smart_drilldown::prelude::*;
//!
//! // A tiny table: three columns, a handful of rows.
//! let table = Table::from_rows(
//!     Schema::new(["Store", "Product", "Region"]).unwrap(),
//!     &[
//!         &["Walmart", "cookies", "CA-1"],
//!         &["Walmart", "cookies", "WA-5"],
//!         &["Walmart", "bicycles", "CA-1"],
//!         &["Target", "bicycles", "MA-3"],
//!         &["Target", "bicycles", "MA-3"],
//!     ],
//! ).unwrap();
//!
//! // Expand the trivial (all-?) rule into the best 2 rules under Size weighting.
//! let result = Brs::new(&SizeWeight).with_max_weight(3.0).run(&table.view(), 2);
//! assert_eq!(result.rules.len(), 2);
//! for scored in &result.rules {
//!     println!("{}  count={}", scored.rule.display(&table), scored.count);
//! }
//! ```

pub use sdd_core as core;
pub use sdd_datagen as datagen;
pub use sdd_explorer as explorer;
pub use sdd_olap as olap;
pub use sdd_sampling as sampling;
pub use sdd_server as server;
pub use sdd_table as table;

/// Commonly used items, re-exported flat for examples and tests.
pub mod prelude {
    pub use sdd_core::{
        drill_down, star_drill_down, BitsWeight, Brs, BrsResult, DrillDownKind, Rule, RuleValue,
        ScoredRule, Session, SizeMinusOne, SizeWeight, WeightFn,
    };
    pub use sdd_datagen::{census, marketing, retail};
    pub use sdd_explorer::{Explorer, ExplorerConfig};
    pub use sdd_olap::TraditionalDrillDown;
    pub use sdd_sampling::{AllocationStrategy, SampleHandler, SampleHandlerConfig};
    pub use sdd_table::{Schema, Table, TableBuilder, TableView};
}
