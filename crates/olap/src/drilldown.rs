//! The vanilla OLAP drill-down operator (paper §1).
//!
//! Drilling down on column `c` within the current filter produces one row
//! per distinct value of `c`, with its (weighted) count — "all attribute
//! values are displayed", which is precisely the scalability problem smart
//! drill-down addresses.

use sdd_core::Rule;
use sdd_table::{Table, TableView};

/// One group of a traditional drill-down: a value and its count.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Dictionary code of the value.
    pub code: u32,
    /// The value's label.
    pub label: String,
    /// (Weighted) number of covered tuples.
    pub count: f64,
}

/// The result of one traditional drill-down step.
#[derive(Debug, Clone)]
pub struct DrillDownLevel {
    /// Which column was drilled on.
    pub column: usize,
    /// One row per distinct value, ordered by descending count.
    pub groups: Vec<GroupRow>,
}

impl DrillDownLevel {
    /// Number of rows the analyst must scan.
    pub fn n_rows(&self) -> usize {
        self.groups.len()
    }
}

/// A stateful traditional drill-down over one table: maintains the current
/// filter (a conjunctive rule) and drills one column at a time. Roll-up
/// removes the most recent column.
#[derive(Debug, Clone)]
pub struct TraditionalDrillDown<'t> {
    table: &'t Table,
    filter: Rule,
    /// Drill order (column indices), most recent last.
    path: Vec<usize>,
}

impl<'t> TraditionalDrillDown<'t> {
    /// Starts with an empty filter (the whole table).
    pub fn new(table: &'t Table) -> Self {
        Self {
            table,
            filter: Rule::trivial(table.n_columns()),
            path: Vec::new(),
        }
    }

    /// The current filter rule.
    pub fn filter(&self) -> &Rule {
        &self.filter
    }

    /// Groups the current selection by `column`, listing **all** values.
    pub fn drill(&self, column: usize) -> DrillDownLevel {
        let view = self.current_view();
        drill_down_all_values(&view, column)
    }

    /// Drills on `column` and then narrows the filter to `value` (the
    /// analyst clicking one group). Returns the level that was displayed.
    pub fn drill_and_select(
        &mut self,
        column: usize,
        value: &str,
    ) -> Result<DrillDownLevel, String> {
        let level = self.drill(column);
        let code = self
            .table
            .dictionary(column)
            .code_of(value)
            .ok_or_else(|| format!("value {value:?} not present in column {column}"))?;
        self.filter = self.filter.with_value(column, code);
        self.path.push(column);
        Ok(level)
    }

    /// Rolls up the most recent drill (inverse operation). No-op at the top.
    pub fn roll_up(&mut self) {
        if let Some(col) = self.path.pop() {
            self.filter = self.filter.with_star(col);
        }
    }

    /// Tuples matching the current filter.
    pub fn current_view(&self) -> TableView<'t> {
        let table = self.table;
        let filter = self.filter.clone();
        table
            .view()
            .filter(move |row| filter.covers_row(table, row))
    }
}

/// Stateless single-level drill-down over any view.
pub fn drill_down_all_values(view: &TableView<'_>, column: usize) -> DrillDownLevel {
    let table = view.table();
    let mut counts = vec![0.0f64; table.cardinality(column)];
    for wr in view.iter() {
        counts[table.code(wr.row, column) as usize] += wr.weight;
    }
    let mut groups: Vec<GroupRow> = counts
        .into_iter()
        .enumerate()
        .filter(|(_, c)| *c > 0.0)
        .map(|(code, count)| GroupRow {
            code: code as u32,
            label: table
                .dictionary(column)
                .value_of(code as u32)
                .unwrap_or("<bad-code>")
                .to_owned(),
            count,
        })
        .collect();
    groups.sort_by(|a, b| {
        b.count
            .partial_cmp(&a.count)
            .expect("finite")
            .then(a.code.cmp(&b.code))
    });
    DrillDownLevel { column, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_table::Schema;

    fn t() -> Table {
        Table::from_rows(
            Schema::new(["Store", "Product"]).unwrap(),
            &[
                &["Walmart", "cookies"],
                &["Walmart", "soap"],
                &["Walmart", "cookies"],
                &["Target", "bicycles"],
                &["Costco", "soap"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn drill_lists_every_value_with_counts() {
        let table = t();
        let dd = TraditionalDrillDown::new(&table);
        let level = dd.drill(0);
        assert_eq!(level.n_rows(), 3);
        assert_eq!(level.groups[0].label, "Walmart");
        assert_eq!(level.groups[0].count, 3.0);
        // Ties (Target/Costco at 1) broken by code for determinism.
        assert_eq!(level.groups[1].count, 1.0);
    }

    #[test]
    fn select_narrows_then_rollup_restores() {
        let table = t();
        let mut dd = TraditionalDrillDown::new(&table);
        dd.drill_and_select(0, "Walmart").unwrap();
        assert_eq!(dd.current_view().len(), 3);
        let level = dd.drill(1);
        assert_eq!(level.n_rows(), 2); // cookies, soap within Walmart
        assert_eq!(level.groups[0].label, "cookies");
        dd.roll_up();
        assert_eq!(dd.current_view().len(), 5);
        dd.roll_up(); // no-op at the top
        assert_eq!(dd.current_view().len(), 5);
    }

    #[test]
    fn selecting_missing_value_errors() {
        let table = t();
        let mut dd = TraditionalDrillDown::new(&table);
        assert!(dd.drill_and_select(0, "Amazon").is_err());
    }

    #[test]
    fn weighted_view_weights_the_groups() {
        let table = t();
        let rows: Vec<u32> = (0..5).collect();
        let weights = vec![10.0, 1.0, 10.0, 1.0, 1.0];
        let view = TableView::with_rows_and_weights(&table, rows, weights);
        let level = drill_down_all_values(&view, 1);
        let cookies = level.groups.iter().find(|g| g.label == "cookies").unwrap();
        assert_eq!(cookies.count, 20.0);
    }

    #[test]
    fn drill_down_on_empty_view() {
        let table = t();
        let view = table.view().filter(|_| false);
        let level = drill_down_all_values(&view, 0);
        assert_eq!(level.n_rows(), 0);
    }
}
