//! # sdd-olap
//!
//! The **traditional drill-down / roll-up baseline** the paper compares
//! against (§1, §5.1), plus interaction-cost accounting.
//!
//! A traditional drill-down on column `c` lists *every* distinct value of
//! `c` (within the current filter) with its count — no selection, no
//! multi-column combinations. The paper's motivating observation is that
//! this overwhelms the analyst on high-cardinality columns and requires a
//! separate click per column; [`compare`] quantifies that by counting
//! clicks and displayed rows needed to reach a target pattern under each
//! operator.

#![warn(missing_docs)]

pub mod compare;
pub mod drilldown;

pub use compare::{smart_effort, traditional_effort, Effort};
pub use drilldown::{DrillDownLevel, GroupRow, TraditionalDrillDown};
