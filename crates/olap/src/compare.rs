//! Interaction-cost comparison: smart vs traditional drill-down (§5.1).
//!
//! The paper argues smart drill-down surfaces multi-column patterns "with a
//! single click" where the traditional operator needs one click per column
//! and forces the analyst to scan every listed value. These helpers make
//! that claim measurable: how many clicks and displayed rows does each
//! operator cost before a given target pattern is on screen?

use crate::drilldown::drill_down_all_values;
use sdd_core::{Brs, Rule, WeightFn};
use sdd_table::{Table, TableView};

/// Analyst effort: interface clicks plus rows that had to be displayed
/// (an upper bound on rows the analyst must scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Number of drill-down operations performed.
    pub clicks: usize,
    /// Total result rows displayed across those operations.
    pub rows_displayed: usize,
}

/// Effort for a **traditional** analyst to reach `target`: drill each of the
/// target's instantiated columns in ascending index order, each time
/// scanning the full value list before clicking the right group.
pub fn traditional_effort(table: &Table, target: &Rule) -> Effort {
    let mut clicks = 0usize;
    let mut rows_displayed = 0usize;
    let mut filter = Rule::trivial(table.n_columns());
    for col in target.instantiated_columns() {
        let f = filter.clone();
        let view: TableView<'_> = table.view().filter(|row| f.covers_row(table, row));
        let level = drill_down_all_values(&view, col);
        clicks += 1;
        rows_displayed += level.n_rows();
        filter = filter.with_value(col, target.code(col));
    }
    Effort {
        clicks,
        rows_displayed,
    }
}

/// Effort for a **smart drill-down** analyst to get `target` on screen:
/// repeatedly expand the displayed rule that is the largest sub-rule of the
/// target (starting from the trivial rule), `k` rows shown per expansion.
///
/// Returns `None` if `target` never appears within `max_clicks` expansions
/// (e.g. its count is too small for the optimizer to surface it).
pub fn smart_effort(
    table: &Table,
    weight: &dyn WeightFn,
    k: usize,
    target: &Rule,
    max_clicks: usize,
) -> Option<Effort> {
    let view = table.view();
    let brs = Brs::new(weight);
    let mut base = Rule::trivial(table.n_columns());
    let mut clicks = 0usize;
    let mut rows_displayed = 0usize;

    while clicks < max_clicks {
        let result = sdd_core::drill_down_with(&brs, &view, &base, k);
        clicks += 1;
        rows_displayed += result.rules.len();
        if result.rules.iter().any(|s| s.rule == *target) {
            return Some(Effort {
                clicks,
                rows_displayed,
            });
        }
        // Descend into the largest displayed sub-rule of the target.
        let next = result
            .rules
            .iter()
            .map(|s| &s.rule)
            .filter(|r| r.is_sub_rule_of(target) && r.size() > base.size())
            .max_by_key(|r| r.size())
            .cloned();
        match next {
            Some(n) => base = n,
            None => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::SizeWeight;
    use sdd_datagen::retail;

    #[test]
    fn traditional_cost_scales_with_cardinalities() {
        let t = retail(1);
        let target = Rule::from_pairs(&t, &[("Store", "Target"), ("Product", "bicycles")]).unwrap();
        let e = traditional_effort(&t, &target);
        assert_eq!(e.clicks, 2);
        // First click lists all stores (32), second lists Target's products (1).
        assert!(e.rows_displayed >= t.cardinality(0));
    }

    #[test]
    fn smart_finds_planted_pattern_in_one_click() {
        let t = retail(1);
        let target = Rule::from_pairs(&t, &[("Store", "Target"), ("Product", "bicycles")]).unwrap();
        let e = smart_effort(&t, &SizeWeight, 3, &target, 4).expect("pattern is planted");
        assert_eq!(e.clicks, 1);
        assert_eq!(e.rows_displayed, 3);
    }

    #[test]
    fn smart_beats_traditional_on_the_walkthrough() {
        let t = retail(1);
        let target =
            Rule::from_pairs(&t, &[("Product", "comforters"), ("Region", "MA-3")]).unwrap();
        let smart = smart_effort(&t, &SizeWeight, 3, &target, 4).expect("planted");
        let trad = traditional_effort(&t, &target);
        assert!(smart.rows_displayed < trad.rows_displayed);
        assert!(smart.clicks <= trad.clicks);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let t = retail(1);
        // A background pattern far too small for the optimizer to surface.
        let target = Rule::from_pairs(&t, &[("Store", "Store-29")]).unwrap();
        assert!(smart_effort(&t, &SizeWeight, 3, &target, 2).is_none());
    }

    #[test]
    fn trivial_target_costs_nothing_traditionally() {
        let t = retail(1);
        let e = traditional_effort(&t, &Rule::trivial(3));
        assert_eq!(e.clicks, 0);
        assert_eq!(e.rows_displayed, 0);
    }
}
