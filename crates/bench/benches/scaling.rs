//! Criterion companion to §5.2.3: cold-expansion cost vs table size
//! (dominated by the sample-creation scan, linear in |T|).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdd_core::{Brs, Rule, SizeWeight};
use sdd_sampling::{AllocationStrategy, SampleHandler, SampleHandlerConfig};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_cold_expand");
    group.sample_size(10);

    for n in [10_000usize, 50_000, 200_000] {
        let table = sdd_bench::datasets::census7(n);
        let trivial = Rule::trivial(table.n_columns());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let brs = Brs::new(&SizeWeight).with_max_weight(5.0);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut h = SampleHandler::new(
                    table.clone(),
                    SampleHandlerConfig {
                        capacity: 50_000,
                        min_sample_size: 5_000,
                        seed,
                        strategy: AllocationStrategy::Dp,
                    },
                );
                let s = h.get_sample(&trivial);
                std::hint::black_box(brs.run(&s.view.as_view(), 4))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
