//! Criterion companion to Figure 5: expansion time vs the `mw` parameter
//! on the Marketing dataset (Size and Bits weightings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdd_core::{BitsWeight, Brs, SizeWeight, WeightFn};

fn bench_mw(c: &mut Criterion) {
    let table = sdd_bench::datasets::marketing7();
    let view = table.view();
    let mut group = c.benchmark_group("fig5_mw");
    group.sample_size(10);

    for (name, weight) in [
        ("size", &SizeWeight as &dyn WeightFn),
        ("bits", &BitsWeight as &dyn WeightFn),
    ] {
        for mw in [2.0f64, 5.0, 10.0, 20.0] {
            group.bench_with_input(BenchmarkId::new(name, mw as u64), &mw, |b, &mw| {
                let brs = Brs::new(weight).with_max_weight(mw);
                b.iter(|| std::hint::black_box(brs.run(&view, 4)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mw);
criterion_main!(benches);
