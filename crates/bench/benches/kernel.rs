//! Kernel-vs-scalar micro-benchmark: one best-marginal search (Algorithm 2)
//! over a 100k-row census-shaped table, comparing the historical
//! row-at-a-time implementation against the columnar kernel (scalar and
//! parallel). `exp_kernel` (in `src/bin`) emits the same comparison as
//! `BENCH_kernel.json` with rows/sec figures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdd_core::{
    find_best_marginal_rule, find_best_marginal_rule_rowwise, SearchOptions, SizeWeight,
};

fn bench_kernel(c: &mut Criterion) {
    let table = sdd_bench::datasets::census7(100_000);
    let view = table.view();
    let cov = vec![0.0f64; view.len()];
    let mw = 5.0;

    let mut group = c.benchmark_group("kernel_census7_100k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(view.len() as u64));

    group.bench_function("rowwise_scalar", |b| {
        let opts = SearchOptions::new(mw);
        b.iter(|| {
            std::hint::black_box(find_best_marginal_rule_rowwise(
                &view,
                &SizeWeight,
                &cov,
                &opts,
            ))
        })
    });

    group.bench_function("columnar_scalar", |b| {
        let mut opts = SearchOptions::new(mw);
        opts.parallel = false;
        b.iter(|| std::hint::black_box(find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)))
    });

    group.bench_function("columnar_parallel", |b| {
        let mut opts = SearchOptions::new(mw);
        opts.parallel = true;
        b.iter(|| std::hint::black_box(find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)))
    });

    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
