//! Micro-benchmarks of the optimizer's building blocks: one best-marginal
//! search (Algorithm 2) and one rule-list scoring pass.

use criterion::{criterion_group, criterion_main, Criterion};
use sdd_core::{find_best_marginal_rule, score_list, Rule, SearchOptions, SizeWeight};

fn bench_micro(c: &mut Criterion) {
    let table = sdd_bench::datasets::retail();
    let view = table.view();
    let cov = vec![0.0f64; view.len()];

    c.bench_function("find_best_marginal_rule/retail", |b| {
        let opts = SearchOptions::new(3.0);
        b.iter(|| std::hint::black_box(find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)))
    });

    let rules = vec![
        Rule::from_pairs(&table, &[("Store", "Target"), ("Product", "bicycles")]).unwrap(),
        Rule::from_pairs(&table, &[("Product", "comforters"), ("Region", "MA-3")]).unwrap(),
        Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap(),
    ];
    c.bench_function("score_list/retail_3_rules", |b| {
        b.iter(|| std::hint::black_box(score_list(&view, &SizeWeight, &rules)))
    });

    c.bench_function("rule_coverage_scan/retail", |b| {
        let rule = &rules[2];
        b.iter(|| {
            let mut n = 0u32;
            for row in 0..table.n_rows() as u32 {
                if rule.covers_row(&table, row) {
                    n += 1;
                }
            }
            std::hint::black_box(n)
        })
    });
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
