//! Criterion companion to ablation A1: Algorithm 2 with and without the
//! `mw`/`H` upper-bound prune.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdd_core::{Brs, SizeWeight};

fn bench_pruning(c: &mut Criterion) {
    let table = sdd_bench::datasets::marketing7();
    let view = table.view();
    let mut group = c.benchmark_group("ablation_pruning");
    group.sample_size(10);

    for pruning in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(pruning),
            &pruning,
            |b, &pruning| {
                let brs = Brs::new(&SizeWeight)
                    .with_max_weight(5.0)
                    .with_pruning(pruning);
                b.iter(|| std::hint::black_box(brs.run(&view, 4)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
