//! Criterion companion to Figure 8(a): BRS cost on in-memory samples of
//! varying `minSS`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdd_core::{Brs, Rule, SizeWeight};
use sdd_sampling::{AllocationStrategy, SampleHandler, SampleHandlerConfig};

fn bench_minss(c: &mut Criterion) {
    let table = sdd_bench::datasets::census7(100_000);
    let trivial = Rule::trivial(table.n_columns());
    let mut group = c.benchmark_group("fig8_minss");
    group.sample_size(10);

    for minss in [1_000usize, 2_000, 5_000, 8_000] {
        // Warm the sample once outside the timer; measure Find + BRS.
        let mut handler = SampleHandler::new(
            table.clone(),
            SampleHandlerConfig {
                capacity: 50_000.max(minss),
                min_sample_size: minss,
                seed: 5,
                strategy: AllocationStrategy::Dp,
            },
        );
        let _ = handler.get_sample(&trivial);
        group.bench_with_input(BenchmarkId::from_parameter(minss), &minss, |b, _| {
            let brs = Brs::new(&SizeWeight).with_max_weight(5.0);
            b.iter(|| {
                let s = handler.get_sample(&trivial);
                std::hint::black_box(brs.run(&s.view.as_view(), 4))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minss);
criterion_main!(benches);
