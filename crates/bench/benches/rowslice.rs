//! Row-sliced vs task-per-group kernel micro-benchmark on the
//! few-free-columns regime (census-shaped, 3 columns): with only ~3
//! independent column/group tasks, the PR-1 parallel kernel is capped near
//! 3 workers while the row-sliced mode fans every (unit × chunk) pair out
//! across the machine. `exp_rowslice` (in `src/bin`) sweeps explicit
//! thread counts and emits `BENCH_rowslice.json`; this harness records the
//! same comparison at ambient parallelism plus pinned 1/4-thread points.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdd_core::{find_best_marginal_rule, RowSlice, SearchOptions, SizeWeight};

fn bench_rowslice(c: &mut Criterion) {
    let table = sdd_bench::datasets::census3(100_000);
    let view = table.view();
    let cov = vec![0.0f64; view.len()];
    let mw = 5.0;

    let mut group = c.benchmark_group("rowslice_census3_100k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(view.len() as u64));

    let run = |row_slice: RowSlice| {
        let mut opts = SearchOptions::new(mw);
        opts.parallel = true;
        opts.parallel_min_rows = 1;
        opts.row_slice = row_slice;
        find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)
    };

    group.bench_function("task_per_group_ambient", |b| {
        b.iter(|| std::hint::black_box(run(RowSlice::Off)))
    });
    group.bench_function("row_sliced_ambient", |b| {
        b.iter(|| std::hint::black_box(run(RowSlice::Force(16))))
    });
    for threads in [1usize, 4] {
        std::env::set_var("SDD_THREADS", threads.to_string());
        group.bench_function(&format!("row_sliced_t{threads}"), |b| {
            b.iter(|| std::hint::black_box(run(RowSlice::Force(16))))
        });
        std::env::remove_var("SDD_THREADS");
    }

    group.finish();
}

criterion_group!(benches, bench_rowslice);
criterion_main!(benches);
