//! # sdd-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5). See DESIGN.md §4 for the experiment index.
//!
//! * Experiment binaries live in `src/bin/exp_*.rs`; each prints a
//!   human-readable report and writes CSV under `target/experiments/`.
//! * Criterion micro-benchmarks live in `benches/`.
//!
//! Environment knobs (all optional):
//!
//! * `SDD_CENSUS_ROWS` — row count for the census-shaped dataset
//!   (default 250 000; the paper's full scale is 2 458 285),
//! * `SDD_REPS` — repetitions per timing point (default 5; paper uses
//!   10–50).

#![warn(missing_docs)]

pub mod datasets;
pub mod report;
pub mod timing;

/// Reads `SDD_CENSUS_ROWS` (default 250k).
pub fn census_rows() -> usize {
    std::env::var("SDD_CENSUS_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250_000)
}

/// Reads `SDD_REPS` (default 5).
pub fn reps() -> usize {
    std::env::var("SDD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}
