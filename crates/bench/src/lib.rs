//! # sdd-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5). See DESIGN.md §4 for the experiment index.
//!
//! * Experiment binaries live in `src/bin/exp_*.rs`; each prints a
//!   human-readable report and writes CSV under `target/experiments/`.
//! * Criterion micro-benchmarks live in `benches/`.
//!
//! Environment knobs (all optional):
//!
//! * `SDD_CENSUS_ROWS` — row count for the census-shaped dataset
//!   (default 250 000; the paper's full scale is 2 458 285),
//! * `SDD_REPS` — repetitions per timing point (default 5; paper uses
//!   10–50).

#![warn(missing_docs)]

pub mod datasets;
pub mod report;
pub mod timing;

/// Reads `SDD_CENSUS_ROWS` (default 250k).
pub fn census_rows() -> usize {
    std::env::var("SDD_CENSUS_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250_000)
}

/// Reads `SDD_REPS` (default 5).
pub fn reps() -> usize {
    std::env::var("SDD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Hardware threads on this host (1 when the query fails). Every `BENCH_*`
/// artifact records this so timings from differently-sized machines are
/// never compared as like-for-like.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// The active SIMD dispatch level (`"avx2"` or `"scalar"`) — recorded in
/// every `BENCH_*` artifact so a speedup claim can be tied to the kernels
/// that actually ran (see [`sdd_core::accel`]).
pub fn simd_level() -> &'static str {
    sdd_core::accel::feature_level()
}

/// The shared host-provenance fragment for `BENCH_*` JSON artifacts:
/// `"host_parallelism": N,\n  "simd": "<level>",` (no trailing newline,
/// two-space indent to slot into the top-level object).
pub fn host_json_fields() -> String {
    format!(
        "  \"host_parallelism\": {},\n  \"simd\": \"{}\",",
        host_parallelism(),
        simd_level()
    )
}
