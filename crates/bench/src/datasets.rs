//! Shared dataset construction for the experiments, matching the paper's
//! setup: "in all our experiments, we restrict the tables to the first 7
//! columns" (§5).

use sdd_table::Table;
use std::sync::Arc;

/// The walkthrough retail table (6000 rows, 3 columns + Sales).
pub fn retail() -> Arc<Table> {
    Arc::new(sdd_datagen::retail(42))
}

/// The Marketing dataset projected to its first 7 columns (paper §5).
pub fn marketing7() -> Arc<Table> {
    Arc::new(sdd_datagen::marketing(2016).project_first_columns(7))
}

/// The full 14-column Marketing dataset.
pub fn marketing_full() -> Arc<Table> {
    Arc::new(sdd_datagen::marketing(2016))
}

/// A census-shaped dataset with `n` rows, projected to 7 columns.
pub fn census7(n: usize) -> Arc<Table> {
    Arc::new(sdd_datagen::census(n, 1990).project_first_columns(7))
}

/// A census-shaped dataset with `n` rows, projected to 3 columns — the
/// few-free-columns regime where task-per-column parallelism cannot occupy
/// the machine and the kernel's row-sliced mode matters (`exp_rowslice`).
pub fn census3(n: usize) -> Arc<Table> {
    Arc::new(sdd_datagen::census(n, 1990).project_first_columns(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        assert_eq!(retail().n_rows(), 6000);
        let m = marketing7();
        assert_eq!(m.n_rows(), 9409);
        assert_eq!(m.n_columns(), 7);
        let c = census7(1000);
        assert_eq!(c.n_rows(), 1000);
        assert_eq!(c.n_columns(), 7);
        let c3 = census3(1000);
        assert_eq!(c3.n_rows(), 1000);
        assert_eq!(c3.n_columns(), 3);
    }
}
