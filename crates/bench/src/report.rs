//! Report output: aligned text tables on stdout plus CSV files under
//! `target/experiments/` so EXPERIMENTS.md can cite exact numbers.

use std::fs;
use std::path::PathBuf;

/// Directory all experiment CSVs are written to.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// Writes `rows` (first row = header) as CSV to `target/experiments/<name>`.
pub fn write_csv(name: &str, rows: &[Vec<String>]) -> PathBuf {
    let path = out_dir().join(name);
    let mut out = String::new();
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .map(|f| {
                if f.contains(',') || f.contains('"') {
                    format!("\"{}\"", f.replace('"', "\"\""))
                } else {
                    f.clone()
                }
            })
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    fs::write(&path, out).expect("can write experiment CSV");
    path
}

/// Prints `rows` (first row = header) as an aligned text table.
pub fn print_table(rows: &[Vec<String>]) {
    let n = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; n];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    for (ri, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<w$}", cell, w = widths[i]));
        }
        println!("{}", line.trim_end());
        if ri == 0 {
            println!(
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (n.saturating_sub(1)))
            );
        }
    }
}

/// Convenience: turn anything displayable into a row of strings.
#[macro_export]
macro_rules! row {
    ($($x:expr),* $(,)?) => {
        vec![$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_on_disk() {
        let rows = vec![row!["a", "b"], row![1, 2.5], row!["x,y", "q\"q"]];
        let path = write_csv("unit_test.csv", &rows);
        let text = fs::read_to_string(path).unwrap();
        assert!(text.starts_with("a,b\n1,2.5\n"));
        assert!(text.contains("\"x,y\""));
        assert!(text.contains("\"q\"\"q\""));
    }

    #[test]
    fn row_macro_formats() {
        let r = row![1, "two", 3.0];
        assert_eq!(r, vec!["1", "two", "3"]);
    }
}
