//! Experiment: paper Figures 6–7 — alternative weighting functions on the
//! Marketing dataset.
//!
//! * Fig. 6 (Bits): binary columns like Sex stop dominating; rules shift to
//!   higher-cardinality columns (MaritalStatus / Occupation / YearsInBayArea).
//! * Fig. 7 (max(0, Size−1)): no single-column rules can appear; every
//!   displayed rule has ≥ 2 instantiated columns.

use sdd_bench::report::write_csv;
use sdd_bench::row;
use sdd_core::{BitsWeight, Session, SizeMinusOne, SizeWeight};

fn main() {
    let table = sdd_bench::datasets::marketing7();
    let sex = table.schema().index_of("Sex").unwrap();
    let mut rows = vec![row!["figure", "rule", "count", "weight"]];

    // Reference: Size weighting (Figure 1) for contrast.
    let mut size_session = Session::new(table.clone(), Box::new(SizeWeight), 4);
    size_session.set_max_weight(5.0);
    size_session.expand(&[]).unwrap();
    let size_uses_sex = size_session
        .root()
        .children()
        .iter()
        .filter(|n| !n.rule.is_star(sex))
        .count();

    // Figure 6: Bits weighting, mw = 20 (paper §5).
    let mut session = Session::new(table.clone(), Box::new(BitsWeight), 4);
    session.set_max_weight(20.0);
    session.expand(&[]).unwrap();
    println!("== Figure 6: Bits weighting ==");
    println!("{}", session.render());
    let bits_uses_sex = session
        .root()
        .children()
        .iter()
        .filter(|n| !n.rule.is_star(sex))
        .count();
    for n in session.root().children() {
        rows.push(row!["fig6-bits", n.rule.display(&table), n.count, n.weight]);
    }
    // The paper's observation: Bits weighting moves away from the binary
    // Gender column relative to Size weighting.
    assert!(
        bits_uses_sex <= size_uses_sex,
        "Bits ({bits_uses_sex} Sex rules) should rely on Sex no more than Size ({size_uses_sex})"
    );

    // Figure 7: max(0, Size−1) weighting.
    let mut session = Session::new(table.clone(), Box::new(SizeMinusOne), 4);
    session.set_max_weight(4.0);
    session.expand(&[]).unwrap();
    println!("== Figure 7: max(0, Size−1) weighting ==");
    println!("{}", session.render());
    for n in session.root().children() {
        assert!(
            n.rule.size() >= 2,
            "size-1 rules have zero weight and must not appear: {:?}",
            n.rule
        );
        rows.push(row![
            "fig7-size-1",
            n.rule.display(&table),
            n.count,
            n.weight
        ]);
    }
    println!("Every Figure-7 rule instantiates ≥ 2 columns ✓");

    let path = write_csv("fig6_7_weights.csv", &rows);
    println!("CSV: {}", path.display());
}
