//! Experiment: paper Figure 4 — a *regular* drill-down on Age, shown two
//! ways, verifying the paper's claim that "a regular drill down is a
//! special case of smart drill-down with the right weighting function and
//! number of rules" (§5.1.2).

use sdd_bench::report::{print_table, write_csv};
use sdd_bench::row;
use sdd_core::{drill_down, Rule, TraditionalEmulation};
use sdd_olap::drilldown::drill_down_all_values;

fn main() {
    let table = sdd_bench::datasets::marketing7();
    let age = table.schema().index_of("Age").expect("column exists");

    // Baseline OLAP operator.
    let olap = drill_down_all_values(&table.view(), age);
    println!("== Figure 4 (OLAP baseline): drill-down on Age ==");
    let mut rows = vec![row!["operator", "Age", "count"]];
    for g in &olap.groups {
        rows.push(row!["olap", g.label, g.count]);
    }

    // Smart drill-down emulation: k = |Age values|, indicator weight on Age.
    let weight = TraditionalEmulation::new(age);
    let k = table.cardinality(age);
    let smart = drill_down(&table.view(), &weight, &Rule::trivial(table.n_columns()), k);
    println!("== Figure 4 (smart emulation): W = 1[Age instantiated], k = {k} ==");
    for s in &smart.rules {
        rows.push(row!["smart-emulation", s.rule.display(&table), s.count]);
    }
    print_table(&rows);

    // Verify the equivalence: same groups, same counts.
    assert_eq!(
        smart.rules.len(),
        olap.groups.len(),
        "one rule per Age value"
    );
    for s in &smart.rules {
        // Every emulated rule instantiates exactly Age.
        assert!(!s.rule.is_star(age));
        assert_eq!(
            s.rule.size(),
            1,
            "no other column instantiated: {:?}",
            s.rule
        );
        let code = s.rule.code(age);
        let olap_count = olap
            .groups
            .iter()
            .find(|g| g.code == code)
            .map(|g| g.count)
            .expect("value present in baseline");
        assert_eq!(s.count, olap_count);
    }
    println!("\nEmulation matches the OLAP baseline group-for-group ✓");
    let path = write_csv("fig4_regular.csv", &rows);
    println!("CSV: {}", path.display());
}
