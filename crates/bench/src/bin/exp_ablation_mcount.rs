//! Ablation A4: MCount vs plain Count in the objective (§2.1).
//!
//! The paper motivates MCount with: "if we had defined total score as
//! Σ Count(r)·W(r), then our optimal rule-list could contain rules that
//! repeatedly refer to the most 'summarizable' part of the table". This
//! harness builds the naïve Count-objective top-k and compares table
//! coverage and redundancy against BRS's MCount-driven selection.

use rustc_hash::FxHashMap;
use sdd_bench::report::{print_table, write_csv};
use sdd_bench::row;
use sdd_core::{Brs, Rule, SizeWeight, WeightFn};
use sdd_table::Table;

const K: usize = 4;
const MAX_SIZE: usize = 3;

fn main() {
    let mut rows = vec![row![
        "dataset",
        "objective",
        "coverage_pct",
        "avg_pairwise_overlap_pct",
        "rules"
    ]];

    for (name, table) in [
        ("retail", sdd_bench::datasets::retail()),
        ("marketing", sdd_bench::datasets::marketing7()),
    ] {
        let mcount = Brs::new(&SizeWeight)
            .with_max_weight(MAX_SIZE as f64)
            .with_max_rule_size(MAX_SIZE)
            .run(&table.view(), K);
        let mcount_rules: Vec<Rule> = mcount.rules.iter().map(|s| s.rule.clone()).collect();

        let count_rules = naive_count_topk(&table, &SizeWeight, K);

        for (objective, rules) in [("mcount", &mcount_rules), ("plain-count", &count_rules)] {
            let cov = coverage_fraction(&table, rules);
            let overlap = avg_pairwise_overlap(&table, rules);
            rows.push(row![
                name,
                objective,
                format!("{:.1}", 100.0 * cov),
                format!("{:.1}", 100.0 * overlap),
                rules
                    .iter()
                    .map(|r| r.display(&table))
                    .collect::<Vec<_>>()
                    .join(" | ")
            ]);
        }

        // The paper's point, asserted: MCount covers at least as much and
        // overlaps no more.
        let m_cov = coverage_fraction(&table, &mcount_rules);
        let c_cov = coverage_fraction(&table, &count_rules);
        let m_overlap = avg_pairwise_overlap(&table, &mcount_rules);
        let c_overlap = avg_pairwise_overlap(&table, &count_rules);
        assert!(
            m_cov + 1e-9 >= c_cov,
            "{name}: MCount coverage below plain Count"
        );
        assert!(
            m_overlap <= c_overlap + 1e-9,
            "{name}: MCount selection more redundant than plain Count"
        );
    }

    print_table(&rows);
    println!("\nMCount selections cover ≥ and overlap ≤ the plain-Count selections ✓");
    let path = write_csv("ablation_mcount.csv", &rows);
    println!("CSV: {}", path.display());
}

/// Top-k distinct rules by `W(r)·Count(r)` — the naïve objective the paper
/// warns against. Enumerates all rules of size ≤ MAX_SIZE with support.
fn naive_count_topk(table: &Table, weight: &dyn WeightFn, k: usize) -> Vec<Rule> {
    let n_cols = table.n_columns();
    let mut counts: FxHashMap<Rule, f64> = FxHashMap::default();
    let col_subsets: Vec<Vec<usize>> = (1u32..(1 << n_cols))
        .filter(|m| (m.count_ones() as usize) <= MAX_SIZE)
        .map(|m| (0..n_cols).filter(|&c| m & (1 << c) != 0).collect())
        .collect();
    for row in 0..table.n_rows() as u32 {
        for cols in &col_subsets {
            *counts
                .entry(Rule::from_row_columns(table, row, cols))
                .or_insert(0.0) += 1.0;
        }
    }
    let mut scored: Vec<(f64, Rule)> = counts
        .into_iter()
        .map(|(r, c)| (weight.weight(&r, table) * c, r))
        .collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("finite")
            .then(a.1.codes().cmp(b.1.codes()))
    });
    scored.into_iter().take(k).map(|(_, r)| r).collect()
}

/// Fraction of the table covered by at least one rule.
fn coverage_fraction(table: &Table, rules: &[Rule]) -> f64 {
    if table.n_rows() == 0 {
        return 0.0;
    }
    let covered = (0..table.n_rows() as u32)
        .filter(|&row| rules.iter().any(|r| r.covers_row(table, row)))
        .count();
    covered as f64 / table.n_rows() as f64
}

/// Average pairwise Jaccard overlap of the rules' coverage sets.
fn avg_pairwise_overlap(table: &Table, rules: &[Rule]) -> f64 {
    if rules.len() < 2 {
        return 0.0;
    }
    let sets: Vec<Vec<bool>> = rules
        .iter()
        .map(|r| {
            (0..table.n_rows() as u32)
                .map(|row| r.covers_row(table, row))
                .collect()
        })
        .collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..sets.len() {
        for j in i + 1..sets.len() {
            let inter = sets[i]
                .iter()
                .zip(&sets[j])
                .filter(|(a, b)| **a && **b)
                .count();
            let union = sets[i]
                .iter()
                .zip(&sets[j])
                .filter(|(a, b)| **a || **b)
                .count();
            if union > 0 {
                total += inter as f64 / union as f64;
            }
            pairs += 1;
        }
    }
    total / pairs as f64
}
