//! Experiment: §5.1's comparison claim — smart drill-down surfaces
//! multi-column patterns with far fewer clicks and far fewer displayed rows
//! than traditional drill-down.
//!
//! For each planted/known pattern we measure both operators' analyst
//! effort (clicks + rows displayed) until the pattern is on screen.

use sdd_bench::report::{print_table, write_csv};
use sdd_bench::row;
use sdd_core::{Rule, SizeWeight};
use sdd_olap::{smart_effort, traditional_effort};

fn main() {
    let retail = sdd_bench::datasets::retail();
    let marketing = sdd_bench::datasets::marketing7();

    let mut rows = vec![row![
        "dataset",
        "target",
        "smart_clicks",
        "smart_rows",
        "trad_clicks",
        "trad_rows"
    ]];

    let retail_targets = [
        vec![("Store", "Target"), ("Product", "bicycles")],
        vec![("Product", "comforters"), ("Region", "MA-3")],
        vec![("Store", "Walmart"), ("Product", "cookies")],
        vec![("Store", "Walmart"), ("Region", "CA-1")],
    ];
    for pairs in &retail_targets {
        measure(&retail, "retail", pairs, &mut rows);
    }

    let marketing_targets = [
        vec![("Sex", "Female"), ("YearsInBayArea", ">10years")],
        vec![("Sex", "Male"), ("YearsInBayArea", ">10years")],
    ];
    for pairs in &marketing_targets {
        measure(&marketing, "marketing", pairs, &mut rows);
    }

    print_table(&rows);

    // The headline claim must hold on every measured target.
    for r in rows.iter().skip(1) {
        let (sc, sr): (usize, usize) = (r[2].parse().unwrap(), r[3].parse().unwrap());
        let (tc, tr): (usize, usize) = (r[4].parse().unwrap(), r[5].parse().unwrap());
        assert!(sc <= tc, "smart needed more clicks on {}", r[1]);
        assert!(sr < tr, "smart displayed more rows on {}", r[1]);
    }
    println!("\nSmart drill-down dominated traditional drill-down on every target ✓");

    let path = write_csv("vs_traditional.csv", &rows);
    println!("CSV: {}", path.display());
}

fn measure(
    table: &sdd_table::Table,
    dataset: &str,
    pairs: &[(&str, &str)],
    rows: &mut Vec<Vec<String>>,
) {
    let target = Rule::from_pairs(table, pairs).expect("target values exist");
    let smart = smart_effort(table, &SizeWeight, 4, &target, 6)
        .unwrap_or_else(|| panic!("smart drill-down never surfaced {pairs:?}"));
    let trad = traditional_effort(table, &target);
    rows.push(row![
        dataset,
        target.display(table),
        smart.clicks,
        smart.rows_displayed,
        trad.clicks,
        trad.rows_displayed
    ]);
}
