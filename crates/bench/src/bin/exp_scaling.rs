//! Experiment: §5.2.3 — scaling behaviour: runtime ≈ a·|T| + b·minSS.
//!
//! Sweeps the census table size, measuring (i) the *cold* expansion (one
//! Create scan + BRS on the sample) and (ii) the *warm* expansion (sample
//! already in memory). The paper's claims, reproduced as assertions:
//!
//! * cold time grows linearly in |T| (the a·|T| scan term dominates at
//!   scale),
//! * warm time is roughly independent of |T| (only the b·minSS term).
//!
//! A least-squares fit of cold-time vs |T| is printed as (a, b).

use sdd_bench::report::{print_table, write_csv};
use sdd_bench::{row, timing};
use sdd_core::{Brs, Rule, SizeWeight};
use sdd_sampling::{AllocationStrategy, SampleHandler, SampleHandlerConfig};

fn main() {
    let reps = sdd_bench::reps();
    let max_rows = sdd_bench::census_rows().max(200_000);
    let sizes: Vec<usize> = [
        10_000, 25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_458_285,
    ]
    .into_iter()
    .filter(|&n| n <= max_rows)
    .collect();
    println!("Scaling protocol: census sizes {sizes:?}, minSS=5000, k=4, {reps} reps\n");

    let mut rows = vec![row!["n_rows", "cold_ms", "warm_ms"]];
    let mut points: Vec<(f64, f64)> = Vec::new();

    for &n in &sizes {
        let table = sdd_bench::datasets::census7(n);
        let trivial = Rule::trivial(table.n_columns());
        let brs = Brs::new(&SizeWeight).with_max_weight(5.0);

        // Cold: fresh handler each rep → Create scan + BRS.
        let mut seed = 0u64;
        let cold = timing::time_mean(reps, || {
            seed += 1;
            let mut h = SampleHandler::new(
                table.clone(),
                SampleHandlerConfig {
                    capacity: 50_000,
                    min_sample_size: 5_000,
                    seed,
                    strategy: AllocationStrategy::Dp,
                },
            );
            let s = h.get_sample(&trivial);
            std::hint::black_box(brs.run(&s.view.as_view(), 4));
        });

        // Warm: reuse one handler; after the first call every expansion is
        // a Find.
        let mut h = SampleHandler::new(table.clone(), SampleHandlerConfig::default());
        let _ = h.get_sample(&trivial);
        let warm = timing::time_mean(reps, || {
            let s = h.get_sample(&trivial);
            std::hint::black_box(brs.run(&s.view.as_view(), 4));
        });

        rows.push(row![n, format!("{cold:.1}"), format!("{warm:.1}")]);
        points.push((n as f64, cold));
    }

    print_table(&rows);

    // Least-squares fit cold ≈ a·n + c.
    let (a, c) = linear_fit(&points);
    println!("\ncold_ms ≈ {a:.6}·|T| + {c:.1}   (the paper's a·|T| + b·minSS with fixed minSS)");

    // Shape checks.
    if points.len() >= 3 {
        let first = points.first().expect("non-empty").1;
        let last = points.last().expect("non-empty").1;
        assert!(
            last > first,
            "cold expansion should get slower with table size ({first:.1} → {last:.1} ms)"
        );
    }
    let warm_values: Vec<f64> = rows
        .iter()
        .skip(1)
        .map(|r| r[2].parse::<f64>().expect("numeric"))
        .collect();
    let warm_min = warm_values.iter().cloned().fold(f64::INFINITY, f64::min);
    let warm_max = warm_values.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "warm expansion stays within [{warm_min:.1}, {warm_max:.1}] ms across sizes (paper: depends on minSS, not |T|)"
    );

    let path = write_csv("scaling.csv", &rows);
    println!("CSV: {}", path.display());
}

fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let c = (sy - a * sx) / n;
    (a, c)
}
