//! Ablation A3: DP vs convex vs uniform sample-memory allocation —
//! probability that the next drill-down is served from memory (the §4.1
//! objective), swept over memory budgets.
//!
//! Two workloads: random two-level trees, and a realistic tree derived
//! from the retail walkthrough (children = displayed rules, probabilities
//! ∝ counts, selectivities = count/|T|).

use rand::{rngs::StdRng, Rng, SeedableRng};
use sdd_bench::report::{print_table, write_csv};
use sdd_bench::row;
use sdd_core::{Brs, SizeWeight};
use sdd_sampling::{solve_convex, solve_dp, solve_uniform, AllocationProblem};

fn main() {
    let mut rows = vec![row!["workload", "capacity", "dp", "convex", "uniform"]];

    // --- Random trees, averaged ---
    let trials = 40usize;
    for capacity in [1_000usize, 2_000, 4_000, 8_000] {
        let mut sums = [0.0f64; 3];
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..trials {
            let p = random_problem(&mut rng, capacity);
            sums[0] += solve_dp(&p).value;
            sums[1] += solve_convex(&p).value;
            sums[2] += solve_uniform(&p).value;
        }
        rows.push(row![
            "random-trees",
            capacity,
            format!("{:.3}", sums[0] / trials as f64),
            format!("{:.3}", sums[1] / trials as f64),
            format!("{:.3}", sums[2] / trials as f64)
        ]);
    }

    // --- Retail-derived tree ---
    let table = sdd_bench::datasets::retail();
    let result = Brs::new(&SizeWeight)
        .with_max_weight(3.0)
        .run(&table.view(), 4);
    let total: f64 = result.rules.iter().map(|s| s.count).sum();
    let n_total = table.n_rows() as f64;
    for capacity in [2_000usize, 5_000, 10_000, 20_000] {
        let problem = AllocationProblem {
            parent: std::iter::once(None)
                .chain(result.rules.iter().map(|_| Some(0)))
                .collect(),
            prob: std::iter::once(0.0)
                .chain(result.rules.iter().map(|s| s.count / total))
                .collect(),
            selectivity: std::iter::once(1.0)
                .chain(result.rules.iter().map(|s| (s.count / n_total).min(1.0)))
                .collect(),
            capacity,
            min_ss: 1_000,
        };
        rows.push(row![
            "retail-tree",
            capacity,
            format!("{:.3}", solve_dp(&problem).value),
            format!("{:.3}", solve_convex(&problem).value),
            format!("{:.3}", solve_uniform(&problem).value)
        ]);
    }

    print_table(&rows);

    // DP must never lose to either alternative on the step objective.
    for r in rows.iter().skip(1) {
        let dp: f64 = r[2].parse().unwrap();
        let cx: f64 = r[3].parse().unwrap();
        let un: f64 = r[4].parse().unwrap();
        assert!(dp + 1e-9 >= cx, "{}: dp {dp} < convex {cx}", r[0]);
        assert!(dp + 1e-9 >= un, "{}: dp {dp} < uniform {un}", r[0]);
    }
    println!("\nDP ≥ convex and DP ≥ uniform on every point ✓ (paper §4.2's hinge caveat)");

    let path = write_csv("ablation_allocation.csv", &rows);
    println!("CSV: {}", path.display());
}

fn random_problem(rng: &mut StdRng, capacity: usize) -> AllocationProblem {
    let n_leaves = rng.gen_range(2..6);
    let mut parent = vec![None];
    let mut prob = vec![0.0f64];
    let mut sel = vec![1.0f64];
    let mut remaining = 1.0f64;
    for i in 0..n_leaves {
        parent.push(Some(0));
        let p = if i + 1 == n_leaves {
            remaining
        } else {
            rng.gen_range(0.0..remaining)
        };
        remaining -= p;
        prob.push(p);
        sel.push(rng.gen_range(0.05..0.9));
    }
    AllocationProblem {
        parent,
        prob,
        selectivity: sel,
        capacity,
        min_ss: 1_000,
    }
}
