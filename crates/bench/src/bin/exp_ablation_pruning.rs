//! Ablation A1: how much does Algorithm 2's `mw`/`H` upper-bound pruning
//! buy over plain support-based a-priori?
//!
//! Runs the same expansions with pruning on and off, comparing wall time
//! and the number of candidate rules whose marginal values were counted.
//! The answers must be identical (the prune is exact); only the work should
//! differ.

use sdd_bench::report::{print_table, write_csv};
use sdd_bench::{row, timing};
use sdd_core::{BitsWeight, Brs, SizeWeight, WeightFn};

fn main() {
    let reps = sdd_bench::reps();
    let retail = sdd_bench::datasets::retail();
    let marketing = sdd_bench::datasets::marketing7();

    let mut rows = vec![row![
        "dataset",
        "weight",
        "pruning",
        "mean_ms",
        "counted_candidates",
        "pruned_candidates"
    ]];

    for (dataset, table, weight, mw) in [
        ("retail", &retail, &SizeWeight as &dyn WeightFn, 3.0),
        ("marketing", &marketing, &SizeWeight as &dyn WeightFn, 5.0),
        ("marketing", &marketing, &BitsWeight as &dyn WeightFn, 20.0),
    ] {
        let mut answers = Vec::new();
        for pruning in [true, false] {
            let brs = Brs::new(weight).with_max_weight(mw).with_pruning(pruning);
            let view = table.view();
            let ms = timing::time_mean(reps, || {
                std::hint::black_box(brs.run(&view, 4));
            });
            let result = brs.run(&view, 4);
            rows.push(row![
                dataset,
                weight.name(),
                pruning,
                format!("{ms:.1}"),
                result.stats.counted,
                result.stats.pruned
            ]);
            answers.push(result.rules_only());
        }
        assert_eq!(
            answers[0],
            answers[1],
            "{dataset}/{}: pruning changed the answer!",
            weight.name()
        );
    }

    print_table(&rows);

    // The prune must reduce counted candidates on every workload.
    for pair in rows[1..].chunks(2) {
        let with: usize = pair[0][4].parse().unwrap();
        let without: usize = pair[1][4].parse().unwrap();
        assert!(
            with <= without,
            "pruning counted more candidates ({with} vs {without})?!"
        );
        println!(
            "{}/{}: pruning counted {with} vs {without} candidates ({:.1}× reduction)",
            pair[0][0],
            pair[0][1],
            without as f64 / with.max(1) as f64
        );
    }

    let path = write_csv("ablation_pruning.csv", &rows);
    println!("CSV: {}", path.display());
}
