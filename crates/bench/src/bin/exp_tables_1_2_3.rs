//! Experiment: paper Tables 1–3 — the department-store walkthrough.
//!
//! Expands the trivial rule (k = 3, Size weighting), then drills into the
//! Walmart rule, printing the paper's exact tables. The planted counts are
//! asserted so a regression is loud.

use sdd_bench::report::{print_table, write_csv};
use sdd_bench::row;
use sdd_core::{Session, SizeWeight};

fn main() {
    let table = sdd_bench::datasets::retail();
    let mut session = Session::new(table.clone(), Box::new(SizeWeight), 3);

    println!("== Table 1: initial summary ==");
    println!("{}", session.render());

    session.expand(&[]).expect("root expansion");
    println!("== Table 2: after first smart drill-down ==");
    println!("{}", session.render());

    // Assert the paper's Table 2 shape.
    let displays: Vec<String> = session
        .root()
        .children()
        .iter()
        .map(|n| format!("{} count={}", n.rule.display(&table), n.count))
        .collect();
    assert!(
        displays
            .iter()
            .any(|d| d == "(Target, bicycles, ?) count=200"),
        "missing Target×bicycles: {displays:?}"
    );
    assert!(
        displays
            .iter()
            .any(|d| d == "(?, comforters, MA-3) count=600"),
        "missing comforters×MA-3: {displays:?}"
    );
    assert!(
        displays.iter().any(|d| d == "(Walmart, ?, ?) count=1000"),
        "missing Walmart: {displays:?}"
    );

    let walmart = session
        .root()
        .children()
        .iter()
        .position(|n| n.rule.display(&table).contains("Walmart"))
        .expect("Walmart rule displayed");
    session.expand(&[walmart]).expect("Walmart expansion");
    println!("== Table 3: after drilling into the Walmart rule ==");
    println!("{}", session.render());

    let children: Vec<String> = session
        .node(&[walmart])
        .unwrap()
        .children()
        .iter()
        .map(|n| format!("{} count={}", n.rule.display(&table), n.count))
        .collect();
    assert!(
        children
            .iter()
            .any(|d| d == "(Walmart, cookies, ?) count=200"),
        "{children:?}"
    );
    assert!(
        children.iter().any(|d| d == "(Walmart, ?, CA-1) count=150"),
        "{children:?}"
    );
    assert!(
        children.iter().any(|d| d == "(Walmart, ?, WA-5) count=130"),
        "{children:?}"
    );

    // Summary row for EXPERIMENTS.md.
    let mut rows = vec![row!["table", "rule", "count", "weight"]];
    for (depth, node) in session.visible().iter().skip(1) {
        rows.push(row![
            if *depth == 1 { "T2" } else { "T3" },
            node.rule.display(&table),
            node.count,
            node.weight
        ]);
    }
    print_table(&rows);
    let path = write_csv("tables_1_2_3.csv", &rows);
    println!(
        "\nAll paper rows reproduced exactly. CSV: {}",
        path.display()
    );
}
