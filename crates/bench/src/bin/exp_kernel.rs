//! Emits `BENCH_kernel.json`: rows/sec of the best-marginal search on a
//! 100k-row census-shaped table, before (row-at-a-time) and after (columnar
//! kernel, scalar and parallel). Run with:
//!
//! ```sh
//! cargo run --release -p sdd-bench --bin exp_kernel
//! ```
//!
//! Environment knobs: `SDD_KERNEL_ROWS` (default 100 000), `SDD_REPS`
//! (default 5), `SDD_THREADS` (parallel worker override).

use sdd_core::{
    find_best_marginal_rule, find_best_marginal_rule_rowwise, BestMarginal, SearchOptions,
    SizeWeight,
};
use sdd_table::TableView;
use std::time::Instant;

fn time_search(reps: usize, run: impl Fn() -> Option<BestMarginal>) -> (f64, Option<BestMarginal>) {
    // One warmup, then best-of-reps wall time.
    let mut result = run();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    let rows: usize = std::env::var("SDD_KERNEL_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let reps: usize = std::env::var("SDD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let table = sdd_bench::datasets::census7(rows);
    let view: TableView<'_> = table.view();
    let cov = vec![0.0f64; view.len()];
    let mw = 5.0;

    let (t_rowwise, r_rowwise) = time_search(reps, || {
        let opts = SearchOptions::new(mw);
        find_best_marginal_rule_rowwise(&view, &SizeWeight, &cov, &opts)
    });
    let (t_scalar, r_scalar) = time_search(reps, || {
        let mut opts = SearchOptions::new(mw);
        opts.parallel = false;
        find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)
    });
    let (t_parallel, r_parallel) = time_search(reps, || {
        let mut opts = SearchOptions::new(mw);
        opts.parallel = true;
        find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)
    });

    // Sanity: all three must agree on the winner.
    let rule = r_rowwise.as_ref().map(|b| b.rule.display(&table));
    for (name, r) in [
        ("columnar_scalar", &r_scalar),
        ("columnar_parallel", &r_parallel),
    ] {
        assert_eq!(
            r.as_ref().map(|b| b.rule.display(&table)),
            rule,
            "{name} disagrees with the rowwise reference"
        );
    }

    let n = view.len() as f64;
    let rps = |t: f64| n / t;
    println!("best-marginal search on census7({rows}), mw={mw}, reps={reps}:");
    println!(
        "  rowwise (seed baseline): {:>9.2} ms   {:>12.0} rows/s",
        t_rowwise * 1e3,
        rps(t_rowwise)
    );
    println!(
        "  columnar scalar:         {:>9.2} ms   {:>12.0} rows/s   {:.2}x",
        t_scalar * 1e3,
        rps(t_scalar),
        t_rowwise / t_scalar
    );
    println!(
        "  columnar parallel:       {:>9.2} ms   {:>12.0} rows/s   {:.2}x",
        t_parallel * 1e3,
        rps(t_parallel),
        t_rowwise / t_parallel
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"find_best_marginal_rule/census7\",\n",
            "{host_fields}\n",
            "  \"rows\": {rows},\n",
            "  \"max_weight\": {mw},\n",
            "  \"reps\": {reps},\n",
            "  \"rowwise_seed\": {{ \"seconds\": {t0:.6}, \"rows_per_sec\": {r0:.0} }},\n",
            "  \"columnar_scalar\": {{ \"seconds\": {t1:.6}, \"rows_per_sec\": {r1:.0}, \"speedup\": {s1:.2} }},\n",
            "  \"columnar_parallel\": {{ \"seconds\": {t2:.6}, \"rows_per_sec\": {r2:.0}, \"speedup\": {s2:.2} }}\n",
            "}}\n"
        ),
        host_fields = sdd_bench::host_json_fields(),
        rows = rows,
        mw = mw,
        reps = reps,
        t0 = t_rowwise,
        r0 = rps(t_rowwise),
        t1 = t_scalar,
        r1 = rps(t_scalar),
        s1 = t_rowwise / t_scalar,
        t2 = t_parallel,
        r2 = rps(t_parallel),
        s2 = t_rowwise / t_parallel,
    );
    std::fs::write("BENCH_kernel.json", &json).expect("write BENCH_kernel.json");
    println!("wrote BENCH_kernel.json");
}
