//! Emits `BENCH_live.json`: staleness vs throughput for the live serving
//! mode (append-only ingest with epoch-bumping snapshots). Run with:
//!
//! ```sh
//! cargo run --release -p sdd-bench --bin exp_live
//! ```
//!
//! One live server per leg; a writer client appends fixed-size batches at
//! the leg's target rate while reader clients replay recorded drill-down
//! visits (open → expand → expand → rules → close, fresh session per
//! visit). Two costs rise with the append rate and the bench measures
//! both:
//!
//! * **Staleness** — a drill-down answers at the epoch its operation
//!   pinned; rows that land while the answer is computed (and in flight)
//!   are invisible to it. Each visit's `rules` reply carries the root
//!   count (= rows at the pinned epoch); an immediate `table` probe
//!   returns the rows visible *now*; the gap is the observed lag in rows.
//! * **Throughput** — every append bumps the epoch, so result-cache
//!   entries stop matching (the epoch is part of every key) and each
//!   session's next operation re-syncs its samples onto the new snapshot;
//!   reader requests per second fall as the append rate rises.
//!
//! The rate-0 leg is the frozen-equivalent baseline: same store, no
//! appends — its lag must be exactly 0 (asserted), and same-seed visits
//! within it must produce byte-identical transcripts (asserted, the
//! bench-scale echo of `tests/live_parity.rs`).
//!
//! Environment knobs: `SDD_LIVE_VISITS` (visits per leg, default 96),
//! `SDD_LIVE_CLIENTS` (reader threads, default 4), `SDD_LIVE_BATCH`
//! (rows per append, default 256), `SDD_LIVE_SEED_ROWS` (epoch-1 rows,
//! default 2048).

use sdd_server::{Client, EngineConfig, Json, Request, Response, Server, ServerConfig, TailConfig};
use sdd_table::{LiveTable, LiveTableConfig, Schema, TableStore};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Appends per second attempted by the writer in each leg. Smoke-scale
/// legs last tens of milliseconds, so the rates are high enough that the
/// fastest leg sees dozens of epoch bumps mid-workload.
const APPEND_RATES: [f64; 4] = [0.0, 32.0, 256.0, 1024.0];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic synthetic workload row `i` (same shape as the
/// `tests/live_parity.rs` harness).
fn row(i: usize) -> Vec<String> {
    let h = splitmix(i as u64);
    vec![
        format!("s{}", h % 6),
        format!("p{}", (h >> 8) % 11),
        format!("r{}", (h >> 16) % 4),
    ]
}

fn batch(lo: usize, hi: usize) -> Vec<Vec<String>> {
    (lo..hi).map(row).collect()
}

/// One recorded reader visit (fresh session; the seed cycles over a small
/// profile pool so same-epoch visits can share the result cache).
fn visit_lines(session: &str, visit: usize) -> Vec<String> {
    let seed = 100 + (visit % 8) as u64;
    vec![
        format!(
            r#"{{"op":"open","session":"{session}","seed":"{seed}","k":3,"mw":3.0,"weight":"size","capacity":2000,"min_ss":200}}"#
        ),
        format!(r#"{{"op":"expand","session":"{session}","path":[]}}"#),
        format!(r#"{{"op":"expand","session":"{session}","path":[0]}}"#),
        format!(r#"{{"op":"rules","session":"{session}"}}"#),
        format!(r#"{{"op":"close","session":"{session}"}}"#),
    ]
}

/// Extracts the root displayed count from a `rules` reply.
fn root_count(line: &str) -> f64 {
    let json = Json::parse(line).expect("rules reply parses");
    match Response::from_json(&json).expect("rules reply deserializes") {
        Response::RuleList { rules } => rules
            .iter()
            .find(|r| r.path.is_empty())
            .map(|r| r.count)
            .expect("root rule displayed"),
        other => panic!("expected a rules reply, got {other:?}"),
    }
}

/// Extracts the row count from a `table` reply.
fn table_rows(line: &str) -> f64 {
    let json = Json::parse(line).expect("table reply parses");
    match Response::from_json(&json).expect("table reply deserializes") {
        Response::TableInfo { rows, .. } => rows as f64,
        other => panic!("expected a table reply, got {other:?}"),
    }
}

struct LegResult {
    latencies: Vec<f64>,
    lags: Vec<f64>,
    wall_s: f64,
    appends: u64,
    final_epoch: u64,
    final_rows: usize,
    cache: Option<sdd_server::CacheCounters>,
    /// visit-key → transcript, for the rate-0 parity assertion.
    transcripts: BTreeMap<String, Vec<String>>,
}

fn run_leg(
    rate: f64,
    visits: usize,
    clients: usize,
    batch_rows: usize,
    seed_rows: usize,
) -> LegResult {
    let schema = Schema::new(["Store", "Product", "Region"]).expect("schema");
    let live = LiveTable::new(schema, vec![], &LiveTableConfig::in_memory(1024)).expect("live");
    let server = Server::bind_store(
        TableStore::from(Arc::new(live)),
        ServerConfig {
            engine: EngineConfig {
                tail: Some(TailConfig::default()),
                ..EngineConfig::default()
            },
            threads: clients + 3,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn server");
    let addr = server.addr();

    // Epoch 1: the pre-grown table every leg starts from.
    let mut seeder = Client::connect(addr).expect("connect seeder");
    let resp = seeder
        .call_line(
            &Request::Append {
                rows: batch(0, seed_rows),
                measures: vec![],
            }
            .to_json()
            .to_string(),
        )
        .expect("seed append");
    assert!(resp.contains(r#""ok":true"#), "seed append failed: {resp}");
    drop(seeder);

    let stop = Arc::new(AtomicBool::new(false));
    let writer = (rate > 0.0).then(|| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect writer");
            let interval = Duration::from_secs_f64(1.0 / rate);
            let mut appended = 0u64;
            // The batch window keeps moving, so dictionaries keep growing
            // the way a real ingest stream grows them.
            let mut next_row = seed_rows;
            while !stop.load(Ordering::Relaxed) {
                let resp = client
                    .call_line(
                        &Request::Append {
                            rows: batch(next_row, next_row + batch_rows),
                            measures: vec![],
                        }
                        .to_json()
                        .to_string(),
                    )
                    .expect("append");
                assert!(resp.contains(r#""ok":true"#), "append failed: {resp}");
                appended += 1;
                next_row += batch_rows;
                std::thread::sleep(interval);
            }
            appended
        })
    });

    // Readers: deal visits round-robin; each visit measures per-request
    // latency and, right after its `rules` reply, probes the table for the
    // rows visible now — the gap is the observed staleness in rows.
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect reader");
                let mut latencies = Vec::new();
                let mut lags = Vec::new();
                let mut transcripts = BTreeMap::new();
                for v in (0..visits).filter(|v| v % clients == c) {
                    let name = format!("visit-{v}");
                    let mut transcript = Vec::new();
                    let mut seen_root = None;
                    for line in visit_lines(&name, v) {
                        let t = Instant::now();
                        let reply = client.call_line(&line).expect("request");
                        latencies.push(t.elapsed().as_secs_f64());
                        if line.contains(r#""op":"rules""#) {
                            seen_root = Some(root_count(&reply));
                        }
                        transcript.push(reply);
                    }
                    let now =
                        table_rows(&client.call_line(r#"{"op":"table"}"#).expect("table probe"));
                    lags.push(now - seen_root.expect("visit listed rules"));
                    transcripts.insert(name, transcript);
                }
                (latencies, lags, transcripts)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut lags = Vec::new();
    let mut transcripts = BTreeMap::new();
    for h in handles {
        let (lat, lag, tr) = h.join().expect("reader thread");
        latencies.extend(lat);
        lags.extend(lag);
        transcripts.extend(tr);
    }
    let wall_s = wall.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    let appends = writer.map_or(0, |w| w.join().expect("writer thread"));
    let (final_epoch, final_rows) = server.engine().live_info().expect("live store");
    let cache = server.engine().cache_counters();
    server.shutdown();
    latencies.sort_by(|a, b| a.total_cmp(b));
    lags.sort_by(|a, b| a.total_cmp(b));
    LegResult {
        latencies,
        lags,
        wall_s,
        appends,
        final_epoch,
        final_rows,
        cache,
        transcripts,
    }
}

fn leg_json(rate: f64, visits: usize, leg: &LegResult) -> String {
    let n = leg.latencies.len();
    let mean = leg.latencies.iter().sum::<f64>() / n as f64;
    let mean_lag = leg.lags.iter().sum::<f64>() / leg.lags.len() as f64;
    let cache = match &leg.cache {
        Some(c) => {
            let lookups = c.hits + c.misses;
            let hit_rate = if lookups > 0 {
                c.hits as f64 / lookups as f64
            } else {
                0.0
            };
            format!(
                "{{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {hit_rate:.3} }}",
                c.hits, c.misses
            )
        }
        None => "null".to_owned(),
    };
    format!(
        "    {{ \"append_rate_per_s\": {rate}, \"appends_done\": {}, \
         \"final_epoch\": {}, \"final_rows\": {}, \"visits\": {visits}, \
         \"requests\": {n}, \"mean_us\": {:.1}, \"p95_us\": {:.1}, \
         \"throughput_rps\": {:.1}, \"mean_lag_rows\": {mean_lag:.2}, \
         \"p95_lag_rows\": {:.2}, \"max_lag_rows\": {:.0}, \"cache\": {cache} }}",
        leg.appends,
        leg.final_epoch,
        leg.final_rows,
        mean * 1e6,
        percentile(&leg.latencies, 0.95) * 1e6,
        n as f64 / leg.wall_s,
        percentile(&leg.lags, 0.95),
        leg.lags.last().copied().unwrap_or(0.0),
    )
}

fn main() {
    let visits = env_usize("SDD_LIVE_VISITS", 96);
    let clients = env_usize("SDD_LIVE_CLIENTS", 4);
    let batch_rows = env_usize("SDD_LIVE_BATCH", 256);
    let seed_rows = env_usize("SDD_LIVE_SEED_ROWS", 2048);

    println!(
        "live-serving bench: {visits} visits × {} legs, {clients} reader client(s), \
         seed epoch {seed_rows} rows, host parallelism {}",
        APPEND_RATES.len(),
        sdd_bench::host_parallelism()
    );

    let mut legs = Vec::new();
    for &rate in &APPEND_RATES {
        let leg = run_leg(rate, visits, clients, batch_rows, seed_rows);
        let mean_lag = leg.lags.iter().sum::<f64>() / leg.lags.len() as f64;
        println!(
            "  rate {rate:>5.0}/s: {:>6.0} req/s, mean lag {mean_lag:>7.2} rows, \
             {} appends, final epoch {}",
            leg.latencies.len() as f64 / leg.wall_s,
            leg.appends,
            leg.final_epoch
        );
        if rate == 0.0 {
            // Frozen-equivalent baseline: no appends → zero lag, and
            // same-seed visits answer byte-identically (the open reply
            // echoes the session name, so compare from op 1 on).
            assert!(
                leg.lags.iter().all(|&l| l == 0.0),
                "rate-0 leg observed nonzero lag"
            );
            let mut by_seed: BTreeMap<u64, &[String]> = BTreeMap::new();
            for (name, transcript) in &leg.transcripts {
                let v: usize = name.trim_start_matches("visit-").parse().unwrap();
                let seed = 100 + (v % 8) as u64;
                match by_seed.get(&seed) {
                    None => {
                        by_seed.insert(seed, &transcript[1..]);
                    }
                    Some(prev) => assert_eq!(
                        *prev,
                        &transcript[1..],
                        "same-seed visits diverged in the append-free leg"
                    ),
                }
            }
            println!(
                "  bit-parity: {} same-seed visit groups identical in the rate-0 leg",
                by_seed.len()
            );
        }
        legs.push(leg_json(rate, visits, &leg));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sdd_server/live_append_staleness_vs_throughput\",\n",
            "  \"dataset\": \"synthetic live workload (seed epoch {seed_rows} rows, 3 columns)\",\n",
            "  \"visits_per_leg\": {visits},\n",
            "  \"reader_clients\": {clients},\n",
            "{host}\n",
            "  \"lag_definition\": \"rows visible at probe time minus rows at the answering epoch, per visit\",\n",
            "  \"parity\": \"rate-0 leg: zero lag and same-seed transcripts byte-identical (asserted at runtime)\",\n",
            "  \"legs\": [\n{legs}\n  ]\n",
            "}}\n"
        ),
        seed_rows = seed_rows,
        visits = visits,
        clients = clients,
        host = sdd_bench::host_json_fields(),
        legs = legs.join(",\n"),
    );
    std::fs::write("BENCH_live.json", &json).expect("write BENCH_live.json");
    println!("wrote BENCH_live.json");
}
