//! Emits `BENCH_ingest.json`: streaming out-of-core ingest
//! ([`sdd_table::csv::stream_csv_file`] → `ShardBuilder`) versus the
//! materialize-then-shard baseline (`read_csv_with_measures` → `Table` →
//! `ShardedTable::from_table`) on the same CSV file. Run with:
//!
//! ```sh
//! cargo run --release -p sdd-bench --bin exp_ingest
//! ```
//!
//! For each path the sweep records the wall-clock build time plus two
//! peak-memory proxies:
//!
//! * **analytic** — bytes the build's table structures must hold at once:
//!   the whole code matrix (+ CSV text) for the materializing path, one
//!   segment plus the dictionaries for the streaming path;
//! * **VmHWM** — the process peak-RSS high-water mark from
//!   `/proc/self/status` (Linux; `0` elsewhere). The streaming build runs
//!   *first*, so a later, larger VmHWM is memory only the materializing
//!   path needed.
//!
//! The run asserts the two builds are **bit-identical** (spill files and
//! decoded segment columns), so the sweep doubles as the streaming-parity
//! determinism check on realistic sizes. Environment knobs:
//! `SDD_INGEST_ROWS` (default 200 000), `SDD_REPS` (default 3).

use sdd_table::csv::{read_csv_with_measures, stream_csv_file, write_csv};
use sdd_table::{ShardConfig, ShardedTable, Table};
use std::time::Instant;

fn best_of<T>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let v = run();
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("reps ≥ 1"))
}

/// Peak resident-set high-water mark in KiB (`VmHWM`), or 0 when
/// `/proc/self/status` is unavailable.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Bytes the monolithic build must hold at once: the full code matrix,
/// measures, and dictionaries.
fn table_bytes(t: &Table) -> usize {
    let codes = 4 * t.n_rows() * t.n_columns();
    let measures = 8 * t.n_rows() * t.measure_names().count();
    let dicts: usize = (0..t.n_columns())
        .map(|c| t.dictionary(c).heap_bytes())
        .sum();
    codes + measures + dicts
}

/// Bytes the streaming build holds at peak: one (largest) unsealed
/// segment's codes, plus dictionaries and the always-resident measures.
fn stream_peak_bytes(st: &ShardedTable) -> usize {
    let largest = st.spans().iter().map(|s| s.len()).max().unwrap_or(0);
    let seg = 4 * largest * st.n_columns();
    let header = st.header();
    let measures = 8 * st.n_rows() * header.measure_names().count();
    let dicts: usize = (0..st.n_columns())
        .map(|c| st.dictionary(c).heap_bytes())
        .sum();
    seg + measures + dicts
}

fn main() {
    let rows: usize = std::env::var("SDD_INGEST_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let reps: usize = std::env::var("SDD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let shards = 16usize;
    let resident = 2usize;

    // Fixture: a census-shaped CSV on disk (what an operator would ingest).
    let source = sdd_bench::datasets::census3(rows);
    let measure_names: Vec<String> = source.measure_names().map(str::to_owned).collect();
    let measures: Vec<&str> = measure_names.iter().map(String::as_str).collect();
    let csv_path = std::env::temp_dir().join(format!("sdd-exp-ingest-{}.csv", std::process::id()));
    std::fs::write(&csv_path, write_csv(&source)).expect("write CSV fixture");
    let csv_bytes = std::fs::metadata(&csv_path).expect("fixture exists").len();
    drop(source); // the ingest paths must not lean on a pre-built table

    let cfg = ShardConfig::spilling(shards, resident, std::env::temp_dir());

    // Streaming path first: VmHWM is monotonic over the process life, so
    // any later increase is attributable to the materializing path.
    let (t_stream, streamed) = best_of(reps, || {
        stream_csv_file(&csv_path, &measures, &cfg).expect("stream ingest")
    });
    let hwm_after_stream = vm_hwm_kb();
    let (stream_spills, stream_loads) = (streamed.spills(), streamed.loads());
    assert_eq!(stream_spills, shards as u64, "one spill write per shard");
    assert_eq!(stream_loads, 0, "a streaming build never reads back");
    let stream_proxy = stream_peak_bytes(&streamed);

    let (t_mono, (mono_table, mono_sharded)) = best_of(reps, || {
        let text = std::fs::read_to_string(&csv_path).expect("read CSV");
        let table = read_csv_with_measures(&text, &measures).expect("parse CSV");
        let sharded = ShardedTable::from_table(&table, &cfg).expect("shard build");
        (table, sharded)
    });
    let hwm_after_mono = vm_hwm_kb();
    let mono_proxy = table_bytes(&mono_table) + csv_bytes as usize;

    // Bit-identity: spill files and decoded segments must match exactly.
    for i in 0..shards {
        let (pa, pb) = (
            streamed.spill_path(i).expect("spilling build"),
            mono_sharded.spill_path(i).expect("spilling build"),
        );
        assert_eq!(
            std::fs::read(pa).expect("spill readable"),
            std::fs::read(pb).expect("spill readable"),
            "shard {i}: stream vs from_table spill files differ"
        );
        let (sa, sb) = (
            streamed.try_segment(i).unwrap(),
            mono_sharded.try_segment(i).unwrap(),
        );
        for c in 0..streamed.n_columns() {
            assert_eq!(sa.col(c), sb.col(c), "shard {i} col {c} differs");
        }
    }

    println!(
        "streaming ingest vs materialize-then-shard on census3({rows}) \
         ({shards} shards, {resident} resident, reps={reps}):"
    );
    println!(
        "  stream : {:>8.2} ms | peak proxy {:>7.1} MiB | VmHWM {:>7.1} MiB | \
         spills {stream_spills} loads {stream_loads}",
        t_stream * 1e3,
        stream_proxy as f64 / (1 << 20) as f64,
        hwm_after_stream as f64 / 1024.0,
    );
    println!(
        "  mono   : {:>8.2} ms | peak proxy {:>7.1} MiB | VmHWM {:>7.1} MiB",
        t_mono * 1e3,
        mono_proxy as f64 / (1 << 20) as f64,
        hwm_after_mono as f64 / 1024.0,
    );
    println!(
        "  memory ratio (analytic): {:.2}x smaller streaming",
        mono_proxy as f64 / stream_proxy.max(1) as f64
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"streaming_ingest/census3_stream_vs_materialize\",\n",
            "{host_fields}\n",
            "  \"rows\": {rows},\n",
            "  \"shards\": {shards},\n",
            "  \"resident\": {resident},\n",
            "  \"reps\": {reps},\n",
            "  \"csv_bytes\": {csv_bytes},\n",
            "  \"stream_build_seconds\": {t_stream:.6},\n",
            "  \"materialize_build_seconds\": {t_mono:.6},\n",
            "  \"stream_peak_bytes_proxy\": {stream_proxy},\n",
            "  \"materialize_peak_bytes_proxy\": {mono_proxy},\n",
            "  \"vm_hwm_kb_after_stream\": {hwm_stream},\n",
            "  \"vm_hwm_kb_after_materialize\": {hwm_mono},\n",
            "  \"stream_spills\": {stream_spills},\n",
            "  \"stream_loads_during_build\": {stream_loads},\n",
            "  \"determinism\": \"stream-built spill files and decoded segments are byte-identical to the materialize-then-shard build (asserted at run time)\"\n",
            "}}\n"
        ),
        host_fields = sdd_bench::host_json_fields(),
        rows = rows,
        shards = shards,
        resident = resident,
        reps = reps,
        csv_bytes = csv_bytes,
        t_stream = t_stream,
        t_mono = t_mono,
        stream_proxy = stream_proxy,
        mono_proxy = mono_proxy,
        hwm_stream = hwm_after_stream,
        hwm_mono = hwm_after_mono,
        stream_spills = stream_spills,
        stream_loads = stream_loads,
    );
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("wrote BENCH_ingest.json");
    let _ = std::fs::remove_file(&csv_path);
}
