//! Emits `BENCH_rowslice.json`: thread-count scaling of the best-marginal
//! search on a census-shaped 100k-row table with **3 free columns** — the
//! regime where the task-per-column/group kernel cannot occupy more workers
//! than the column/group count (≈ 3) and only the row-sliced mode scales.
//! Run with:
//!
//! ```sh
//! cargo run --release -p sdd-bench --bin exp_rowslice
//! ```
//!
//! For every thread count `t` in the sweep (pinned via `SDD_THREADS`), the
//! search runs once per mode:
//!
//! * `task_per_group` — `RowSlice::Off`: the PR-1 kernel, at most one task
//!   per free column (pass 1) / candidate group (pass j);
//! * `row_sliced` — `RowSlice::Force(16)`: every (column-or-group × chunk)
//!   pair is a task, partials merged pairwise in fixed chunk order, so the
//!   result is bit-identical across all `t`.
//!
//! Environment knobs: `SDD_ROWSLICE_ROWS` (default 100 000), `SDD_REPS`
//! (default 5), `SDD_ROWSLICE_THREADS` (comma-separated sweep, default
//! `1,2,4,8`).

use sdd_core::{find_best_marginal_rule, BestMarginal, RowSlice, SearchOptions, SizeWeight};
use std::time::Instant;

fn time_search(reps: usize, run: impl Fn() -> Option<BestMarginal>) -> (f64, Option<BestMarginal>) {
    // One warmup, then best-of-reps wall time.
    let mut result = run();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    let rows: usize = std::env::var("SDD_ROWSLICE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let reps: usize = std::env::var("SDD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let thread_sweep: Vec<usize> = std::env::var("SDD_ROWSLICE_THREADS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let table = sdd_bench::datasets::census3(rows);
    let view = table.view();
    let cov = vec![0.0f64; view.len()];
    let mw = 5.0;

    // Scalar reference for the winner sanity check.
    let scalar = {
        let mut opts = SearchOptions::new(mw);
        opts.parallel = false;
        find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)
            .expect("non-empty census view yields a rule")
    };

    println!(
        "best-marginal search on census3({rows}), mw={mw}, reps={reps}, \
         host parallelism {host_threads}:"
    );
    let mut entries = String::new();
    let (mut last_off, mut last_sliced) = (f64::NAN, f64::NAN);
    let mut sliced_bits: Option<u64> = None;
    for &t in &thread_sweep {
        std::env::set_var("SDD_THREADS", t.to_string());
        let (t_off, r_off) = time_search(reps, || {
            let mut opts = SearchOptions::new(mw);
            opts.parallel = true;
            opts.parallel_min_rows = 1;
            opts.row_slice = RowSlice::Off;
            find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)
        });
        let (t_sliced, r_sliced) = time_search(reps, || {
            let mut opts = SearchOptions::new(mw);
            opts.parallel = true;
            opts.parallel_min_rows = 1;
            opts.row_slice = RowSlice::Force(16);
            find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)
        });
        for (name, r) in [("task_per_group", &r_off), ("row_sliced", &r_sliced)] {
            let r = r.as_ref().expect("search finds a rule");
            assert_eq!(
                r.rule, scalar.rule,
                "{name} @ {t} threads disagrees with the scalar winner"
            );
            assert!(
                (r.marginal_value - scalar.marginal_value).abs()
                    <= 1e-9 * scalar.marginal_value.abs(),
                "{name} @ {t} threads: marginal {} vs scalar {}",
                r.marginal_value,
                scalar.marginal_value
            );
        }
        // The determinism contract: the row-sliced marginal is the same
        // bit pattern at every thread count.
        let bits = r_sliced
            .as_ref()
            .expect("search finds a rule")
            .marginal_value
            .to_bits();
        match sliced_bits {
            None => sliced_bits = Some(bits),
            Some(b) => assert_eq!(b, bits, "row-sliced result changed with thread count"),
        }
        let speedup = t_off / t_sliced;
        println!(
            "  {t:>2} thread(s): task-per-group {:>8.2} ms | row-sliced {:>8.2} ms | {speedup:.2}x",
            t_off * 1e3,
            t_sliced * 1e3,
        );
        entries.push_str(&format!(
            "    {{ \"threads\": {t}, \"task_per_group_seconds\": {t_off:.6}, \
             \"row_sliced_seconds\": {t_sliced:.6}, \"speedup\": {speedup:.3} }},\n"
        ));
        (last_off, last_sliced) = (t_off, t_sliced);
    }
    std::env::remove_var("SDD_THREADS");
    let entries = entries.trim_end().trim_end_matches(',');

    // Headline figure: row-sliced at the sweep's top thread count against
    // the task-per-group kernel at the same count. With ≤ 3 free columns
    // the task model is capped near 3 workers, so on a machine with ≥ 8
    // hardware threads this lands well above 2× (on fewer cores the sweep
    // still records the curve — see host_parallelism).
    let speedup = last_off / last_sliced;
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"find_best_marginal_rule/census3_rowslice\",\n",
            "  \"rows\": {rows},\n",
            "  \"free_columns\": 3,\n",
            "  \"max_weight\": {mw},\n",
            "  \"reps\": {reps},\n",
            "  \"host_parallelism\": {host},\n",
            "  \"simd\": \"{simd}\",\n",
            "  \"determinism\": \"row-sliced results are bit-identical across all swept thread counts (chunk-ordered pairwise merge)\",\n",
            "  \"scaling\": [\n{entries}\n  ],\n",
            "  \"speedup_at_max_threads\": {speedup:.3}\n",
            "}}\n"
        ),
        rows = rows,
        mw = mw,
        reps = reps,
        host = host_threads,
        simd = sdd_bench::simd_level(),
        entries = entries,
        speedup = speedup,
    );
    std::fs::write("BENCH_rowslice.json", &json).expect("write BENCH_rowslice.json");
    println!("wrote BENCH_rowslice.json");
}
