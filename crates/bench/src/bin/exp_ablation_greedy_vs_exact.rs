//! Ablation A2: measured approximation ratio of the greedy BRS against the
//! exhaustive optimum on small random tables.
//!
//! The theory guarantees `Score(greedy) ≥ (1 − ((k−1)/k)^k) · Score(opt)`
//! (§3.4). In practice greedy is near-optimal; this harness quantifies the
//! gap.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sdd_bench::report::{print_table, write_csv};
use sdd_bench::row;
use sdd_core::{exact_best_rule_set, greedy_guarantee, Brs, SizeWeight};
use sdd_table::{Schema, Table};

fn main() {
    let trials = 30usize;
    let mut rng = StdRng::seed_from_u64(2016);
    let mut rows = vec![row!["k", "trials", "mean_ratio", "min_ratio", "guarantee"]];

    for k in [2usize, 3, 4] {
        let mut ratios = Vec::with_capacity(trials);
        for _ in 0..trials {
            let n_rows = rng.gen_range(20..60);
            let table = random_table(&mut rng, n_rows);
            let view = table.view();
            let greedy = Brs::new(&SizeWeight).run(&view, k);
            let (_, exact) = exact_best_rule_set(&view, &SizeWeight, k, 3);
            if exact > 0.0 {
                ratios.push(greedy.total_score / exact);
            }
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let bound = greedy_guarantee(k);
        assert!(
            min + 1e-9 >= bound,
            "k={k}: observed ratio {min} violates the greedy guarantee {bound}"
        );
        rows.push(row![
            k,
            ratios.len(),
            format!("{mean:.4}"),
            format!("{min:.4}"),
            format!("{bound:.4}")
        ]);
    }

    print_table(&rows);
    println!("\nEvery observed ratio respects the (1 − ((k−1)/k)^k) guarantee ✓");
    let path = write_csv("ablation_greedy_vs_exact.csv", &rows);
    println!("CSV: {}", path.display());
}

fn random_table(rng: &mut StdRng, n_rows: usize) -> Table {
    let rows: Vec<[String; 3]> = (0..n_rows)
        .map(|_| {
            [
                format!("a{}", rng.gen_range(0..4)),
                format!("b{}", rng.gen_range(0..4)),
                format!("c{}", rng.gen_range(0..3)),
            ]
        })
        .collect();
    Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &rows).expect("valid")
}
