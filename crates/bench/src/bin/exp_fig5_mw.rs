//! Experiment: paper Figure 5 — running time to expand the empty rule as a
//! function of the `mw` parameter, four series: {Marketing, Census} ×
//! {Size, Bits}.
//!
//! Protocol mirrors §5.2.1: for each `mw`, expand the empty rule and
//! average over repetitions. Marketing fits in memory so the time reflects
//! the BRS passes; Census goes through the SampleHandler, so its time is
//! dominated by the sample-creation scan (the paper's observation).
//!
//! Expected shape: roughly linear growth in `mw` (paper: "running time
//! seems to be approximately linear in mw"), with Census offset upward by
//! the scan cost.

use sdd_bench::report::{print_table, write_csv};
use sdd_bench::{row, timing};
use sdd_core::{BitsWeight, Brs, Rule, SizeWeight, WeightFn};
use sdd_sampling::{AllocationStrategy, SampleHandler, SampleHandlerConfig};
use sdd_table::Table;

fn main() {
    let reps = sdd_bench::reps();
    let marketing = sdd_bench::datasets::marketing7();
    let census = sdd_bench::datasets::census7(sdd_bench::census_rows());
    println!(
        "Figure 5 protocol: expand empty rule, k=4, {reps} reps; census rows = {}\n",
        census.n_rows()
    );

    let mw_values: Vec<f64> = (1..=20).map(|v| v as f64).collect();
    let mut rows = vec![row!["mw", "series", "mean_ms"]];

    for (series, table, weight, by_sample) in [
        (
            "marketing-size",
            &marketing,
            &SizeWeight as &dyn WeightFn,
            false,
        ),
        (
            "marketing-bits",
            &marketing,
            &BitsWeight as &dyn WeightFn,
            false,
        ),
        ("census-size", &census, &SizeWeight as &dyn WeightFn, true),
        ("census-bits", &census, &BitsWeight as &dyn WeightFn, true),
    ] {
        for &mw in &mw_values {
            let ms = if by_sample {
                expand_via_sampler(table, weight, mw, reps)
            } else {
                expand_direct(table, weight, mw, reps)
            };
            rows.push(row![mw, series, format!("{ms:.1}")]);
        }
    }

    print_table(&rows);
    let path = write_csv("fig5_mw.csv", &rows);
    println!("\nCSV: {}", path.display());

    // Shape check: time at mw=20 ≥ time at mw=2 for the direct series.
    let get = |mw: f64, series: &str| -> f64 {
        rows.iter()
            .skip(1)
            .find(|r| r[0] == format!("{mw}") && r[1] == series)
            .and_then(|r| r[2].parse().ok())
            .expect("row present")
    };
    for series in ["marketing-size", "marketing-bits"] {
        let lo = get(2.0, series);
        let hi = get(20.0, series);
        println!("{series}: mw=2 → {lo:.1} ms, mw=20 → {hi:.1} ms (paper: grows ~linearly)");
    }
}

/// Marketing protocol: the table is small, run BRS directly.
fn expand_direct(table: &Table, weight: &dyn WeightFn, mw: f64, reps: usize) -> f64 {
    let view = table.view();
    timing::time_mean(reps, || {
        let brs = Brs::new(weight).with_max_weight(mw);
        std::hint::black_box(brs.run(&view, 4));
    })
}

/// Census protocol: fresh SampleHandler each rep (forces the Create scan,
/// as on first interaction), then BRS on the sample.
fn expand_via_sampler(
    table: &std::sync::Arc<Table>,
    weight: &dyn WeightFn,
    mw: f64,
    reps: usize,
) -> f64 {
    let trivial = Rule::trivial(table.n_columns());
    let mut seed = 0u64;
    timing::time_mean(reps, || {
        seed += 1;
        let mut handler = SampleHandler::new(
            table.clone(),
            SampleHandlerConfig {
                capacity: 50_000,
                min_sample_size: 5_000,
                seed,
                strategy: AllocationStrategy::Dp,
            },
        );
        let sample = handler.get_sample(&trivial);
        let brs = Brs::new(weight).with_max_weight(mw);
        std::hint::black_box(brs.run(&sample.view.as_view(), 4));
    })
}
