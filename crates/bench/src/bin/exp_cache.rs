//! Emits `BENCH_cache.json`: effect of the shared cross-session result
//! cache on a Zipf-distributed session mix. Run with:
//!
//! ```sh
//! cargo run --release -p sdd-bench --bin exp_cache
//! ```
//!
//! A population of analyst *profiles* (sampling seed + drill script) is
//! sampled with a Zipf law — the realistic serve-path shape where a few
//! dashboards/questions dominate traffic — and the resulting session
//! sequence is driven over a real TCP server four times: cache disabled
//! (`cache_bytes = 0`), cache at the default budget, and two
//! eviction-policy legs (stripe-epoch vs LRU) with the budget squeezed
//! to half the resident working set measured on the default leg, so
//! every insert past the squeeze forces a real eviction decision. All
//! legs record per-request latency; cached legs additionally report
//! hit/miss/insert/eviction counters.
//!
//! **Bit-parity is asserted at runtime, per session**: the transcript of
//! every session on every cached leg must equal its uncached twin byte
//! for byte, or the bench aborts — cache and eviction policy may change
//! when work happens, never what is answered.
//!
//! Environment knobs: `SDD_CACHE_SESSIONS` (default 32),
//! `SDD_CACHE_PROFILES` (default 8), `SDD_CACHE_CLIENTS` (concurrent
//! client threads, default 4). `SDD_NO_CACHE=1` turns every cached leg
//! into an uncached run (recorded in the provenance field).

use sdd_server::{Client, EngineConfig, EvictionMode, OpenOptions, Request, Server, ServerConfig};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// SplitMix64 — deterministic mix generation, independent of process state.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const ZIPF_S: f64 = 1.1;

/// Draws `sessions` profile ranks from Zipf(`ZIPF_S`) over `profiles`.
fn zipf_mix(profiles: usize, sessions: usize, rng: &mut Rng) -> Vec<usize> {
    let weights: Vec<f64> = (1..=profiles)
        .map(|r| 1.0 / (r as f64).powf(ZIPF_S))
        .collect();
    let total: f64 = weights.iter().sum();
    (0..sessions)
        .map(|_| {
            let mut u = rng.unit() * total;
            for (rank, w) in weights.iter().enumerate() {
                u -= w;
                if u <= 0.0 {
                    return rank;
                }
            }
            profiles - 1
        })
        .collect()
}

/// One analyst visit for a profile: the drill script depends only on the
/// profile rank, so repeat sessions of a popular profile are exact
/// replicas — the work the cache is built to absorb.
fn script(session: &str, profile: usize) -> Vec<Request> {
    let s = || session.to_owned();
    let mut reqs = vec![
        Request::Open {
            session: s(),
            options: OpenOptions {
                k: Some(3),
                max_weight: Some(3.0),
                weight: Some("size".to_owned()),
                seed: Some(100 + profile as u64),
                capacity: Some(20_000),
                min_ss: Some(1_000),
            },
        },
        Request::Expand {
            session: s(),
            path: vec![],
        },
        // Every profile drills into child 0 — the dominant transition the
        // predictive prefetcher should learn.
        Request::Expand {
            session: s(),
            path: vec![0],
        },
    ];
    if profile % 2 == 1 {
        reqs.push(Request::Expand {
            session: s(),
            path: vec![1],
        });
    }
    reqs.extend([
        Request::Rules { session: s() },
        Request::Stats { session: s() },
        Request::Close { session: s() },
    ]);
    reqs
}

struct LegResult {
    latencies: Vec<f64>,
    wall_s: f64,
    /// session name → response transcript, for cross-leg parity.
    transcripts: BTreeMap<String, Vec<String>>,
    counters: Option<sdd_server::CacheCounters>,
    predict: sdd_server::PredictCounters,
}

/// Runs the whole session mix over a fresh server and returns latencies +
/// per-session transcripts.
fn run_leg(
    table: &Arc<sdd_table::Table>,
    mix: &[usize],
    clients: usize,
    engine: EngineConfig,
) -> LegResult {
    let server = Server::bind(
        table.clone(),
        ServerConfig {
            engine,
            threads: clients + 2,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn server");
    let addr = server.addr();

    // Deal sessions round-robin to client threads; session names encode
    // (mix index, profile) so both legs produce the same name set.
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let share: Vec<(usize, usize)> = mix
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| i % clients == c)
                .collect();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latencies = Vec::new();
                let mut transcripts = BTreeMap::new();
                for (i, profile) in share {
                    let name = format!("mix-{i}-p{profile}");
                    let mut transcript = Vec::new();
                    for req in script(&name, profile) {
                        let t = Instant::now();
                        let line = client
                            .call_line(&req.to_json().to_string())
                            .expect("request");
                        latencies.push(t.elapsed().as_secs_f64());
                        transcript.push(line);
                    }
                    transcripts.insert(name, transcript);
                }
                (latencies, transcripts)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut transcripts = BTreeMap::new();
    for h in handles {
        let (lat, tr) = h.join().expect("bench client");
        latencies.extend(lat);
        transcripts.extend(tr);
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let counters = server.engine().cache_counters();
    let predict = server.engine().predict_counters();
    server.shutdown();
    latencies.sort_by(|a, b| a.total_cmp(b));
    LegResult {
        latencies,
        wall_s,
        transcripts,
        counters,
        predict,
    }
}

fn leg_json(name: &str, leg: &LegResult, cache_bytes: usize, eviction: &str) -> String {
    let n = leg.latencies.len();
    let mean = leg.latencies.iter().sum::<f64>() / n as f64;
    let (p50, p95) = (
        percentile(&leg.latencies, 0.50),
        percentile(&leg.latencies, 0.95),
    );
    let cache = match &leg.counters {
        Some(c) => {
            let lookups = c.hits + c.misses;
            let hit_rate = if lookups > 0 {
                c.hits as f64 / lookups as f64
            } else {
                0.0
            };
            format!(
                "{{ \"hits\": {}, \"misses\": {}, \"inserts\": {}, \
                 \"evictions\": {}, \"bytes\": {}, \"hit_rate\": {hit_rate:.3} }}",
                c.hits, c.misses, c.inserts, c.evictions, c.bytes
            )
        }
        None => "null".to_owned(),
    };
    format!(
        "    {{ \"leg\": \"{name}\", \"cache_bytes\": {cache_bytes}, \
         \"eviction\": \"{eviction}\", \"requests\": {n}, \"mean_us\": {:.1}, \
         \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"throughput_rps\": {:.1}, \
         \"cache\": {cache} }}",
        mean * 1e6,
        p50 * 1e6,
        p95 * 1e6,
        n as f64 / leg.wall_s,
    )
}

fn main() {
    let sessions = env_usize("SDD_CACHE_SESSIONS", 32);
    let profiles = env_usize("SDD_CACHE_PROFILES", 8);
    let clients = env_usize("SDD_CACHE_CLIENTS", 4);
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let no_cache_env = std::env::var("SDD_NO_CACHE").unwrap_or_default();

    let table = Arc::new(sdd_datagen::retail(42));
    let mix = zipf_mix(profiles, sessions, &mut Rng(0xCAC4E));
    println!(
        "cache bench on retail ({} rows × {} columns): {sessions} sessions \
         over {profiles} Zipf(s={ZIPF_S}) profiles, {clients} client(s), \
         host parallelism {host_threads}",
        table.n_rows(),
        table.n_columns()
    );

    let cfg = |cache_bytes: usize, eviction: EvictionMode| EngineConfig {
        cache_bytes,
        cache_eviction: eviction,
        ..EngineConfig::default()
    };
    let off = run_leg(&table, &mix, clients, cfg(0, EvictionMode::default()));
    let on = run_leg(
        &table,
        &mix,
        clients,
        cfg(64 << 20, EvictionMode::default()),
    );

    // Eviction-policy legs: squeeze the budget to half the resident
    // working set of the default leg, so every insert past the squeeze
    // forces a real eviction decision — that is where the policies
    // diverge. One stripe so the whole budget is a single LRU/epoch pool
    // (striping affects contention, never results).
    let resident = on.counters.map(|c| c.bytes).unwrap_or(2 << 20);
    let tight = ((resident / 2).max(1)) as usize;
    let tight_cfg = |eviction: EvictionMode| EngineConfig {
        stripes: 1,
        ..cfg(tight, eviction)
    };
    let epoch = run_leg(&table, &mix, clients, tight_cfg(EvictionMode::StripeEpoch));
    let lru = run_leg(&table, &mix, clients, tight_cfg(EvictionMode::Lru));

    // Runtime bit-parity, per session: neither the cache nor the eviction
    // policy may move a byte.
    for (name, leg) in [
        ("cache-on", &on),
        ("evict-epoch", &epoch),
        ("evict-lru", &lru),
    ] {
        assert_eq!(
            off.transcripts.keys().collect::<Vec<_>>(),
            leg.transcripts.keys().collect::<Vec<_>>(),
            "{name}: served a different session set than cache-off"
        );
        for (session, off_lines) in &off.transcripts {
            assert_eq!(
                off_lines, &leg.transcripts[session],
                "session {session}: {name} transcript differs from uncached"
            );
        }
    }
    println!(
        "  bit-parity: all {} session transcripts identical across 4 legs",
        off.transcripts.len()
    );

    for (name, leg) in [
        ("cache-off", &off),
        ("cache-on", &on),
        ("evict-epoch", &epoch),
        ("evict-lru", &lru),
    ] {
        let n = leg.latencies.len();
        let mean = leg.latencies.iter().sum::<f64>() / n as f64 * 1e6;
        match &leg.counters {
            Some(c) => println!(
                "  {name:>11}: mean {mean:>7.1} µs | hits {} / lookups {} | evictions {}",
                c.hits,
                c.hits + c.misses,
                c.evictions
            ),
            None => println!("  {name:>11}: mean {mean:>7.1} µs"),
        }
    }
    let p = &on.predict;
    println!(
        "  prediction: {} transitions recorded, {} predictions, {} speculative expansions",
        p.records, p.predictions, p.speculations
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sdd_server/shared_result_cache_zipf_mix\",\n",
            "  \"dataset\": \"retail (6000 rows x 3 columns)\",\n",
            "  \"session_mix\": {{ \"sessions\": {sessions}, \"profiles\": {profiles}, \"zipf_s\": {zipf} }},\n",
            "  \"clients\": {clients},\n",
            "  \"host_parallelism\": {host},\n",
            "  \"simd\": \"{simd}\",\n",
            "  \"sdd_no_cache_env\": \"{no_cache}\",\n",
            "  \"default_eviction\": \"{default_eviction:?}\",\n",
            "  \"parity\": \"per-session transcripts byte-identical across legs (asserted at runtime)\",\n",
            "  \"predict\": {{ \"records\": {records}, \"predictions\": {predictions}, \"speculations\": {speculations} }},\n",
            "  \"legs\": [\n{off_leg},\n{on_leg},\n{epoch_leg},\n{lru_leg}\n  ]\n",
            "}}\n"
        ),
        sessions = sessions,
        profiles = profiles,
        zipf = ZIPF_S,
        clients = clients,
        host = host_threads,
        simd = sdd_bench::simd_level(),
        no_cache = no_cache_env,
        default_eviction = EvictionMode::default(),
        records = p.records,
        predictions = p.predictions,
        speculations = p.speculations,
        off_leg = leg_json("cache-off", &off, 0, "none"),
        on_leg = leg_json("cache-on", &on, 64 << 20, &format!("{:?}", EvictionMode::default())),
        epoch_leg = leg_json("evict-epoch", &epoch, tight, "StripeEpoch"),
        lru_leg = leg_json("evict-lru", &lru, tight, "Lru"),
    );
    std::fs::write("BENCH_cache.json", &json).expect("write BENCH_cache.json");
    println!("wrote BENCH_cache.json");
}
