//! Emits `BENCH_serve.json`: request latency and throughput of the
//! concurrent drill-down server under a sweep of concurrent client counts.
//! Run with:
//!
//! ```sh
//! cargo run --release -p sdd-bench --bin exp_serve
//! ```
//!
//! An in-process server (ephemeral port, deferred background prefetch)
//! hosts the retail table; each swept client count `c` spawns `c` OS
//! threads, each opening its own session and running a fixed drill script
//! (expand root, drill into every child, list rules, read stats). Every
//! request's wall-clock latency is recorded; the report gives mean / p50 /
//! p95 per client count plus aggregate throughput.
//!
//! Environment knobs: `SDD_SERVE_CLIENTS` (comma-separated sweep, default
//! `1,2,4,8`), `SDD_SERVE_ROUNDS` (script repetitions per client,
//! default 5).

use sdd_server::{Client, HttpClient, OpenOptions, Request, Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

/// The per-round drill script shared by both transport legs, as raw
/// request lines (the HTTP leg sends the same bytes the TCP leg does).
fn script_lines(client_idx: usize, round: usize) -> Vec<String> {
    let session = format!("bench-{client_idx}-{round}");
    let mut reqs = vec![Request::Open {
        session: session.clone(),
        options: OpenOptions {
            k: Some(3),
            max_weight: Some(3.0),
            weight: Some("size".to_owned()),
            seed: Some(42 + client_idx as u64),
            capacity: Some(20_000),
            min_ss: Some(1_000),
        },
    }];
    reqs.push(Request::Expand {
        session: session.clone(),
        path: vec![],
    });
    for child in 0..3 {
        reqs.push(Request::Expand {
            session: session.clone(),
            path: vec![child],
        });
    }
    reqs.push(Request::Rules {
        session: session.clone(),
    });
    reqs.push(Request::Stats {
        session: session.clone(),
    });
    reqs.push(Request::Close { session });
    reqs.iter().map(|r| r.to_json().to_string()).collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let sweep: Vec<usize> = std::env::var("SDD_SERVE_CLIENTS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let rounds: usize = std::env::var("SDD_SERVE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let table = Arc::new(sdd_datagen::retail(42));
    println!(
        "serve bench on retail ({} rows × {} columns), rounds={rounds}, \
         host parallelism {host_threads}:",
        table.n_rows(),
        table.n_columns()
    );

    let mut entries = String::new();
    for &clients in &sweep {
        let server = Server::bind(
            table.clone(),
            ServerConfig {
                threads: clients + 2,
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server");
        let addr = server.addr();

        let wall = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                std::thread::spawn(move || -> Vec<f64> {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::new();
                    for round in 0..rounds {
                        for line in script_lines(i, round) {
                            let t = Instant::now();
                            client.call_line(&line).expect("request");
                            latencies.push(t.elapsed().as_secs_f64());
                        }
                    }
                    latencies
                })
            })
            .collect();
        let mut latencies: Vec<f64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("bench client"))
            .collect();
        let wall_s = wall.elapsed().as_secs_f64();
        server.shutdown();

        latencies.sort_by(|a, b| a.total_cmp(b));
        let n = latencies.len();
        let mean = latencies.iter().sum::<f64>() / n as f64;
        let (p50, p95) = (percentile(&latencies, 0.50), percentile(&latencies, 0.95));
        let throughput = n as f64 / wall_s;
        println!(
            "  tcp  {clients:>2} client(s): {n:>4} requests | mean {:>8.1} µs | \
             p50 {:>8.1} µs | p95 {:>8.1} µs | {throughput:>8.0} req/s",
            mean * 1e6,
            p50 * 1e6,
            p95 * 1e6,
        );
        entries.push_str(&format!(
            "    {{ \"clients\": {clients}, \"requests\": {n}, \
             \"mean_us\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
             \"throughput_rps\": {throughput:.1} }},\n",
            mean * 1e6,
            p50 * 1e6,
            p95 * 1e6,
        ));
    }
    let entries = entries.trim_end().trim_end_matches(',').to_owned();

    // HTTP leg: the same drill script over the HTTP/1.1 front-end. Latency
    // numbers come from the *server's* histogram — the exact counters the
    // `/metrics` endpoint exports — so the report and a Prometheus scrape
    // can never disagree. (Percentiles are therefore bucket upper bounds.)
    let mut http_entries = String::new();
    for &clients in &sweep {
        let server = Server::bind(
            table.clone(),
            ServerConfig {
                threads: clients + 2,
                http_addr: Some("127.0.0.1:0".to_owned()),
                ..ServerConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server");
        let http_addr = server.http_addr().expect("http addr");

        let wall = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = HttpClient::connect(http_addr).expect("http connect");
                    for round in 0..rounds {
                        for line in script_lines(i, round) {
                            let (status, _) = client.call_line(None, &line).expect("http request");
                            assert_eq!(status, 200, "bench script request failed");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("bench http client");
        }
        let wall_s = wall.elapsed().as_secs_f64();

        let hist = &server.metrics().http_latency;
        let n = hist.count();
        let mean = hist.mean_seconds();
        let (p50, p95) = (hist.percentile(0.50), hist.percentile(0.95));
        server.shutdown();

        let throughput = n as f64 / wall_s;
        println!(
            "  http {clients:>2} client(s): {n:>4} requests | mean {:>8.1} µs | \
             p50 {:>8.1} µs | p95 {:>8.1} µs | {throughput:>8.0} req/s",
            mean * 1e6,
            p50 * 1e6,
            p95 * 1e6,
        );
        http_entries.push_str(&format!(
            "    {{ \"clients\": {clients}, \"requests\": {n}, \
             \"mean_us\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
             \"throughput_rps\": {throughput:.1} }},\n",
            mean * 1e6,
            p50 * 1e6,
            p95 * 1e6,
        ));
    }
    let http_entries = http_entries.trim_end().trim_end_matches(',');

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sdd_server/concurrent_drilldown_sessions\",\n",
            "  \"dataset\": \"retail (6000 rows x 3 columns)\",\n",
            "  \"script\": \"open + 4 expands + rules + stats + close per round\",\n",
            "  \"rounds_per_client\": {rounds},\n",
            "  \"host_parallelism\": {host},\n",
            "  \"simd\": \"{simd}\",\n",
            "  \"determinism\": \"per-session transcripts are byte-identical to single-threaded replay (tests/server_stress.rs) and to the HTTP front-end (tests/http_parity.rs)\",\n",
            "  \"sweep\": [\n{entries}\n  ],\n",
            "  \"http_latency_source\": \"server-side sdd_request_latency_seconds histogram (same counters /metrics exposes; percentiles are bucket upper bounds)\",\n",
            "  \"http_sweep\": [\n{http_entries}\n  ]\n",
            "}}\n"
        ),
        rounds = rounds,
        host = host_threads,
        simd = sdd_bench::simd_level(),
        entries = entries,
        http_entries = http_entries,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
