//! Emits `BENCH_spill.json`: the spill-tier fast path (predicate pushdown
//! over packed local codes + runtime-dispatched SIMD scans) measured at the
//! tightest residency budget, against the monolithic kernel. Run with:
//!
//! ```sh
//! cargo run --release -p sdd-bench --bin exp_spill
//! ```
//!
//! Every cell keeps `resident = 1` — the worst case for the spill tier:
//! all but one shard must be consumed from its spill coding — and times
//!
//! * **search** — one full-table best-marginal search (pass-1 histograms
//!   and pass-j cells computed straight off the packed 1/2/4-byte local
//!   codes, scattered through each shard's `remap`),
//! * **scan** — one rule-coverage scan (the sampling layer's Create path;
//!   segment-granular range reads of just the rule's columns).
//!
//! Both are timed with the SIMD kernels **on and off** (the same runtime
//! kill switch the CLI's `--no-simd` flag throws), and every cell asserts
//! **bit-identity** with the monolithic kernel at run time — the bench
//! doubles as a parity check at realistic scale.
//!
//! The emitted JSON records `host_parallelism` and the detected `simd`
//! level, and gates its headline claim on them: `claim_holds` is only
//! meaningful for the recorded host provenance.
//!
//! Environment knobs: `SDD_SHARD_ROWS` (default 100 000), `SDD_REPS`
//! (default 3).

use sdd_core::accel;
use sdd_core::{
    covered_rows, find_best_marginal_rule, try_covered_rows_sharded,
    try_find_best_marginal_rule_sharded, Rule, SearchOptions, SearchScratch, SizeWeight,
};
use sdd_table::{ShardConfig, ShardedTable, ShardedView};
use std::sync::Arc;
use std::time::Instant;

fn best_of(reps: usize, mut run: impl FnMut()) -> f64 {
    run(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let rows: usize = std::env::var("SDD_SHARD_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let reps: usize = std::env::var("SDD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let table = sdd_bench::datasets::census3(rows);
    let view = table.view();
    let cov = vec![0.0f64; view.len()];
    let mw = 5.0;
    let mut opts = SearchOptions::new(mw);
    opts.parallel = false; // measure the storage tier, not thread count

    let mono = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)
        .expect("census view yields a rule");
    let t_mono_search = best_of(reps, || {
        let _ = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts);
    });
    let scan_rule = Rule::trivial(table.n_columns()).with_value(0, table.code(0, 0));
    let mono_rows = covered_rows(&table, &scan_rule);
    let t_mono_scan = best_of(reps, || {
        let _ = covered_rows(&table, &scan_rule);
    });

    println!(
        "spill-tier fast path on census3({rows}), mw={mw}, reps={reps}, resident=1 \
         (monolithic: search {:.2} ms, scan {:.2} ms; host {} threads, simd {}):",
        t_mono_search * 1e3,
        t_mono_scan * 1e3,
        sdd_bench::host_parallelism(),
        sdd_bench::simd_level(),
    );

    let mut entries = String::new();
    let mut worst_search_ratio = 0.0f64;
    for &shards in &[2usize, 4, 8] {
        let cfg = ShardConfig::spilling(shards, 1, std::env::temp_dir());
        let st = Arc::new(ShardedTable::from_table(&table, &cfg).expect("shard build"));
        let sview = ShardedView::all(st.clone());

        let mut cell = [0.0f64; 4]; // search on/off, scan on/off
        for (slot, simd_on) in [(0usize, true), (1usize, false)] {
            accel::set_simd_enabled(simd_on);
            // Per-cell runtime bit-parity: same winner, same marginal bits,
            // same count bits, same covered rows — with and without SIMD.
            let mut scratch = SearchScratch::new();
            let got =
                try_find_best_marginal_rule_sharded(&sview, &SizeWeight, &cov, &opts, &mut scratch)
                    .expect("spill files readable")
                    .expect("sharded search yields a rule");
            assert_eq!(got.rule, mono.rule, "{shards} shards, simd={simd_on}");
            assert_eq!(
                got.marginal_value.to_bits(),
                mono.marginal_value.to_bits(),
                "{shards} shards, simd={simd_on}: marginal diverged"
            );
            assert_eq!(
                got.count.to_bits(),
                mono.count.to_bits(),
                "{shards} shards, simd={simd_on}: count diverged"
            );
            assert_eq!(
                try_covered_rows_sharded(&st, &scan_rule).expect("spill files readable"),
                mono_rows,
                "{shards} shards, simd={simd_on}: coverage scan diverged"
            );

            cell[slot] = best_of(reps, || {
                let mut scratch = SearchScratch::new();
                let _ = try_find_best_marginal_rule_sharded(
                    &sview,
                    &SizeWeight,
                    &cov,
                    &opts,
                    &mut scratch,
                );
            });
            cell[slot + 2] = best_of(reps, || {
                let _ = try_covered_rows_sharded(&st, &scan_rule);
            });
        }
        accel::set_simd_enabled(true); // restore the detected level

        let [t_search, t_search_scalar, t_scan, t_scan_scalar] = cell;
        let ratio = t_search / t_mono_search;
        worst_search_ratio = worst_search_ratio.max(ratio);
        let (loads, evictions) = (st.loads(), st.evictions());
        println!(
            "  {shards} shards: search {:>8.2} ms ({:.2}x mono; scalar {:>8.2} ms) | \
             scan {:>7.2} ms (scalar {:>7.2} ms) | loads {loads:>4} evictions {evictions:>4}",
            t_search * 1e3,
            ratio,
            t_search_scalar * 1e3,
            t_scan * 1e3,
            t_scan_scalar * 1e3,
        );
        entries.push_str(&format!(
            "    {{ \"shards\": {shards}, \"resident\": 1, \
             \"search_seconds\": {t_search:.6}, \"search_scalar_seconds\": {t_search_scalar:.6}, \
             \"scan_seconds\": {t_scan:.6}, \"scan_scalar_seconds\": {t_scan_scalar:.6}, \
             \"search_vs_monolithic\": {ratio:.3}, \
             \"scan_vs_monolithic\": {:.3}, \
             \"spill_loads\": {loads}, \"evictions\": {evictions} }},\n",
            t_scan / t_mono_scan,
        ));
    }
    let entries = entries.trim_end().trim_end_matches(',');

    let target = 2.5f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"spill_fast_path/census3_pushdown_simd\",\n",
            "{host_fields}\n",
            "  \"rows\": {rows},\n",
            "  \"max_weight\": {mw},\n",
            "  \"reps\": {reps},\n",
            "  \"monolithic_search_seconds\": {mono_search:.6},\n",
            "  \"monolithic_scan_seconds\": {mono_scan:.6},\n",
            "  \"determinism\": \"every cell's search winner, marginal bits, count bits, and covered-row list are bit-identical to the monolithic kernel, SIMD on and off (asserted at run time)\",\n",
            "  \"sweep\": [\n{entries}\n  ],\n",
            "  \"claim\": \"spill-path search (resident=1) within {target}x of monolithic\",\n",
            "  \"claim_target_max_ratio\": {target},\n",
            "  \"claim_measured_max_ratio\": {worst:.3},\n",
            "  \"claim_holds\": {holds},\n",
            "  \"claim_gated_on\": \"claim_holds is only valid for the recorded host_parallelism and simd fields above; rerun on the target host before citing\"\n",
            "}}\n"
        ),
        host_fields = sdd_bench::host_json_fields(),
        rows = rows,
        mw = mw,
        reps = reps,
        mono_search = t_mono_search,
        mono_scan = t_mono_scan,
        entries = entries,
        target = target,
        worst = worst_search_ratio,
        holds = worst_search_ratio <= target,
    );
    std::fs::write("BENCH_spill.json", &json).expect("write BENCH_spill.json");
    println!(
        "wrote BENCH_spill.json (max search ratio {worst_search_ratio:.2}x, target {target}x)"
    );
}
