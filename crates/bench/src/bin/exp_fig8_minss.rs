//! Experiment: paper Figure 8 — effect of `minSS` on (a) expansion time,
//! (b) percent error of displayed counts, and (c) number of incorrect
//! rules, four series: {Marketing, Census} × {Size, Bits}.
//!
//! Protocol mirrors §5.2.2: per (W, minSS), expand the empty rule on a
//! fresh sample, compare displayed counts against exact counts over the
//! full table, compare the displayed rule set against the exact top-k;
//! average over repetitions.
//!
//! Expected shapes: time grows ~linearly in `minSS`; percent error decays
//! ~1/√minSS; incorrect rules decay toward 0.

use sdd_bench::report::{print_table, write_csv};
use sdd_bench::{row, timing};
use sdd_core::{rule_count, BitsWeight, Brs, BrsResult, Rule, SizeWeight, WeightFn};
use sdd_sampling::{percent_error, AllocationStrategy, SampleHandler, SampleHandlerConfig};
use sdd_table::Table;

const K: usize = 4;

fn main() {
    let reps = sdd_bench::reps();
    let marketing = sdd_bench::datasets::marketing7();
    let census = sdd_bench::datasets::census7(sdd_bench::census_rows());
    println!(
        "Figure 8 protocol: expand empty rule on a fresh sample, k={K}, {reps} reps; census rows = {}\n",
        census.n_rows()
    );

    let minss_values = [500usize, 1000, 2000, 3000, 5000, 8000];
    let mut rows = vec![row![
        "minSS",
        "series",
        "mean_ms",
        "pct_error",
        "incorrect_rules"
    ]];

    for (series, table, weight, mw) in [
        (
            "marketing-size",
            &marketing,
            &SizeWeight as &dyn WeightFn,
            5.0,
        ),
        (
            "marketing-bits",
            &marketing,
            &BitsWeight as &dyn WeightFn,
            20.0,
        ),
        ("census-size", &census, &SizeWeight as &dyn WeightFn, 5.0),
        ("census-bits", &census, &BitsWeight as &dyn WeightFn, 20.0),
    ] {
        // Exact reference on the full table (computed once per series).
        let exact = Brs::new(weight).with_max_weight(mw).run(&table.view(), K);
        let exact_rules: Vec<Rule> = exact.rules.iter().map(|s| s.rule.clone()).collect();

        for &minss in &minss_values {
            let mut total_err = 0.0;
            let mut total_incorrect = 0usize;
            let mut total_ms = 0.0;
            for rep in 0..reps {
                let (ms, result) = one_expansion(table, weight, mw, minss, rep as u64);
                total_ms += ms;
                let (err, incorrect) = accuracy(table, &result, &exact_rules);
                total_err += err;
                total_incorrect += incorrect;
            }
            rows.push(row![
                minss,
                series,
                format!("{:.1}", total_ms / reps as f64),
                format!("{:.3}", total_err / reps as f64),
                format!("{:.2}", total_incorrect as f64 / reps as f64)
            ]);
        }
    }

    print_table(&rows);
    let path = write_csv("fig8_minss.csv", &rows);
    println!("\nCSV: {}", path.display());
}

fn one_expansion(
    table: &std::sync::Arc<Table>,
    weight: &dyn WeightFn,
    mw: f64,
    minss: usize,
    rep: u64,
) -> (f64, BrsResult) {
    let trivial = Rule::trivial(table.n_columns());
    let (ms, result) = timing::time_once(|| {
        let mut handler = SampleHandler::new(
            table.clone(),
            SampleHandlerConfig {
                capacity: 50_000.max(minss),
                min_sample_size: minss,
                seed: 1000 + rep,
                strategy: AllocationStrategy::Dp,
            },
        );
        let sample = handler.get_sample(&trivial);
        Brs::new(weight)
            .with_max_weight(mw)
            .run(&sample.view.as_view(), K)
    });
    (ms, result)
}

/// Returns (average percent count error over displayed rules, number of
/// displayed rules not in the exact top-k).
fn accuracy(table: &Table, result: &BrsResult, exact: &[Rule]) -> (f64, usize) {
    let view = table.view();
    let mut err_sum = 0.0;
    let mut incorrect = 0usize;
    for s in &result.rules {
        let actual = rule_count(&view, &s.rule);
        err_sum += percent_error(s.count, actual);
        if !exact.contains(&s.rule) {
            incorrect += 1;
        }
    }
    let n = result.rules.len().max(1) as f64;
    (err_sum / n, incorrect)
}
