//! Emits `BENCH_shard.json`: a shard-count × resident-budget sweep of the
//! sharded substrate on a census-shaped table. Run with:
//!
//! ```sh
//! cargo run --release -p sdd-bench --bin exp_shard
//! ```
//!
//! For every `(shards, resident)` cell the sweep times the drill-down hot
//! paths over the sharded storage —
//!
//! * **search** — one full-table best-marginal search (the per-shard
//!   counting kernel),
//! * **scan** — one rule-coverage scan + reservoir draw (the sampling
//!   layer's Create path),
//!
//! and asserts the search winner's marginal is **bit-identical** to the
//! monolithic kernel in every cell: the sweep doubles as a determinism
//! check on realistic sizes. `resident = 0` means fully resident;
//! smaller budgets force the spill tier (`loads`/`evictions` are recorded
//! so the JSON shows how much disk traffic each budget paid).
//!
//! Environment knobs: `SDD_SHARD_ROWS` (default 100 000), `SDD_REPS`
//! (default 3).

use sdd_core::{
    covered_rows_sharded, find_best_marginal_rule, find_best_marginal_rule_sharded, Rule,
    SearchOptions, SearchScratch, SizeWeight,
};
use sdd_table::{ShardConfig, ShardedTable, ShardedView};
use std::sync::Arc;
use std::time::Instant;

fn best_of(reps: usize, mut run: impl FnMut()) -> f64 {
    run(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let rows: usize = std::env::var("SDD_SHARD_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let reps: usize = std::env::var("SDD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let table = sdd_bench::datasets::census3(rows);
    let view = table.view();
    let cov = vec![0.0f64; view.len()];
    let mw = 5.0;
    let mut opts = SearchOptions::new(mw);
    opts.parallel = false; // measure the storage tier, not thread count
    let mono = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts)
        .expect("census view yields a rule");
    let mono_bits = mono.marginal_value.to_bits();
    let t_mono = best_of(reps, || {
        let _ = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts);
    });

    let scan_rule = Rule::trivial(table.n_columns()).with_value(0, table.code(0, 0));

    println!(
        "sharded substrate sweep on census3({rows}), mw={mw}, reps={reps} \
         (monolithic search {:.2} ms):",
        t_mono * 1e3
    );
    let mut entries = String::new();
    for &shards in &[1usize, 2, 4, 8] {
        let mut budgets = vec![0usize, shards.div_ceil(2), 1];
        budgets.dedup();
        budgets.retain(|&r| r == 0 || r < shards); // budget ≥ shards never spills
        for resident in budgets {
            let cfg = if resident == 0 {
                ShardConfig::in_memory(shards)
            } else {
                ShardConfig::spilling(shards, resident, std::env::temp_dir())
            };
            let st = Arc::new(ShardedTable::from_table(&table, &cfg).expect("shard build"));
            let sview = ShardedView::all(st.clone());

            let mut scratch = SearchScratch::new();
            let got =
                find_best_marginal_rule_sharded(&sview, &SizeWeight, &cov, &opts, &mut scratch)
                    .expect("sharded search yields a rule");
            assert_eq!(
                got.marginal_value.to_bits(),
                mono_bits,
                "{shards}×{resident}: sharded search diverged from monolithic"
            );
            let t_search = best_of(reps, || {
                let mut scratch = SearchScratch::new();
                let _ =
                    find_best_marginal_rule_sharded(&sview, &SizeWeight, &cov, &opts, &mut scratch);
            });
            let t_scan = best_of(reps, || {
                let _ = covered_rows_sharded(&st, &scan_rule);
            });
            let (loads, evictions) = (st.loads(), st.evictions());
            println!(
                "  {shards} shard(s), resident {resident:>2}: search {:>8.2} ms \
                 ({:.2}x mono) | scan {:>7.2} ms | loads {loads:>4} evictions {evictions:>4}",
                t_search * 1e3,
                t_search / t_mono,
                t_scan * 1e3,
            );
            entries.push_str(&format!(
                "    {{ \"shards\": {shards}, \"resident\": {resident}, \
                 \"search_seconds\": {t_search:.6}, \"scan_seconds\": {t_scan:.6}, \
                 \"vs_monolithic\": {:.3}, \"spill_loads\": {loads}, \
                 \"evictions\": {evictions} }},\n",
                t_search / t_mono,
            ));
        }
    }
    let entries = entries.trim_end().trim_end_matches(',');

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sharded_substrate/census3_shard_sweep\",\n",
            "{host_fields}\n",
            "  \"rows\": {rows},\n",
            "  \"max_weight\": {mw},\n",
            "  \"reps\": {reps},\n",
            "  \"monolithic_search_seconds\": {mono:.6},\n",
            "  \"determinism\": \"every cell's search result is bit-identical to the monolithic kernel (asserted at run time); resident budgets change only spill traffic\",\n",
            "  \"sweep\": [\n{entries}\n  ]\n",
            "}}\n"
        ),
        host_fields = sdd_bench::host_json_fields(),
        rows = rows,
        mw = mw,
        reps = reps,
        mono = t_mono,
        entries = entries,
    );
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json");
}
