//! Experiment: paper Figures 1–3 — qualitative study on Marketing.
//!
//! * Fig. 1: summary after clicking the empty rule (Size weighting, k = 4,
//!   mw = 5). Expected shape: gender × long-residence rules dominate.
//! * Fig. 2: star expansion on the Education column of a displayed rule —
//!   children enumerate education levels within that rule.
//! * Fig. 3: plain expansion of a displayed rule.

use sdd_bench::report::write_csv;
use sdd_bench::row;
use sdd_core::{Session, SizeWeight};

fn main() {
    let table = sdd_bench::datasets::marketing7();
    let mut session = Session::new(table.clone(), Box::new(SizeWeight), 4);
    session.set_max_weight(5.0);

    session.expand(&[]).expect("root expansion");
    println!("== Figure 1: summary after clicking the empty rule ==");
    println!("{}", session.render());

    // Shape assertions (synthetic data, same correlations the paper shows):
    // single-gender rules and gender × >10-years rules dominate.
    let children = session.root().children();
    assert_eq!(children.len(), 4);
    let years = table.schema().index_of("YearsInBayArea").unwrap();
    assert!(
        children.iter().any(|n| !n.rule.is_star(years)),
        "expected a long-residence rule in the top 4"
    );

    let mut rows = vec![row!["figure", "rule", "count", "weight"]];
    for n in children {
        rows.push(row!["fig1", n.rule.display(&table), n.count, n.weight]);
    }

    // Figure 2: star-expand Education on the first rule that leaves it ?.
    let education = table.schema().index_of("Education").unwrap();
    let idx = session
        .root()
        .children()
        .iter()
        .position(|n| n.rule.is_star(education))
        .expect("some displayed rule leaves Education starred");
    session
        .expand_star(&[idx], education)
        .expect("star expansion");
    println!("== Figure 2: star expansion on 'Education' ==");
    println!("{}", session.render());
    for n in session.node(&[idx]).unwrap().children() {
        assert!(!n.rule.is_star(education));
        rows.push(row!["fig2", n.rule.display(&table), n.count, n.weight]);
    }
    session.collapse(&[idx]).unwrap();

    // Figure 3: plain expansion of a displayed rule.
    session.expand(&[0]).expect("rule expansion");
    println!("== Figure 3: expanding a displayed rule ==");
    println!("{}", session.render());
    for n in session.node(&[0]).unwrap().children() {
        rows.push(row!["fig3", n.rule.display(&table), n.count, n.weight]);
    }

    let path = write_csv("fig1_2_3.csv", &rows);
    println!("CSV: {}", path.display());
}
