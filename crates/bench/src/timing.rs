//! Wall-clock timing helpers for the experiment binaries.

use std::time::Instant;

/// Times `f` once, returning `(elapsed_ms, result)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// Runs `f` `reps` times and returns the mean elapsed milliseconds.
pub fn time_mean(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps > 0);
    let mut total = 0.0;
    for _ in 0..reps {
        let (ms, ()) = time_once(&mut f);
        total += ms;
    }
    total / reps as f64
}

/// Mean and standard deviation of per-rep elapsed milliseconds.
pub fn time_stats(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    assert!(reps > 0);
    let samples: Vec<f64> = (0..reps).map(|_| time_once(&mut f).0).collect();
    let mean = samples.iter().sum::<f64>() / reps as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / reps as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_result() {
        let (ms, v) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn time_mean_averages() {
        let mut n = 0;
        let ms = time_mean(3, || n += 1);
        assert_eq!(n, 3);
        assert!(ms >= 0.0);
    }

    #[test]
    fn time_stats_sane() {
        let (mean, sd) = time_stats(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(mean >= 0.0 && sd >= 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_reps_panics() {
        let _ = time_mean(0, || {});
    }
}
