//! Spill-tier fault injection: a corrupted or truncated spill file must
//! surface as an error *response* on the session that needed it — never as
//! a panic that takes down the connection worker — and the engine must keep
//! serving every request that does not touch the damaged shard.

use sdd_server::{Engine, EngineConfig, OpenOptions, Request, Response, TailConfig};
use sdd_table::{LiveTable, LiveTableConfig, Schema, ShardConfig, ShardedTable, TableStore};
use std::sync::Arc;

fn spilling_engine() -> (Engine, Arc<ShardedTable>) {
    let table = sdd_datagen::retail(42);
    let st = Arc::new(
        ShardedTable::from_table(&table, &ShardConfig::spilling(4, 1, std::env::temp_dir()))
            .unwrap(),
    );
    (
        Engine::with_store(TableStore::Sharded(st.clone()), EngineConfig::default()),
        st,
    )
}

fn open(engine: &Engine, session: &str) -> Response {
    engine
        .handle(&Request::Open {
            session: session.to_owned(),
            options: OpenOptions {
                k: Some(3),
                max_weight: Some(3.0),
                weight: Some("size".to_owned()),
                seed: Some(7),
                capacity: Some(20_000),
                min_ss: Some(1_000),
            },
        })
        .0
}

#[test]
fn truncated_spill_file_yields_error_response_not_crash() {
    let (engine, st) = spilling_engine();
    assert!(matches!(open(&engine, "s"), Response::Opened { .. }));

    // Damage a spilled shard behind the engine's back (shard 0 may be the
    // resident one, so pick the last — with budget 1 it is spilled out
    // after construction... unless it was just written; damage a shard
    // that is definitely not resident by checking the spill path exists).
    let path = st.spill_path(0).unwrap().to_path_buf();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..16]).unwrap();
    // Drop any cached copy so the next scan must hit the damaged file.
    st.evict_all();

    // The expansion needs a Create scan over every shard → error response.
    let (resp, _) = engine.handle(&Request::Expand {
        session: "s".to_owned(),
        path: vec![],
    });
    match resp {
        Response::Error { message } => {
            assert!(
                message.contains("storage error"),
                "expected a storage error, got: {message}"
            );
        }
        other => panic!("expected an error response, got {other:?}"),
    }

    // The engine (and the session) survive: requests still work.
    assert!(matches!(engine.handle(&Request::Ping).0, Response::Pong));
    assert!(matches!(
        engine
            .handle(&Request::Rules {
                session: "s".to_owned()
            })
            .0,
        Response::RuleList { .. }
    ));

    // Restore the file: the very same session recovers.
    std::fs::write(&path, &bytes).unwrap();
    let (resp, _) = engine.handle(&Request::Expand {
        session: "s".to_owned(),
        path: vec![],
    });
    assert!(
        matches!(resp, Response::Expanded { .. }),
        "session must recover once the file is intact: {resp:?}"
    );
}

#[test]
fn refresh_surfaces_spill_errors_as_responses() {
    let (engine, st) = spilling_engine();
    assert!(matches!(open(&engine, "s"), Response::Opened { .. }));
    let (resp, _) = engine.handle(&Request::Expand {
        session: "s".to_owned(),
        path: vec![],
    });
    assert!(matches!(resp, Response::Expanded { .. }));

    let path = st.spill_path(1).unwrap().to_path_buf();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, b"SDDSHRD2garbage").unwrap();
    st.evict_all();

    let (resp, _) = engine.handle(&Request::Refresh {
        session: "s".to_owned(),
    });
    match resp {
        Response::Error { message } => assert!(message.contains("storage error")),
        other => panic!("expected an error response, got {other:?}"),
    }
    assert!(matches!(engine.handle(&Request::Ping).0, Response::Pong));

    std::fs::write(&path, &bytes).unwrap();
    let (resp, _) = engine.handle(&Request::Refresh {
        session: "s".to_owned(),
    });
    assert!(matches!(resp, Response::RuleList { .. }));
}

#[test]
fn deferred_refresh_fault_during_append_is_an_error_response() {
    // The live serving mode: refresh is *scheduled* and drained off the
    // request path. A spill fault while the deferred scan runs must become
    // an error response on the session's next operation — never a worker
    // panic — and the refresh stays scheduled so the session recovers once
    // the file is intact.
    let dir = std::env::temp_dir().join(format!("sdd-live-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let schema = Schema::new(["Store", "Product"]).unwrap();
    let live = Arc::new(
        LiveTable::new(
            schema,
            vec![],
            &LiveTableConfig::spilling(16, 1, dir.clone()),
        )
        .unwrap(),
    );
    let engine = Engine::with_store(
        TableStore::from(live.clone()),
        EngineConfig {
            tail: Some(TailConfig::default()),
            ..EngineConfig::default()
        },
    );
    let batch: Vec<Vec<String>> = (0..64)
        .map(|i| vec![format!("s{}", i % 4), format!("p{}", i % 7)])
        .collect();
    engine.handle(&Request::Append {
        rows: batch.clone(),
        measures: vec![],
    });
    assert!(matches!(open(&engine, "s"), Response::Opened { .. }));
    let (resp, _) = engine.handle(&Request::Expand {
        session: "s".to_owned(),
        path: vec![],
    });
    assert!(matches!(resp, Response::Expanded { .. }), "{resp:?}");

    // Schedule the refresh (live mode answers immediately)...
    let (resp, hint) = engine.handle(&Request::Refresh {
        session: "s".to_owned(),
    });
    assert!(matches!(resp, Response::RuleList { .. }), "{resp:?}");
    assert!(
        hint.is_some(),
        "live refresh must be deferred to the worker"
    );

    // ... then an append lands and a sealed segment goes bad before the
    // deferred scan ran.
    engine.handle(&Request::Append {
        rows: batch,
        measures: vec![],
    });
    let snap = live.snapshot();
    let damaged = (0..snap.table.n_shards())
        .find_map(|i| snap.table.spill_path(i).map(|p| p.to_path_buf()))
        .expect("a sealed segment must have spilled");
    let bytes = std::fs::read(&damaged).unwrap();
    std::fs::write(&damaged, &bytes[..8]).unwrap();
    snap.table.evict_all();

    // The worker tick swallows the fault (best-effort, refresh stays
    // scheduled); the session's next operation surfaces it as a response.
    engine.run_pending_prefetch("s");
    let (resp, _) = engine.handle(&Request::Rules {
        session: "s".to_owned(),
    });
    match resp {
        Response::Error { message } => assert!(
            message.contains("storage error"),
            "expected a storage error, got: {message}"
        ),
        other => panic!("expected an error response, got {other:?}"),
    }
    assert!(matches!(engine.handle(&Request::Ping).0, Response::Pong));

    // Restore: the same session drains the refresh and serves again.
    std::fs::write(&damaged, &bytes).unwrap();
    let (resp, _) = engine.handle(&Request::Rules {
        session: "s".to_owned(),
    });
    let Response::RuleList { rules } = resp else {
        panic!("session must recover once the file is intact: {resp:?}");
    };
    assert_eq!(
        rules[0].count, 128.0,
        "recovered session is at the new epoch"
    );
}
