//! End-to-end smoke tests: a real TCP server on an ephemeral port, driven
//! through the [`Client`] helper.

use sdd_server::{Client, OpenOptions, Request, Response, Server, ServerConfig};
use std::sync::Arc;

fn start_retail_server() -> sdd_server::ServerHandle {
    let table = Arc::new(sdd_datagen::retail(42));
    Server::bind(table, ServerConfig::default(), "127.0.0.1:0")
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread")
}

fn open_opts(seed: u64) -> OpenOptions {
    OpenOptions {
        k: Some(3),
        max_weight: Some(3.0),
        weight: Some("size".to_owned()),
        seed: Some(seed),
        capacity: Some(20_000),
        min_ss: Some(1_000),
    }
}

#[test]
fn full_session_lifecycle_over_tcp() {
    let server = start_retail_server();
    let mut client = Client::connect(server.addr()).unwrap();

    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    match client.call(&Request::TableInfo).unwrap() {
        Response::TableInfo { rows, columns } => {
            assert_eq!(rows, 6000);
            assert_eq!(columns, ["Store", "Product", "Region"]);
        }
        other => panic!("unexpected {other:?}"),
    }

    let session = "e2e".to_owned();
    assert_eq!(
        client
            .call(&Request::Open {
                session: session.clone(),
                options: open_opts(7),
            })
            .unwrap(),
        Response::Opened {
            session: session.clone()
        }
    );

    let children = match client
        .call(&Request::Expand {
            session: session.clone(),
            path: vec![],
        })
        .unwrap()
    {
        Response::Expanded { rules } => rules,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(children.len(), 3);
    assert!(children.iter().any(|r| r.rule.contains("Walmart")));
    assert_eq!(children[0].path, vec![0]);

    // Drill into a prefetched child: must not block on a Create scan.
    match client
        .call(&Request::Expand {
            session: session.clone(),
            path: vec![0],
        })
        .unwrap()
    {
        Response::Expanded { rules } => assert!(!rules.is_empty()),
        other => panic!("unexpected {other:?}"),
    }
    match client
        .call(&Request::Stats {
            session: session.clone(),
        })
        .unwrap()
    {
        Response::Stats { stats } => {
            assert_eq!(stats.expansions, 2);
            assert_eq!(stats.creates, 1, "second expansion served from memory");
            assert_eq!(stats.served_from_memory, 1);
        }
        other => panic!("unexpected {other:?}"),
    }

    match client
        .call(&Request::Render {
            session: session.clone(),
        })
        .unwrap()
    {
        Response::Rendered { text } => {
            assert!(text.contains("95% CI"), "{text}");
            assert!(text.lines().any(|l| l.starts_with(". ")), "{text}");
        }
        other => panic!("unexpected {other:?}"),
    }

    match client
        .call(&Request::Refresh {
            session: session.clone(),
        })
        .unwrap()
    {
        Response::RuleList { rules } => {
            assert!(rules.iter().all(|r| r.exact));
            assert_eq!(rules[0].count, 6000.0);
        }
        other => panic!("unexpected {other:?}"),
    }

    assert_eq!(
        client
            .call(&Request::Close {
                session: session.clone()
            })
            .unwrap(),
        Response::Closed
    );
    // Closed session is gone.
    match client.call(&Request::Rules { session }).unwrap() {
        Response::Error { message } => assert!(message.contains("no session"), "{message}"),
        other => panic!("unexpected {other:?}"),
    }

    server.shutdown();
}

#[test]
fn protocol_errors_keep_the_connection_alive() {
    let server = start_retail_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // Garbage line → error response, connection still usable.
    let resp = client.call_line("this is not json").unwrap();
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("bad json"), "{resp}");

    client
        .call(&Request::Open {
            session: "err".to_owned(),
            options: open_opts(1),
        })
        .unwrap();
    // SessionError and TableError surfaced via Display.
    match client
        .call(&Request::Expand {
            session: "err".to_owned(),
            path: vec![9],
        })
        .unwrap()
    {
        Response::Error { message } => assert_eq!(message, "no node at path [9]"),
        other => panic!("unexpected {other:?}"),
    }
    match client
        .call(&Request::Star {
            session: "err".to_owned(),
            path: vec![],
            column: "Price".to_owned(),
        })
        .unwrap()
    {
        Response::Error { message } => assert_eq!(message, "unknown column: \"Price\""),
        other => panic!("unexpected {other:?}"),
    }
    // Duplicate open.
    match client
        .call(&Request::Open {
            session: "err".to_owned(),
            options: OpenOptions::default(),
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("already exists"), "{message}"),
        other => panic!("unexpected {other:?}"),
    }
    // Still alive.
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    server.shutdown();
}

#[test]
fn sessions_are_isolated_across_connections() {
    let server = start_retail_server();
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();

    for (client, name) in [(&mut a, "alice"), (&mut b, "bob")] {
        client
            .call(&Request::Open {
                session: name.to_owned(),
                options: open_opts(99),
            })
            .unwrap();
    }
    // Alice expands; Bob's session must stay untouched.
    a.call(&Request::Expand {
        session: "alice".to_owned(),
        path: vec![],
    })
    .unwrap();
    match b
        .call(&Request::Rules {
            session: "bob".to_owned(),
        })
        .unwrap()
    {
        Response::RuleList { rules } => assert_eq!(rules.len(), 1, "bob still shows only root"),
        other => panic!("unexpected {other:?}"),
    }
    // Connections can drive each other's sessions (names, not connections,
    // are the key) — Bob reads Alice's tree.
    match b
        .call(&Request::Rules {
            session: "alice".to_owned(),
        })
        .unwrap()
    {
        Response::RuleList { rules } => assert_eq!(rules.len(), 4),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(server.engine().n_sessions(), 2);
    server.shutdown();
}
