//! Serve-path robustness regressions: oversized request lines and
//! stalled/half-open clients.
//!
//! Two bugs this file pins down forever:
//!
//! 1. **Oversized request line.** The reader caps a line at 1 MiB, but the
//!    connection used to *survive* the refusal by discarding the rest of
//!    the line — letting a hostile client stream unbounded garbage through
//!    the discard loop forever. Now the refusal is final: one clean
//!    `Response::Error`, then the connection closes (and its sessions are
//!    reaped).
//! 2. **Stalled client pins a pool worker.** A client that connects and
//!    goes silent (or whose network half-opens) used to park a connection
//!    worker in `read` forever; enough of them starved the pool. With
//!    `ServerConfig::read_timeout`, the silent connection is disconnected,
//!    the worker freed, and connection-scoped sessions reaped.

use sdd_server::{Client, OpenOptions, Request, Response, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(config: ServerConfig) -> sdd_server::ServerHandle {
    let table = Arc::new(sdd_datagen::retail(42));
    Server::bind(table, config, "127.0.0.1:0")
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread")
}

fn wait_for_sessions(engine: &sdd_server::Engine, expected: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.n_sessions() != expected {
        assert!(
            Instant::now() < deadline,
            "registry stuck at {} sessions (expected {expected})",
            engine.n_sessions()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn oversized_line_gets_one_error_then_the_connection_closes() {
    let server = start_server(ServerConfig::default());
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // A multi-MiB "request line": three times the 1 MiB cap, no newline
    // until the very end.
    let huge = "x".repeat(3 << 20);
    writer.write_all(huge.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();

    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(
        reply.contains("\"ok\":false") && reply.contains("exceeds"),
        "oversized line must be refused: {reply}"
    );
    // …and the refusal is final: the server closes, EOF follows.
    let mut rest = String::new();
    assert_eq!(
        reader.read_line(&mut rest).unwrap(),
        0,
        "connection must close after an oversized line, got: {rest}"
    );
}

#[test]
fn oversized_line_reaps_the_connections_sessions() {
    let server = start_server(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let opened = client
        .call(&Request::Open {
            session: "big-then-dead".to_owned(),
            options: OpenOptions {
                seed: Some(7),
                capacity: Some(20_000),
                min_ss: Some(1_000),
                ..OpenOptions::default()
            },
        })
        .unwrap();
    assert!(matches!(opened, Response::Opened { .. }));
    assert_eq!(server.engine().n_sessions(), 1);

    let mut raw = client; // keep variable names honest below
    let line = format!("{}\n", "z".repeat(2 << 20));
    // Push the oversized line through the same connection.
    let err = raw.call_line(&line[..line.len() - 1]);
    // Either we read the error response, or the server already hung up.
    if let Ok(reply) = err {
        assert!(reply.contains("exceeds"), "{reply}");
    }
    wait_for_sessions(server.engine(), 0);
}

#[test]
fn stalled_client_is_disconnected_and_its_worker_reclaimed() {
    // One worker: if the stalled connection kept it, the probe below
    // could never be served.
    let server = start_server(ServerConfig {
        threads: 1,
        read_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    });

    let mut stalled = Client::connect(server.addr()).unwrap();
    let opened = stalled
        .call(&Request::Open {
            session: "stall".to_owned(),
            options: OpenOptions {
                seed: Some(7),
                capacity: Some(20_000),
                min_ss: Some(1_000),
                ..OpenOptions::default()
            },
        })
        .unwrap();
    assert!(matches!(opened, Response::Opened { .. }));
    assert_eq!(server.engine().n_sessions(), 1);
    // …and now the client goes silent, still holding the lone worker.

    // The read timeout must disconnect it, reap its session, and free
    // the worker for the next client.
    wait_for_sessions(server.engine(), 0);
    let mut probe = Client::connect(server.addr()).unwrap();
    let info = probe.call(&Request::TableInfo).unwrap();
    assert!(
        matches!(info, Response::TableInfo { .. }),
        "freed worker must serve new connections"
    );
}

#[test]
fn live_clients_survive_the_read_timeout_between_requests() {
    // The timeout bounds silence, not session length: a client that keeps
    // talking (slower than the tick, faster than the timeout) is fine.
    let server = start_server(ServerConfig {
        read_timeout: Some(Duration::from_millis(400)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(120));
        let info = client.call(&Request::TableInfo).unwrap();
        assert!(matches!(info, Response::TableInfo { .. }));
    }
}
