//! Round-trip tests for every protocol request/response variant: value →
//! JSON text → value must be the identity, and error payloads built from
//! the library error types' `Display` impls must survive the wire.

use sdd_core::SessionError;
use sdd_server::{Json, OpenOptions, Request, Response, RuleInfo, StatsInfo};
use sdd_table::TableError;

fn roundtrip_request(req: &Request) {
    let line = req.to_json().to_string();
    let parsed = Request::from_json(&Json::parse(&line).expect("request line parses"))
        .expect("request deserializes");
    assert_eq!(&parsed, req, "request round-trip changed value: {line}");
    // Serialization is deterministic: same value → same bytes.
    assert_eq!(parsed.to_json().to_string(), line);
}

fn roundtrip_response(resp: &Response) {
    let line = resp.to_json().to_string();
    let parsed = Response::from_json(&Json::parse(&line).expect("response line parses"))
        .expect("response deserializes");
    assert_eq!(&parsed, resp, "response round-trip changed value: {line}");
    assert_eq!(parsed.to_json().to_string(), line);
}

#[test]
fn every_request_variant_round_trips() {
    let session = "client-1".to_owned();
    let requests = [
        Request::Open {
            session: session.clone(),
            options: OpenOptions::default(),
        },
        Request::Open {
            session: "with options".to_owned(),
            options: OpenOptions {
                k: Some(4),
                max_weight: Some(3.5),
                weight: Some("bits".to_owned()),
                seed: Some(12345),
                capacity: Some(20_000),
                min_ss: Some(1_000),
            },
        },
        Request::Expand {
            session: session.clone(),
            path: vec![],
        },
        Request::Expand {
            session: session.clone(),
            path: vec![0, 2, 1],
        },
        Request::Star {
            session: session.clone(),
            path: vec![1],
            column: "Region".to_owned(),
        },
        Request::Collapse {
            session: session.clone(),
            path: vec![0],
        },
        Request::Rules {
            session: session.clone(),
        },
        Request::Render {
            session: session.clone(),
        },
        Request::Refresh {
            session: session.clone(),
        },
        Request::Stats {
            session: session.clone(),
        },
        Request::Close { session },
        Request::Append {
            rows: vec![
                vec!["Walmart".to_owned(), "bread".to_owned()],
                vec!["Target".to_owned(), "milk".to_owned()],
            ],
            measures: vec![vec![1.5, 2.5]],
        },
        Request::Append {
            rows: vec![],
            measures: vec![],
        },
        Request::Ping,
        Request::TableInfo,
    ];
    for req in &requests {
        roundtrip_request(req);
    }
}

#[test]
fn every_response_variant_round_trips() {
    let rule = RuleInfo {
        path: vec![0, 1],
        rule: "(Walmart, ?, ?)".to_owned(),
        count: 1010.0,
        ci: (915.6437889984718, 1104.3562110015282),
        exact: false,
        weight: 1.0,
    };
    let exact_rule = RuleInfo {
        path: vec![],
        rule: "(?, ?, ?)".to_owned(),
        count: 6000.0,
        ci: (6000.0, 6000.0),
        exact: true,
        weight: 0.0,
    };
    let responses = [
        Response::Opened {
            session: "alice".to_owned(),
        },
        Response::Expanded {
            rules: vec![rule.clone(), exact_rule.clone()],
        },
        Response::Expanded { rules: vec![] },
        Response::Collapsed,
        Response::RuleList {
            rules: vec![exact_rule, rule],
        },
        Response::Rendered {
            text: "Store | Count\n------\nWalmart | 7\n".to_owned(),
        },
        Response::Stats {
            stats: StatsInfo {
                expansions: 3,
                served_from_memory: 2,
                refreshes: 1,
                finds: 2,
                combines: 1,
                creates: 1,
                full_scans: 4,
                evictions: 0,
                stored_samples: 5,
                memory_used: 19_000,
            },
        },
        Response::Closed,
        Response::Appended {
            epoch: 3,
            rows: 192,
        },
        Response::Pong,
        Response::TableInfo {
            rows: 6000,
            columns: vec!["Store".to_owned(), "Product".to_owned()],
        },
        Response::Error {
            message: "something broke".to_owned(),
        },
    ];
    for resp in &responses {
        roundtrip_response(resp);
    }
}

#[test]
fn seeds_above_2_pow_53_survive_the_wire_exactly() {
    // Seeds ride as decimal strings: the full u64 range must round-trip
    // (a JSON-number encoding would silently round past 2^53).
    for seed in [0u64, 1 << 53, (1 << 53) + 1, u64::MAX] {
        let req = Request::Open {
            session: "s".to_owned(),
            options: OpenOptions {
                seed: Some(seed),
                ..OpenOptions::default()
            },
        };
        let line = req.to_json().to_string();
        let parsed = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, req, "{line}");
    }
    // Hand-written numeric seeds still parse (≤ 2^53).
    let req = sdd_server::protocol::parse_request_line(r#"{"op":"open","session":"s","seed":7}"#)
        .unwrap();
    let Request::Open { options, .. } = req else {
        panic!("wrong variant");
    };
    assert_eq!(options.seed, Some(7));
}

#[test]
fn float_payloads_survive_bit_exact() {
    let rule = RuleInfo {
        path: vec![3],
        rule: "(?, x)".to_owned(),
        count: 1.0 / 3.0,
        ci: (0.1 + 0.2, f64::MAX),
        exact: false,
        weight: 2.000000000000001,
    };
    let resp = Response::Expanded {
        rules: vec![rule.clone()],
    };
    let line = resp.to_json().to_string();
    let parsed = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
    let Response::Expanded { rules } = parsed else {
        panic!("wrong variant");
    };
    assert_eq!(rules[0].count.to_bits(), rule.count.to_bits());
    assert_eq!(rules[0].ci.0.to_bits(), rule.ci.0.to_bits());
    assert_eq!(rules[0].ci.1.to_bits(), rule.ci.1.to_bits());
    assert_eq!(rules[0].weight.to_bits(), rule.weight.to_bits());
}

#[test]
fn session_error_payloads_round_trip() {
    let errors = [
        SessionError::InvalidPath(vec![0, 9]),
        SessionError::ColumnNotStarred(2),
        SessionError::UnknownColumn("Price".to_owned()),
    ];
    for e in errors {
        let resp = Response::error(&e);
        let line = resp.to_json().to_string();
        let parsed = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(
            parsed,
            Response::Error {
                message: e.to_string()
            },
            "{line}"
        );
    }
    // The concrete Display strings are part of the wire contract.
    let resp = Response::error(SessionError::InvalidPath(vec![9]));
    assert_eq!(
        resp.to_json().to_string(),
        r#"{"ok":false,"op":"error","error":"no node at path [9]"}"#
    );
}

#[test]
fn table_error_payloads_round_trip() {
    let errors = [
        TableError::ArityMismatch {
            expected: 3,
            got: 2,
        },
        TableError::UnknownColumn("Price\"quoted\"".to_owned()),
        TableError::UnknownMeasure("Sales".to_owned()),
        TableError::DuplicateColumn("Store".to_owned()),
        TableError::Csv {
            line: 7,
            message: "bad quote".to_owned(),
        },
        TableError::ParseNumber("x1\n".to_owned()),
        TableError::Empty,
    ];
    for e in errors {
        let resp = Response::error(&e);
        let line = resp.to_json().to_string();
        let parsed = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(
            parsed,
            Response::Error {
                message: e.to_string()
            },
            "{line}"
        );
        assert!(!line.contains('\n'), "wire lines must stay single-line");
    }
}

#[test]
fn malformed_requests_are_rejected_with_reasons() {
    for (line, needle) in [
        ("", "bad json"),
        ("{}", "op"),
        (r#"{"op":"warp"}"#, "unknown op"),
        (r#"{"op":"expand"}"#, "session"),
        (r#"{"op":"expand","session":"s"}"#, "path"),
        (r#"{"op":"expand","session":"s","path":[1.5]}"#, "path"),
        (r#"{"op":"star","session":"s","path":[]}"#, "column"),
        (r#"{"op":"open","session":"s","k":-1}"#, "k"),
        (r#"{"op":"open","session":"s","mw":"big"}"#, "mw"),
        (r#"{"op":"append"}"#, "rows"),
        (r#"{"op":"append","rows":[["a"],7]}"#, "bad row"),
        (
            r#"{"op":"append","rows":[["a"]],"measures":[["x"]]}"#,
            "measure",
        ),
    ] {
        let err = match sdd_server::protocol::parse_request_line(line) {
            Err(e) => e,
            Ok(req) => panic!("{line:?} unexpectedly parsed to {req:?}"),
        };
        assert!(
            err.contains(needle),
            "{line:?} → {err:?} (expected mention of {needle:?})"
        );
    }
}

#[test]
fn unknown_fields_are_ignored_for_forward_compat() {
    let line = r#"{"op":"ping","future_field":[1,2,3]}"#;
    let req = sdd_server::protocol::parse_request_line(line).unwrap();
    assert_eq!(req, Request::Ping);
}
