//! Server-side tail ingest: `append` gating (tail opt-in, tenant
//! capability, batch cap, frozen stores), epoch propagation into live
//! sessions, the deferred exact-count refresh serving mode, and the
//! epoch-keyed result cache never serving across an append.

use sdd_server::{Engine, EngineConfig, Request, Response, TailConfig, TenantRegistry};
use sdd_table::{LiveTable, LiveTableConfig, Schema, TableStore};
use std::sync::Arc;

fn live_table(rows_per_segment: usize) -> Arc<LiveTable> {
    let schema = Schema::new(["Store", "Product"]).expect("schema");
    Arc::new(
        LiveTable::new(
            schema,
            vec![],
            &LiveTableConfig::in_memory(rows_per_segment),
        )
        .expect("live table"),
    )
}

fn rows(lo: usize, hi: usize) -> Vec<Vec<String>> {
    (lo..hi)
        .map(|i| vec![format!("s{}", i % 4), format!("p{}", i % 7)])
        .collect()
}

fn live_engine(tail: Option<TailConfig>) -> Engine {
    let cfg = EngineConfig {
        tail,
        ..EngineConfig::default()
    };
    Engine::with_store(TableStore::from(live_table(16)), cfg)
}

fn append_req(lo: usize, hi: usize) -> Request {
    Request::Append {
        rows: rows(lo, hi),
        measures: vec![],
    }
}

fn open(engine: &Engine, session: &str) {
    let line = format!(
        r#"{{"op":"open","session":"{session}","seed":"7","k":3,"capacity":400,"min_ss":40}}"#
    );
    let (resp, _) = engine.handle_line(&line);
    assert!(resp.contains("\"ok\":true"), "{resp}");
}

#[test]
fn append_is_rejected_without_tail_opt_in() {
    let engine = live_engine(None);
    let (resp, _) = engine.handle(&append_req(0, 4));
    match resp {
        Response::Error { message } => assert!(message.contains("tail ingest"), "{message}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn append_is_rejected_on_frozen_stores() {
    let cfg = EngineConfig {
        tail: Some(TailConfig::default()),
        ..EngineConfig::default()
    };
    let engine = Engine::new(Arc::new(sdd_datagen::retail(42)), cfg);
    let (resp, _) = engine.handle(&append_req(0, 4));
    match resp {
        Response::Error { message } => assert!(message.contains("frozen"), "{message}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn append_batches_above_the_cap_are_rejected() {
    let engine = live_engine(Some(TailConfig { max_batch_rows: 8 }));
    let (resp, _) = engine.handle(&append_req(0, 9));
    match resp {
        Response::Error { message } => assert!(
            message.contains("9 rows exceeds the 8-row cap"),
            "{message}"
        ),
        other => panic!("unexpected {other:?}"),
    }
    // At the cap is fine.
    let (resp, _) = engine.handle(&append_req(0, 8));
    assert_eq!(resp, Response::Appended { epoch: 1, rows: 8 });
}

#[test]
fn append_requires_the_ingest_capability() {
    let tenants =
        TenantRegistry::from_token_file("tok-w writer 4 2 ingest\ntok-r reader 4 2").unwrap();
    let writer = tenants.authenticate("tok-w").unwrap();
    let reader = tenants.authenticate("tok-r").unwrap();
    let cfg = EngineConfig {
        tail: Some(TailConfig::default()),
        tenants: Arc::new(tenants),
        ..EngineConfig::default()
    };
    let engine = Engine::with_store(TableStore::from(live_table(16)), cfg);
    let (resp, _) = engine.handle_as(&append_req(0, 4), reader);
    match resp {
        Response::Error { message } => {
            assert!(message.contains("ingest capability"), "{message}")
        }
        other => panic!("unexpected {other:?}"),
    }
    let (resp, _) = engine.handle_as(&append_req(0, 4), writer);
    assert_eq!(resp, Response::Appended { epoch: 1, rows: 4 });
}

#[test]
fn appends_bump_the_epoch_and_sessions_observe_them() {
    let engine = live_engine(Some(TailConfig::default()));
    assert_eq!(engine.live_info(), Some((0, 0)));

    let (resp, _) = engine.handle(&append_req(0, 64));
    assert_eq!(resp, Response::Appended { epoch: 1, rows: 64 });
    assert_eq!(engine.live_info(), Some((1, 64)));

    open(&engine, "live");
    let expand = |path: &str| {
        let (resp, hint) = engine.handle_line(&format!(
            r#"{{"op":"expand","session":"live","path":{path}}}"#
        ));
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // Play the background worker whenever the engine asks for it.
        if let Some(s) = hint {
            engine.run_pending_prefetch(&s);
        }
        resp
    };
    expand("[]");
    let (rules, _) = engine.handle(&Request::Rules {
        session: "live".to_owned(),
    });
    let Response::RuleList { rules } = rules else {
        panic!("unexpected {rules:?}");
    };
    assert_eq!(rules[0].count, 64.0, "root shows epoch-1 rows");

    // `table` reports the latest published state, not the load-time pin.
    let (resp, _) = engine.handle(&append_req(64, 128));
    assert_eq!(
        resp,
        Response::Appended {
            epoch: 2,
            rows: 128
        }
    );
    let (info, _) = engine.handle(&Request::TableInfo);
    assert_eq!(
        info,
        Response::TableInfo {
            rows: 128,
            columns: vec!["Store".to_owned(), "Product".to_owned()],
        }
    );

    // The session picks the new epoch up at its next operation prologue.
    let (rules, _) = engine.handle(&Request::Rules {
        session: "live".to_owned(),
    });
    let Response::RuleList { rules } = rules else {
        panic!("unexpected {rules:?}");
    };
    assert_eq!(rules[0].count, 128.0, "root shows epoch-2 rows");
}

#[test]
fn no_cache_hit_ever_crosses_an_epoch() {
    let engine = live_engine(Some(TailConfig::default()));
    engine.handle(&append_req(0, 64));
    open(&engine, "a");

    let drill = |session: &str| {
        let (resp, hint) = engine.handle_line(&format!(
            r#"{{"op":"expand","session":"{session}","path":[]}}"#
        ));
        assert!(resp.contains("\"ok\":true"), "{resp}");
        if let Some(s) = hint {
            engine.run_pending_prefetch(&s);
        }
        resp
    };
    let first = drill("a");

    // A second session repeating the identical drill at the same epoch may
    // share the cached result — and must answer the same bytes.
    open(&engine, "b");
    let second = drill("b");
    assert_eq!(first, second, "same epoch, same drill, same bytes");
    let hits_same_epoch = engine.cache_counters().map(|c| c.hits);

    // After an append the same drill must recompute: the epoch is part of
    // the cache key, so the old entry cannot satisfy it.
    engine.handle(&append_req(64, 128));
    open(&engine, "c");
    drill("c");
    if let (Some(before), Some(after)) = (hits_same_epoch, engine.cache_counters().map(|c| c.hits))
    {
        assert_eq!(
            before, after,
            "the post-append drill must not hit any pre-append cache entry"
        );
        assert!(before > 0, "the same-epoch drill should have hit the cache");
    }
}

#[test]
fn live_refresh_is_deferred_and_drained_off_the_request_path() {
    let engine = live_engine(Some(TailConfig::default()));
    engine.handle(&append_req(0, 64));
    open(&engine, "r");
    let (resp, hint) = engine.handle_line(r#"{"op":"expand","session":"r","path":[]}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    if let Some(s) = hint {
        engine.run_pending_prefetch(&s);
    }

    // Refresh over a live store schedules the scan and answers immediately
    // with the current (possibly estimated) counts...
    let (resp, hint) = engine.handle(&Request::Refresh {
        session: "r".to_owned(),
    });
    let Response::RuleList { .. } = resp else {
        panic!("unexpected {resp:?}");
    };
    // ... and hands the scheduled work to the background worker.
    let session = hint.expect("deferred refresh must ping the worker");
    engine.run_pending_prefetch(&session);

    let (resp, _) = engine.handle(&Request::Rules {
        session: "r".to_owned(),
    });
    let Response::RuleList { rules } = resp else {
        panic!("unexpected {resp:?}");
    };
    assert!(
        rules.iter().all(|r| r.exact),
        "worker-drained refresh marks every displayed rule exact: {rules:?}"
    );
}

#[test]
fn measured_appends_transpose_wire_columns_into_rows() {
    // The wire carries measure *columns*; the live table wants per-row
    // vectors — the engine transposes, and rejects ragged columns whole.
    let schema = Schema::new(["Store", "Product"]).expect("schema");
    let live = LiveTable::new(
        schema,
        vec!["Sales".to_owned()],
        &LiveTableConfig::in_memory(16),
    )
    .expect("live table");
    let engine = Engine::with_store(
        TableStore::from(Arc::new(live)),
        EngineConfig {
            tail: Some(TailConfig::default()),
            ..EngineConfig::default()
        },
    );
    let (resp, _) = engine.handle(&Request::Append {
        rows: rows(0, 3),
        measures: vec![vec![1.0, 2.0, 3.0]],
    });
    assert_eq!(resp, Response::Appended { epoch: 1, rows: 3 });

    let (resp, _) = engine.handle(&Request::Append {
        rows: rows(0, 2),
        measures: vec![vec![1.0]],
    });
    match resp {
        Response::Error { message } => assert!(
            message.contains("measure column of 1 values does not match the 2-row batch"),
            "{message}"
        ),
        other => panic!("unexpected {other:?}"),
    }
    // Nothing partially applied: the table is still at epoch 1.
    assert_eq!(engine.live_info(), Some((1, 3)));
}

#[test]
fn empty_appends_still_bump_the_epoch() {
    // An empty batch publishes a new (identical) epoch — the cheapest way
    // for an operator to force cache turnover — and stays consistent.
    let engine = live_engine(Some(TailConfig::default()));
    engine.handle(&append_req(0, 16));
    let (resp, _) = engine.handle(&append_req(0, 0));
    assert_eq!(resp, Response::Appended { epoch: 2, rows: 16 });
}
