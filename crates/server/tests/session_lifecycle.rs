//! Session-lifecycle and prefetch-scheduling regression tests.
//!
//! Two serve-path bugs this file pins down forever:
//!
//! 1. **Session leak on abrupt disconnect.** Sessions are
//!    connection-scoped (PROTOCOL.md): a client that vanishes without
//!    `close` — crash, abrupt TCP drop — must not leave registry entries
//!    (and their sample memory) behind until server restart.
//!
//! 2. **Deferred-prefetch claim race.** The background worker's
//!    [`Engine::run_pending_prefetch`] and the next request's own drain
//!    both want the one pending job; the job `Option` lives under the
//!    session lock and is `take()`n, so exactly one side runs it and a
//!    duplicate or late worker tick is a no-op. The audit found no bug —
//!    these tests replay every worker/request interleaving a real server
//!    can produce and assert byte-identical transcripts against inline
//!    execution, so a future regression cannot land silently.

use sdd_explorer::{ExplorerConfig, PrefetchMode};
use sdd_server::{
    Client, Engine, EngineConfig, OpenOptions, Request, Response, Server, ServerConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn open_opts(seed: u64) -> OpenOptions {
    OpenOptions {
        k: Some(3),
        max_weight: Some(3.0),
        weight: Some("size".to_owned()),
        seed: Some(seed),
        capacity: Some(20_000),
        min_ss: Some(1_000),
    }
}

fn start_retail_server() -> sdd_server::ServerHandle {
    let table = Arc::new(sdd_datagen::retail(42));
    Server::bind(table, ServerConfig::default(), "127.0.0.1:0")
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread")
}

/// Polls until the engine's registry drains to `expected` sessions;
/// panics after a generous timeout (cleanup is asynchronous — the pool
/// worker runs it after the read side observes the hangup).
fn wait_for_sessions(engine: &Engine, expected: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.n_sessions() != expected {
        assert!(
            Instant::now() < deadline,
            "registry stuck at {} sessions (expected {expected})",
            engine.n_sessions()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn abrupt_disconnect_reaps_the_connections_sessions() {
    let server = start_retail_server();
    let mut client = Client::connect(server.addr()).unwrap();
    for name in ["leak-a", "leak-b"] {
        assert_eq!(
            client
                .call(&Request::Open {
                    session: name.to_owned(),
                    options: open_opts(7),
                })
                .unwrap(),
            Response::Opened {
                session: name.to_owned()
            }
        );
    }
    // Use one so a deferred prefetch job is in flight when we vanish —
    // cleanup must cope with a session the background worker still pings.
    match client
        .call(&Request::Expand {
            session: "leak-a".to_owned(),
            path: vec![],
        })
        .unwrap()
    {
        Response::Expanded { rules } => assert!(!rules.is_empty()),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(server.engine().n_sessions(), 2);

    // Abrupt drop: no `close`, just a dead socket.
    drop(client);
    wait_for_sessions(server.engine(), 0);
    server.shutdown();
}

#[test]
fn graceful_close_is_not_double_freed_on_disconnect() {
    let server = start_retail_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .call(&Request::Open {
            session: "tidy".to_owned(),
            options: open_opts(7),
        })
        .unwrap();
    assert_eq!(
        client
            .call(&Request::Close {
                session: "tidy".to_owned()
            })
            .unwrap(),
        Response::Closed
    );
    assert_eq!(server.engine().n_sessions(), 0);
    // A second client reuses the name while the first connection is still
    // up: the first connection's exit must not reap the new owner.
    let mut second = Client::connect(server.addr()).unwrap();
    second
        .call(&Request::Open {
            session: "tidy".to_owned(),
            options: open_opts(8),
        })
        .unwrap();
    assert_eq!(server.engine().n_sessions(), 1);
    drop(client);
    // Give the first connection's cleanup every chance to misfire.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(server.engine().n_sessions(), 1, "close was double-freed");
    drop(second);
    wait_for_sessions(server.engine(), 0);
    server.shutdown();
}

#[test]
fn sessions_outlive_requests_but_not_their_connection() {
    // Two live connections never interfere: each reaps only its own opens.
    let server = start_retail_server();
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    a.call(&Request::Open {
        session: "conn-a".to_owned(),
        options: open_opts(1),
    })
    .unwrap();
    b.call(&Request::Open {
        session: "conn-b".to_owned(),
        options: open_opts(2),
    })
    .unwrap();
    assert_eq!(server.engine().n_sessions(), 2);
    drop(a);
    wait_for_sessions(server.engine(), 1);
    // conn-b still answers after conn-a's reap.
    match b
        .call(&Request::Expand {
            session: "conn-b".to_owned(),
            path: vec![],
        })
        .unwrap()
    {
        Response::Expanded { rules } => assert!(!rules.is_empty()),
        other => panic!("unexpected {other:?}"),
    }
    drop(b);
    wait_for_sessions(server.engine(), 0);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Deferred-prefetch claim race: deterministic interleaving replay
// ---------------------------------------------------------------------------

fn engine_with(mode: PrefetchMode, cache_bytes: usize) -> Engine {
    let table = Arc::new(sdd_datagen::retail(42));
    let config = EngineConfig {
        session: ExplorerConfig {
            prefetch: mode,
            ..ExplorerConfig::default()
        },
        cache_bytes,
        ..EngineConfig::default()
    };
    Engine::new(table, config)
}

fn script(session: &str) -> Vec<Request> {
    let s = || session.to_owned();
    vec![
        Request::Open {
            session: s(),
            options: open_opts(7),
        },
        Request::Expand {
            session: s(),
            path: vec![],
        },
        Request::Expand {
            session: s(),
            path: vec![0],
        },
        Request::Expand {
            session: s(),
            path: vec![1],
        },
        Request::Rules { session: s() },
        Request::Refresh { session: s() },
        Request::Stats { session: s() },
        Request::Close { session: s() },
    ]
}

/// Replays the script, firing `ticks` duplicate background-worker claims
/// after each request, and returns the raw response lines.
fn transcript(engine: &Engine, session: &str, ticks: usize) -> Vec<String> {
    script(session)
        .iter()
        .map(|req| {
            let (line, hint) = engine.handle_line(&req.to_json().to_string());
            for _ in 0..ticks {
                // Real servers deliver at most one worker tick per hint;
                // firing extra unconditional ticks (hint or not) models
                // every losing side of the claim race at once.
                engine.run_pending_prefetch(hint.as_deref().unwrap_or(session));
            }
            line
        })
        .collect()
}

#[test]
fn duplicate_worker_claims_never_change_a_response_byte() {
    // The reference: inline prefetch, no worker, no cache.
    let inline_engine = engine_with(PrefetchMode::Inline, 0);
    let reference = transcript(&inline_engine, "race", 0);
    assert!(
        reference.iter().any(|l| l.contains("\"op\":\"expand\"")),
        "script never expanded: {reference:?}"
    );

    // Every worker cadence a server can produce — the request always
    // drains an unclaimed job first (ticks=0), the worker always wins
    // (ticks=1), and a stale duplicate tick fires after every claim
    // (ticks=2) — with the shared cache off and on.
    for cache_bytes in [0, 64 << 20] {
        for ticks in 0..=2 {
            let engine = engine_with(PrefetchMode::Deferred, cache_bytes);
            let got = transcript(&engine, "race", ticks);
            assert_eq!(
                got, reference,
                "transcript diverged (ticks={ticks}, cache_bytes={cache_bytes})"
            );
        }
    }
}

#[test]
fn worker_tick_on_missing_or_idle_session_is_a_no_op() {
    let engine = engine_with(PrefetchMode::Deferred, 0);
    // Unknown session: nothing to claim, nothing to panic over.
    engine.run_pending_prefetch("nobody");
    let (line, hint) = engine.handle_line(
        &Request::Open {
            session: "idle".to_owned(),
            options: open_opts(3),
        }
        .to_json()
        .to_string(),
    );
    assert!(line.contains("\"op\":\"open\""), "{line}");
    assert!(hint.is_none(), "open must not schedule prefetch");
    // Session exists but has no pending job: repeated ticks stay no-ops.
    engine.run_pending_prefetch("idle");
    engine.run_pending_prefetch("idle");
    assert_eq!(engine.n_sessions(), 1);
}
