//! End-to-end tests for the HTTP/1.1 front-end: routes, bearer auth,
//! per-tenant session quotas, admission control, the idle sweep, and the
//! `/metrics` exposition.

use sdd_server::{HttpClient, Server, ServerConfig, TenantRegistry};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn open_line(session: &str, seed: u64) -> String {
    format!(
        "{{\"op\":\"open\",\"session\":\"{session}\",\"k\":3,\"mw\":3.0,\"weight\":\"size\",\
         \"seed\":{seed},\"capacity\":20000,\"min_ss\":1000}}"
    )
}

fn start_http_server(config: ServerConfig) -> sdd_server::ServerHandle {
    let table = Arc::new(sdd_datagen::retail(42));
    Server::bind(
        table,
        ServerConfig {
            http_addr: Some("127.0.0.1:0".to_owned()),
            ..config
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral ports")
    .spawn()
    .expect("spawn server thread")
}

fn http_client(server: &sdd_server::ServerHandle) -> HttpClient {
    HttpClient::connect(server.http_addr().expect("http front-end configured"))
        .expect("connect to http front-end")
}

#[test]
fn routes_answer_and_line_bodies_are_engine_bytes() {
    let server = start_http_server(ServerConfig::default());
    let mut client = http_client(&server);

    let health = client.request("GET", "/healthz", None, None).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body_str(), "ok\n");

    // open → expand → close over keep-alive, statuses mirroring "ok".
    let (status, body) = client.call_line(None, &open_line("h1", 7)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, "{\"ok\":true,\"op\":\"open\",\"session\":\"h1\"}");
    let (status, body) = client
        .call_line(None, "{\"op\":\"expand\",\"session\":\"h1\",\"path\":[]}")
        .unwrap();
    assert_eq!(status, 200, "expand failed: {body}");
    let (status, body) = client
        .call_line(
            None,
            "{\"op\":\"expand\",\"session\":\"no-such\",\"path\":[]}",
        )
        .unwrap();
    assert_eq!(status, 400, "engine errors surface as 400");
    assert!(body.starts_with("{\"ok\":false"), "{body}");
    let (status, _) = client
        .call_line(None, "{\"op\":\"close\",\"session\":\"h1\"}")
        .unwrap();
    assert_eq!(status, 200);

    let missing = client.request("GET", "/v2/nope", None, None).unwrap();
    assert_eq!(missing.status, 404);
    let bad_method = client.request("DELETE", "/v1/line", None, None).unwrap();
    assert_eq!(bad_method.status, 405);
    assert_eq!(bad_method.header("allow"), Some("GET, POST"));
}

#[test]
fn bearer_auth_gates_line_and_metrics_but_not_health() {
    let tenants = TenantRegistry::from_token_file("tok-a alpha 2 4\n").unwrap();
    let mut config = ServerConfig::default();
    config.engine.tenants = Arc::new(tenants);
    let server = start_http_server(config);
    let mut client = http_client(&server);

    // No token / wrong token → 401 with a challenge; connection survives.
    let (status, _) = client.call_line(None, open_line("a1", 7).as_str()).unwrap();
    assert_eq!(status, 401);
    let reply = client
        .request("POST", "/v1/line", Some("wrong"), Some(&open_line("a1", 7)))
        .unwrap();
    assert_eq!(reply.status, 401);
    assert_eq!(reply.header("www-authenticate"), Some("Bearer"));
    let metrics = client.request("GET", "/metrics", None, None).unwrap();
    assert_eq!(metrics.status, 401);
    let health = client.request("GET", "/healthz", None, None).unwrap();
    assert_eq!(health.status, 200, "liveness needs no token");

    // The right token works, and auth failures were counted.
    let (status, _) = client
        .call_line(Some("tok-a"), &open_line("a1", 7))
        .unwrap();
    assert_eq!(status, 200);
    let metrics = client
        .request("GET", "/metrics", Some("tok-a"), None)
        .unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str().into_owned();
    assert!(
        text.contains("sdd_auth_failures_total 3"),
        "three rejected requests must be counted:\n{text}"
    );
    assert!(
        text.contains("sdd_tenant_sessions{tenant=\"alpha\"} 1"),
        "{text}"
    );
}

#[test]
fn tenant_session_quota_is_enforced_and_released() {
    let tenants = TenantRegistry::from_token_file("tok-a alpha 2 4\n").unwrap();
    let mut config = ServerConfig::default();
    config.engine.tenants = Arc::new(tenants);
    let server = start_http_server(config);
    let mut client = http_client(&server);

    for s in ["q1", "q2"] {
        let (status, body) = client.call_line(Some("tok-a"), &open_line(s, 7)).unwrap();
        assert_eq!(status, 200, "{body}");
    }
    let (status, body) = client
        .call_line(Some("tok-a"), &open_line("q3", 7))
        .unwrap();
    assert_eq!(status, 400, "third session must exceed the quota of 2");
    assert!(body.contains("session quota"), "{body}");
    // A failed open must not leak a quota slot: close one, open succeeds.
    let (status, _) = client
        .call_line(Some("tok-a"), "{\"op\":\"close\",\"session\":\"q1\"}")
        .unwrap();
    assert_eq!(status, 200);
    let (status, body) = client
        .call_line(Some("tok-a"), &open_line("q3", 7))
        .unwrap();
    assert_eq!(status, 200, "slot must be released by close: {body}");
}

#[test]
fn metrics_scrape_exposes_all_families() {
    let server = start_http_server(ServerConfig::default());
    let mut client = http_client(&server);
    let (status, _) = client.call_line(None, &open_line("m1", 7)).unwrap();
    assert_eq!(status, 200);
    let reply = client.request("GET", "/metrics", None, None).unwrap();
    assert_eq!(reply.status, 200);
    assert!(reply
        .header("content-type")
        .is_some_and(|v| v.starts_with("text/plain")));
    let text = reply.body_str().into_owned();
    for needle in [
        "# TYPE sdd_request_latency_seconds histogram",
        "sdd_request_latency_seconds_bucket{transport=\"http\",le=\"+Inf\"} 1",
        "sdd_requests_total{transport=\"http\",outcome=\"ok\"} 1",
        "sdd_requests_shed_total 0",
        "sdd_auth_failures_total 0",
        "sdd_http_connections 1",
        "sdd_tcp_connections 0",
        "sdd_queue_depth 0",
        "sdd_sessions 1",
        "sdd_sessions_swept_total 0",
        "sdd_tenant_sessions{tenant=\"anonymous\"} 1",
        "sdd_tenant_cache_bytes{tenant=\"anonymous\"}",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // Cache families appear exactly when the result cache is live (the
    // SDD_NO_CACHE kill switch also drops them from the exposition).
    assert_eq!(
        text.contains("sdd_cache_hits_total"),
        server.engine().cache_counters().is_some()
    );
}

#[test]
fn admission_control_sheds_with_429_and_accepted_work_is_unchanged() {
    // One worker, zero queue tolerance: the first connection owns the
    // worker, the second waits in the queue, the third must be shed.
    let server = start_http_server(ServerConfig {
        threads: 1,
        max_queue: 0,
        ..ServerConfig::default()
    });
    let mut first = http_client(&server);
    let (status, opened) = first.call_line(None, &open_line("adm", 7)).unwrap();
    assert_eq!(status, 200);

    // Parks in the accept queue (the lone worker is held by `first`'s
    // keep-alive connection).
    let queued = http_client(&server);
    std::thread::sleep(Duration::from_millis(300)); // let accept submit it

    let mut shed = http_client(&server);
    let reply = shed.request("GET", "/healthz", None, None).unwrap();
    assert_eq!(reply.status, 429, "queue depth 1 > max_queue 0 must shed");
    assert!(
        reply.header("retry-after").is_some(),
        "shed answers carry Retry-After"
    );

    // Accepted requests are byte-identical to an unloaded replay.
    let (status, expanded) = first
        .call_line(None, "{\"op\":\"expand\",\"session\":\"adm\",\"path\":[]}")
        .unwrap();
    assert_eq!(status, 200);
    drop(queued);
    let unloaded = start_http_server(ServerConfig::default());
    let mut replay = http_client(&unloaded);
    let (_, opened_replay) = replay.call_line(None, &open_line("adm", 7)).unwrap();
    let (_, expanded_replay) = replay
        .call_line(None, "{\"op\":\"expand\",\"session\":\"adm\",\"path\":[]}")
        .unwrap();
    assert_eq!(opened, opened_replay);
    assert_eq!(expanded, expanded_replay);

    assert!(
        server
            .metrics()
            .shed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the shed counter must tick"
    );
}

#[test]
fn idle_sweep_evicts_http_sessions_and_frees_their_quota() {
    let tenants = TenantRegistry::from_token_file("tok-a alpha 1 4\n").unwrap();
    let mut config = ServerConfig {
        session_ttl: Some(Duration::from_millis(150)),
        sweep_interval: Duration::from_millis(30),
        ..ServerConfig::default()
    };
    config.engine.tenants = Arc::new(tenants);
    let server = start_http_server(config);
    let mut client = http_client(&server);
    let (status, _) = client
        .call_line(Some("tok-a"), &open_line("idle", 7))
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(server.engine().n_sessions(), 1);

    // HTTP sessions outlive their connection; only the sweep reaps them.
    drop(client);
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.engine().n_sessions() != 0 {
        assert!(Instant::now() < deadline, "idle session never swept");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The quota slot came back: the 1-session tenant can open again.
    let mut client = http_client(&server);
    let (status, body) = client
        .call_line(Some("tok-a"), &open_line("idle2", 7))
        .unwrap();
    assert_eq!(status, 200, "swept session must release its slot: {body}");
    let metrics = client
        .request("GET", "/metrics", Some("tok-a"), None)
        .unwrap();
    assert!(
        metrics.body_str().contains("sdd_sessions_swept_total 1"),
        "the sweep counter must tick"
    );
}

#[test]
fn oversized_and_malformed_heads_are_refused() {
    use std::io::{Read, Write};
    let server = start_http_server(ServerConfig::default());

    // A request line over the 8 KiB head cap → 431 and close.
    let mut stream = std::net::TcpStream::connect(server.http_addr().unwrap()).unwrap();
    let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(16 << 10));
    stream.write_all(huge.as_bytes()).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");

    // Garbage head → 400 and close.
    let mut stream = std::net::TcpStream::connect(server.http_addr().unwrap()).unwrap();
    stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    // A declared body over the 1 MiB cap → 413 before reading any of it.
    let mut stream = std::net::TcpStream::connect(server.http_addr().unwrap()).unwrap();
    stream
        .write_all(b"POST /v1/line HTTP/1.1\r\nContent-Length: 1048577\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
}
