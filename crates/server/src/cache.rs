//! The shared, lock-striped drill-down result cache with per-tenant byte
//! quotas.
//!
//! One [`SearchCache`] is shared by every session of an [`crate::Engine`]
//! (the registry's sessions all explore one immutable store). Keys are the
//! canonical 128-bit digests of `sdd_core::cachekey` — table identity,
//! sample-view content, base rule, star column, `k`, weight tag, `mw` —
//! so two sessions replaying the same drill path under the same options
//! collide exactly, and any divergence (different seed, different history)
//! is a safe miss.
//!
//! **Transparency**: the cache accelerates the BRS search only; sampling,
//! counters, and transcripts are byte-identical with the cache on, off, or
//! disabled mid-flight (`SDD_NO_CACHE=1`, the kill switch mirroring
//! `SDD_NO_SIMD`). The cache-parity suite (`tests/cache_parity.rs`)
//! asserts this end to end, and under debug assertions every hit is
//! re-verified bit-for-bit inside the explorer.
//!
//! **Multi-tenancy**: every entry is charged to the tenant whose session
//! inserted it ([`TenantCacheView`] carries the tag through the
//! tenant-blind `ResultCache` trait). Tenants share *hits* freely —
//! results are deterministic global truths — but a tenant whose footprint
//! would exceed its byte quota evicts **only its own entries**, so one
//! tenant's burst can never push another tenant's hot entries out past
//! its own quota (the eviction-isolation test pins this). The global
//! stripe budget still backstops total memory; *how* an overflowing
//! stripe makes room is the selectable [`EvictionMode`] (default LRU,
//! `SDD_CACHE_EVICT` overrides, `exp_cache` benches the policies head to
//! head) — under either policy the inserting tenant's entries fall
//! first, and other tenants' only when the inserting tenant alone still
//! overflows the stripe (possible only when quotas oversubscribe the
//! budget).
//!
//! Like every striped structure here, striping affects contention only —
//! a key lands on one fixed stripe. This file is panic-free (lint rule
//! P001): lock poisoning is absorbed with `into_inner`, never unwrapped.

use crate::registry::{TenantId, ANONYMOUS_TENANT};
use rustc_hash::FxHashMap;
use sdd_core::DrillKey;
use sdd_explorer::{CachedRules, ResultCache};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// True unless the `SDD_NO_CACHE` kill switch is thrown (any value but
/// `"0"`). Mirrors `SDD_NO_SIMD`: an operator can rule the result cache
/// out in production without a rebuild, and CI runs the parity suites
/// under both settings.
pub fn cache_enabled() -> bool {
    !std::env::var("SDD_NO_CACHE").is_ok_and(|v| v != "0")
}

/// Stripe-overflow eviction policy. Both policies honour the same
/// tenant-isolation contract — the inserting tenant's entries always go
/// first, and another tenant's entries fall only when the inserting
/// tenant alone cannot make room (possible only when quotas oversubscribe
/// the stripe budget). They differ in *which* and *how many* entries
/// survive an overflow. Eviction policy never changes a response byte
/// (the cache-parity suites pin that); it only moves the hit rate.
///
/// `exp_cache` benches the two head to head on a Zipf session mix with
/// the budget squeezed below the working set; the kept default is
/// documented on the variants below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionMode {
    /// Shed the inserting tenant from the overflowing stripe wholesale,
    /// and fall back to clearing the whole stripe ("epoch") if that is
    /// not enough. O(tenant's entries) per overflow, no bookkeeping on
    /// the hit path — but a burst discards hot entries with the cold.
    StripeEpoch,
    /// Evict the coldest entries (least-recently-hit) one at a time until
    /// the new entry fits — inserting tenant's entries first, everyone
    /// else's only as the oversubscription fallback. Keeps the Zipf head
    /// resident under budget pressure at the cost of a stamp per hit and
    /// a linear victim scan per eviction. This is the **default** policy:
    /// with the budget squeezed to half the working set on the Zipf mix,
    /// `BENCH_cache.json` shows LRU matching or beating the epoch
    /// policy's hit rate at equal bytes (the epoch clear discards hot
    /// entries alongside cold, which LRU never does), with fewer
    /// evictions and lower mean latency — and the hit-path stamp is not
    /// measurable at serve latencies.
    #[default]
    Lru,
}

impl EvictionMode {
    /// Parses an override string: `"lru"` selects [`EvictionMode::Lru`],
    /// `"epoch"` (or `"stripe-epoch"`) selects
    /// [`EvictionMode::StripeEpoch`]; anything else — including `None` —
    /// falls back to the compiled default.
    fn parse(value: Option<&str>) -> Self {
        match value {
            Some(v) if v.eq_ignore_ascii_case("lru") => Self::Lru,
            Some(v)
                if v.eq_ignore_ascii_case("epoch") || v.eq_ignore_ascii_case("stripe-epoch") =>
            {
                Self::StripeEpoch
            }
            _ => Self::default(),
        }
    }

    /// Reads the `SDD_CACHE_EVICT` environment override (see
    /// [`EvictionMode::parse`]). Mirrors the `SDD_NO_CACHE`/`SDD_NO_SIMD`
    /// pattern: an operator can flip policies without a rebuild, and the
    /// bench drives both legs through it.
    pub fn from_env() -> Self {
        Self::parse(std::env::var("SDD_CACHE_EVICT").ok().as_deref())
    }
}

/// A snapshot of the cache's work counters. Counters never influence
/// results (the parity suites pin that); they exist for observability —
/// the serve banner, `/metrics`, benches, and capacity planning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh search.
    pub misses: u64,
    /// Results stored.
    pub inserts: u64,
    /// Entries dropped by eviction (tenant-quota or stripe-budget).
    pub evictions: u64,
    /// Estimated bytes currently held across all stripes.
    pub bytes: u64,
}

struct Entry {
    value: CachedRules,
    tenant: TenantId,
    bytes: u64,
    /// Last-hit tick of the owning stripe's clock (insert counts as a
    /// hit). Only the LRU policy reads it; both policies maintain it so
    /// flipping the policy never needs a rebuild of resident entries.
    stamp: u64,
}

struct Stripe {
    map: FxHashMap<DrillKey, Entry>,
    bytes: u64,
    /// Monotonic hit/insert tick stamping entry recency. Per-stripe (not
    /// global) so the hit path touches no shared atomic.
    clock: u64,
}

/// The lock-striped result cache. See module docs.
pub struct SearchCache {
    stripes: Vec<Mutex<Stripe>>,
    stripe_budget: u64,
    mode: EvictionMode,
    /// Per-tenant byte quotas, indexed by [`TenantId`]. A tenant beyond
    /// the table falls back to the anonymous quota (entry 0).
    tenant_quotas: Vec<u64>,
    /// Per-tenant resident bytes, same indexing.
    tenant_bytes: Vec<AtomicU64>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

/// Estimated heap footprint of one entry (key + `Arc` + rule codes +
/// scored fields + map overhead). An estimate is all eviction needs.
fn entry_bytes(value: &CachedRules) -> u64 {
    let rules: u64 = value
        .iter()
        .map(|s| 4 * s.rule.codes().len() as u64 + 3 * 8 + 16)
        .sum();
    16 + 48 + rules
}

impl SearchCache {
    /// A single-tenant cache: `stripes.max(1)` stripes sharing
    /// `budget_bytes` evenly, with the anonymous tenant entitled to the
    /// whole budget.
    pub fn new(stripes: usize, budget_bytes: usize) -> Self {
        Self::with_tenants(stripes, budget_bytes, vec![budget_bytes as u64])
    }

    /// A multi-tenant cache. `tenant_quotas[t]` is tenant `t`'s byte
    /// quota (index 0 is the anonymous tenant); an empty table gets one
    /// anonymous tenant entitled to the whole budget.
    pub fn with_tenants(stripes: usize, budget_bytes: usize, tenant_quotas: Vec<u64>) -> Self {
        let stripes = stripes.max(1);
        let tenant_quotas = if tenant_quotas.is_empty() {
            vec![budget_bytes as u64]
        } else {
            tenant_quotas
        };
        Self {
            stripe_budget: (budget_bytes as u64 / stripes as u64).max(1),
            mode: EvictionMode::default(),
            stripes: (0..stripes)
                .map(|_| {
                    Mutex::new(Stripe {
                        map: FxHashMap::default(),
                        bytes: 0,
                        clock: 0,
                    })
                })
                .collect(),
            tenant_bytes: (0..tenant_quotas.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            tenant_quotas,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Selects the stripe-overflow eviction policy (builder style, before
    /// the cache is shared). See [`EvictionMode`].
    pub fn eviction(mut self, mode: EvictionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The stripe-overflow eviction policy in force.
    pub fn eviction_mode(&self) -> EvictionMode {
        self.mode
    }

    fn stripe(&self, key: &DrillKey) -> &Mutex<Stripe> {
        // The key is already a uniform 128-bit digest; its low word is as
        // good a stripe selector as any hash of it.
        let idx = (key.0[0] as usize) % self.stripes.len();
        &self.stripes[idx]
    }

    fn lock(m: &Mutex<Stripe>) -> std::sync::MutexGuard<'_, Stripe> {
        // A poisoned stripe only means some thread panicked while holding
        // the lock; the map itself is still a valid cache (worst case a
        // half-done insert we overwrite). Absorb instead of propagating.
        m.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Clamps a tenant id into the quota table (unknown tenants share the
    /// anonymous slot — they cannot appear in correct use, but a clamp is
    /// cheaper and safer than a panic in this panic-free file).
    fn slot(&self, tenant: TenantId) -> usize {
        let t = tenant as usize;
        if t < self.tenant_quotas.len() {
            t
        } else {
            ANONYMOUS_TENANT as usize
        }
    }

    /// Removes `tenant`'s entries from `stripe`, returning bytes freed.
    fn shed_tenant_from(&self, stripe: &mut Stripe, tenant: usize) -> u64 {
        let doomed: Vec<DrillKey> = stripe
            .map
            .iter()
            .filter(|(_, e)| self.slot(e.tenant) == tenant)
            .map(|(k, _)| *k)
            .collect();
        let mut freed = 0u64;
        for key in &doomed {
            if let Some(e) = stripe.map.remove(key) {
                freed += e.bytes;
            }
        }
        if freed > 0 {
            stripe.bytes -= freed.min(stripe.bytes);
            self.evictions
                .fetch_add(doomed.len() as u64, Ordering::Relaxed);
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
            self.tenant_bytes[tenant].fetch_sub(freed, Ordering::Relaxed);
        }
        freed
    }

    /// LRU stripe-overflow eviction: removes the coldest entries
    /// (ascending last-hit stamp) until `need` more bytes fit under the
    /// stripe budget. Two passes keep the tenant-isolation order of the
    /// epoch policy: the inserting tenant's entries fall first, and other
    /// tenants' only when the inserting tenant alone cannot make room
    /// (quotas oversubscribing the budget). The linear victim scan per
    /// eviction is fine at stripe sizes (a stripe holds a slice of the
    /// budget, and overflow is the rare path by construction).
    fn shed_lru_from(&self, stripe: &mut Stripe, tenant: usize, need: u64) {
        for own_entries_only in [true, false] {
            while stripe.bytes + need > self.stripe_budget {
                let victim = stripe
                    .map
                    .iter()
                    .filter(|(_, e)| !own_entries_only || self.slot(e.tenant) == tenant)
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| *k);
                let Some(key) = victim else { break };
                if let Some(e) = stripe.map.remove(&key) {
                    stripe.bytes -= e.bytes.min(stripe.bytes);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.bytes.fetch_sub(e.bytes, Ordering::Relaxed);
                    self.tenant_bytes[self.slot(e.tenant)].fetch_sub(e.bytes, Ordering::Relaxed);
                }
            }
            if stripe.bytes + need <= self.stripe_budget {
                return;
            }
        }
    }

    /// Tenant-quota eviction: sweeps **only `tenant`'s** entries, one
    /// stripe at a time (never holding two stripe locks, so no ordering
    /// hazard with concurrent inserts). Other tenants' entries are
    /// untouched — the eviction-isolation contract.
    fn evict_tenant(&self, tenant: usize) {
        for stripe in &self.stripes {
            let mut guard = Self::lock(stripe);
            self.shed_tenant_from(&mut guard, tenant);
        }
    }

    /// Stores the result for `key`, charging the bytes to `tenant`. See
    /// module docs for the two-level (tenant-quota, stripe-budget)
    /// eviction policy. Idempotent for present keys.
    pub fn insert_for(&self, tenant: TenantId, key: DrillKey, value: CachedRules) {
        let tenant = self.slot(tenant);
        let size = entry_bytes(&value);
        {
            let stripe = Self::lock(self.stripe(&key));
            if stripe.map.contains_key(&key) {
                // Idempotent: concurrent missers computed the same bits.
                return;
            }
        }
        // Tenant over quota: shed the tenant's own entries everywhere.
        // (Outside the target stripe's lock — evict_tenant takes each
        // stripe lock in turn.)
        if self.tenant_bytes[tenant].load(Ordering::Relaxed) + size > self.tenant_quotas[tenant] {
            self.evict_tenant(tenant);
        }
        let mut stripe = Self::lock(self.stripe(&key));
        if stripe.map.contains_key(&key) {
            return; // raced with an identical insert while unlocked
        }
        if stripe.bytes + size > self.stripe_budget && !stripe.map.is_empty() {
            match self.mode {
                // Evict coldest-first until the new entry fits (inserting
                // tenant before anyone else — see shed_lru_from).
                EvictionMode::Lru => self.shed_lru_from(&mut stripe, tenant, size),
                // Stripe over its global budget: shed the inserting
                // tenant's entries here first — isolation again — and only
                // if the *other* tenants alone still overflow the stripe
                // (quotas oversubscribing the budget) fall back to a full
                // epoch clear.
                EvictionMode::StripeEpoch => {
                    self.shed_tenant_from(&mut stripe, tenant);
                    if stripe.bytes + size > self.stripe_budget && !stripe.map.is_empty() {
                        self.evictions
                            .fetch_add(stripe.map.len() as u64, Ordering::Relaxed);
                        self.bytes.fetch_sub(stripe.bytes, Ordering::Relaxed);
                        for e in stripe.map.values() {
                            self.tenant_bytes[self.slot(e.tenant)]
                                .fetch_sub(e.bytes, Ordering::Relaxed);
                        }
                        stripe.map.clear();
                        stripe.bytes = 0;
                    }
                }
            }
        }
        stripe.clock += 1;
        let stamp = stripe.clock;
        stripe.map.insert(
            key,
            Entry {
                value,
                tenant: tenant as TenantId,
                bytes: size,
                stamp,
            },
        );
        stripe.bytes += size;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size, Ordering::Relaxed);
        self.tenant_bytes[tenant].fetch_add(size, Ordering::Relaxed);
    }

    /// Snapshot of the work counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently charged to `tenant` (for `/metrics` and the quota
    /// tests).
    pub fn tenant_bytes(&self, tenant: TenantId) -> u64 {
        self.tenant_bytes[self.slot(tenant)].load(Ordering::Relaxed)
    }

    /// `tenant`'s configured byte quota.
    pub fn tenant_quota(&self, tenant: TenantId) -> u64 {
        self.tenant_quotas[self.slot(tenant)]
    }

    /// Number of tenants the quota table was built with.
    pub fn n_tenants(&self) -> usize {
        self.tenant_quotas.len()
    }

    /// Number of entries currently cached (snapshot across stripes).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| Self::lock(s).map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ResultCache for SearchCache {
    fn get(&self, key: &DrillKey) -> Option<CachedRules> {
        let hit = {
            let mut stripe = Self::lock(self.stripe(key));
            stripe.clock += 1;
            let tick = stripe.clock;
            stripe.map.get_mut(key).map(|e| {
                // Recency stamp for the LRU policy (maintained under both
                // policies so a flip never rebuilds resident state).
                e.stamp = tick;
                Arc::clone(&e.value)
            })
        };
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn contains(&self, key: &DrillKey) -> bool {
        // A pure peek for speculation probes: no hit/miss accounting.
        Self::lock(self.stripe(key)).map.contains_key(key)
    }

    fn insert(&self, key: DrillKey, value: CachedRules) {
        self.insert_for(ANONYMOUS_TENANT, key, value);
    }
}

/// A tenant-tagged view over the shared [`SearchCache`]: the handle an
/// authenticated session's explorer gets, so inserts flowing through the
/// tenant-blind [`ResultCache`] trait are charged to the right quota.
/// Reads are shared across tenants (hits are deterministic global truths).
pub struct TenantCacheView {
    inner: Arc<SearchCache>,
    tenant: TenantId,
}

impl TenantCacheView {
    /// A view of `cache` that charges inserts to `tenant`.
    pub fn new(inner: Arc<SearchCache>, tenant: TenantId) -> Self {
        Self { inner, tenant }
    }
}

impl ResultCache for TenantCacheView {
    fn get(&self, key: &DrillKey) -> Option<CachedRules> {
        self.inner.get(key)
    }

    fn contains(&self, key: &DrillKey) -> bool {
        self.inner.contains(key)
    }

    fn insert(&self, key: DrillKey, value: CachedRules) {
        self.inner.insert_for(self.tenant, key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::{Rule, ScoredRule};
    use std::sync::Arc;

    fn key(n: u64) -> DrillKey {
        DrillKey([n, n.wrapping_mul(0x9E37_79B9_7F4A_7C15)])
    }

    fn rules(count: f64) -> CachedRules {
        Arc::new(vec![ScoredRule {
            rule: Rule::trivial(3),
            weight: 1.0,
            count,
            mcount: count,
        }])
    }

    #[test]
    fn get_insert_roundtrip_with_counters() {
        let c = SearchCache::new(4, 1 << 20);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), rules(7.0));
        let hit = c.get(&key(1)).expect("inserted");
        assert_eq!(hit[0].count.to_bits(), 7.0f64.to_bits());
        let counters = c.counters();
        assert_eq!(
            (counters.hits, counters.misses, counters.inserts),
            (1, 1, 1)
        );
        assert!(counters.bytes > 0);
    }

    #[test]
    fn contains_is_a_pure_peek() {
        let c = SearchCache::new(2, 1 << 20);
        assert!(!c.contains(&key(9)));
        c.insert(key(9), rules(1.0));
        assert!(c.contains(&key(9)));
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses), (0, 0));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let c = SearchCache::new(1, 1 << 20);
        c.insert(key(3), rules(1.0));
        let bytes = c.counters().bytes;
        c.insert(key(3), rules(2.0));
        assert_eq!(c.counters().inserts, 1);
        assert_eq!(c.counters().bytes, bytes);
        // First write wins (both are bit-identical in real use).
        assert_eq!(c.get(&key(3)).expect("present")[0].count, 1.0);
    }

    #[test]
    fn budget_overflow_clears_the_stripe_and_keeps_serving() {
        // Tiny budget: every entry overflows. Pin the epoch policy — the
        // default may be LRU, and this test is about the wholesale clear.
        let c = SearchCache::new(1, 64).eviction(EvictionMode::StripeEpoch);
        c.insert(key(1), rules(1.0));
        c.insert(key(2), rules(2.0));
        assert!(c.counters().evictions >= 1, "{:?}", c.counters());
        // The newest insert survives its own eviction pass.
        assert!(c.get(&key(2)).is_some());
        assert!(c.counters().bytes > 0);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let c = Arc::new(SearchCache::new(8, 1 << 20));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        c.insert(key(i % 32), rules((t * 1000 + i) as f64));
                        let _ = c.get(&key(i % 32));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let counters = c.counters();
        assert_eq!(counters.hits + counters.misses, 1600);
        assert!(c.len() <= 32);
    }

    /// The eviction-isolation contract: tenant 1's burst past its own
    /// quota evicts only tenant 1's entries; tenant 2's hot entries
    /// survive untouched, and tenant 1 never settles above its quota.
    #[test]
    fn tenant_burst_cannot_evict_another_tenants_entries() {
        // One stripe so every key contends on the same budget; global
        // budget far above both quotas so only tenant quotas can trigger.
        let quota = 600u64;
        let c = SearchCache::with_tenants(1, 1 << 20, vec![1 << 20, quota, quota]);

        // Tenant 2 populates comfortably inside its quota.
        let t2_keys: Vec<DrillKey> = (100..104).map(key).collect();
        for k in &t2_keys {
            c.insert_for(2, *k, rules(2.0));
        }
        let t2_bytes = c.tenant_bytes(2);
        assert!(t2_bytes > 0 && t2_bytes <= quota);

        // Tenant 1 bursts way past its own quota.
        for i in 0..200u64 {
            c.insert_for(1, key(i), rules(1.0));
        }

        // Tenant 2's entries are all still present and still accounted.
        for k in &t2_keys {
            assert!(c.contains(k), "tenant 2 entry evicted by tenant 1's burst");
        }
        assert_eq!(c.tenant_bytes(2), t2_bytes);
        // Tenant 1 was evicted down: it holds at most quota + one entry.
        assert!(
            c.tenant_bytes(1) <= quota + 200,
            "tenant 1 resident {} far above quota {quota}",
            c.tenant_bytes(1)
        );
        assert!(c.counters().evictions > 0);
    }

    /// Stripe-budget overflow sheds the inserting tenant before touching
    /// anyone else, and global accounting stays consistent.
    #[test]
    fn stripe_overflow_sheds_the_inserting_tenant_first() {
        // Stripe budget 400; quotas larger than the stripe, so only the
        // stripe budget can trigger. Pinned to the epoch policy (the LRU
        // twin of this contract has its own test below).
        let c = SearchCache::with_tenants(1, 400, vec![1 << 20, 1 << 20, 1 << 20])
            .eviction(EvictionMode::StripeEpoch);
        c.insert_for(2, key(1), rules(1.0));
        let t2_bytes = c.tenant_bytes(2);
        // Tenant 1 fills the stripe past its budget repeatedly.
        for i in 10..30u64 {
            c.insert_for(1, key(i), rules(1.0));
        }
        assert!(
            c.contains(&key(1)),
            "tenant 2's entry fell to tenant 1's stripe overflow"
        );
        assert_eq!(c.tenant_bytes(2), t2_bytes);
        let counters = c.counters();
        assert_eq!(
            counters.bytes,
            c.tenant_bytes(1) + c.tenant_bytes(2),
            "global bytes must equal the sum of tenant bytes"
        );
    }

    /// LRU overflow evicts the coldest entry, not the whole stripe: a
    /// recently-hit entry outlives an older, colder sibling.
    #[test]
    fn lru_overflow_keeps_the_recently_hit_entry() {
        // One stripe, budget that holds exactly two of these entries.
        let per_entry = {
            let probe = SearchCache::new(1, 1 << 20);
            probe.insert(key(0), rules(0.0));
            probe.counters().bytes
        };
        // Quota far above the budget so only the stripe path can trigger
        // (with `new`, quota == budget and the tenant sweep fires first).
        let c = SearchCache::with_tenants(1, (2 * per_entry) as usize, vec![1 << 20])
            .eviction(EvictionMode::Lru);
        assert_eq!(c.eviction_mode(), EvictionMode::Lru);
        c.insert(key(1), rules(1.0));
        c.insert(key(2), rules(2.0));
        // Touch the older entry: it is now the hotter of the two.
        assert!(c.get(&key(1)).is_some());
        c.insert(key(3), rules(3.0));
        assert!(c.contains(&key(1)), "recently-hit entry must survive");
        assert!(!c.contains(&key(2)), "coldest entry must fall");
        assert!(c.contains(&key(3)), "the new entry must land");
        assert_eq!(c.counters().evictions, 1);
        assert!(c.counters().bytes <= 2 * per_entry);
    }

    /// LRU keeps the eviction-isolation contract: a flooding tenant's
    /// stripe overflow evicts its own coldest entries, never another
    /// tenant's — even when the other tenant's entry is the coldest.
    #[test]
    fn lru_overflow_spares_other_tenants_entries() {
        let c = SearchCache::with_tenants(1, 500, vec![1 << 20, 1 << 20, 1 << 20])
            .eviction(EvictionMode::Lru);
        c.insert_for(2, key(100), rules(2.0));
        let t2_bytes = c.tenant_bytes(2);
        // Tenant 1 floods well past the stripe budget; every overflow must
        // pick a tenant-1 victim even though tenant 2's entry is coldest.
        for i in 0..40u64 {
            c.insert_for(1, key(i), rules(1.0));
        }
        assert!(
            c.contains(&key(100)),
            "tenant 2's cold entry fell to tenant 1's LRU overflow"
        );
        assert_eq!(c.tenant_bytes(2), t2_bytes);
        assert!(c.counters().evictions > 0);
        assert_eq!(
            c.counters().bytes,
            c.tenant_bytes(1) + c.tenant_bytes(2),
            "global bytes must equal the sum of tenant bytes"
        );
    }

    /// The env override parses both spellings (case-insensitive) and
    /// anything unrecognised falls back to the compiled default.
    #[test]
    fn eviction_mode_override_parsing() {
        assert_eq!(EvictionMode::parse(Some("lru")), EvictionMode::Lru);
        assert_eq!(EvictionMode::parse(Some("LRU")), EvictionMode::Lru);
        assert_eq!(
            EvictionMode::parse(Some("epoch")),
            EvictionMode::StripeEpoch
        );
        assert_eq!(
            EvictionMode::parse(Some("stripe-epoch")),
            EvictionMode::StripeEpoch
        );
        assert_eq!(EvictionMode::parse(Some("bogus")), EvictionMode::default());
        assert_eq!(EvictionMode::parse(None), EvictionMode::default());
    }

    #[test]
    fn tenant_view_charges_the_right_tenant() {
        let c = Arc::new(SearchCache::with_tenants(
            2,
            1 << 20,
            vec![1 << 20, 1 << 20],
        ));
        let view = TenantCacheView::new(Arc::clone(&c), 1);
        view.insert(key(5), rules(5.0));
        assert!(c.tenant_bytes(1) > 0);
        assert_eq!(c.tenant_bytes(0), 0);
        // Hits are shared: the untagged cache sees tenant 1's entry.
        assert!(c.get(&key(5)).is_some());
        // Unknown tenants clamp to the anonymous slot instead of panicking.
        c.insert_for(999, key(6), rules(6.0));
        assert!(c.tenant_bytes(0) > 0);
    }
}
