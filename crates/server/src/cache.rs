//! The shared, lock-striped drill-down result cache.
//!
//! One [`SearchCache`] is shared by every session of an [`crate::Engine`]
//! (the registry's sessions all explore one immutable store). Keys are the
//! canonical 128-bit digests of `sdd_core::cachekey` — table identity,
//! sample-view content, base rule, star column, `k`, weight tag, `mw` —
//! so two sessions replaying the same drill path under the same options
//! collide exactly, and any divergence (different seed, different history)
//! is a safe miss.
//!
//! **Transparency**: the cache accelerates the BRS search only; sampling,
//! counters, and transcripts are byte-identical with the cache on, off, or
//! disabled mid-flight (`SDD_NO_CACHE=1`, the kill switch mirroring
//! `SDD_NO_SIMD`). The cache-parity suite (`tests/cache_parity.rs`)
//! asserts this end to end, and under debug assertions every hit is
//! re-verified bit-for-bit inside the explorer.
//!
//! Like every striped structure here, striping affects contention only —
//! a key lands on one fixed stripe. Eviction is epoch-style per stripe:
//! when an insert would push a stripe past its byte budget the stripe is
//! cleared (cheap, contention-free, and harmless: the cache is an
//! accelerator, never a source of truth). This file is panic-free (lint
//! rule P001): lock poisoning is absorbed with `into_inner`, never
//! unwrapped.

use rustc_hash::FxHashMap;
use sdd_core::DrillKey;
use sdd_explorer::{CachedRules, ResultCache};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// True unless the `SDD_NO_CACHE` kill switch is thrown (any value but
/// `"0"`). Mirrors `SDD_NO_SIMD`: an operator can rule the result cache
/// out in production without a rebuild, and CI runs the parity suites
/// under both settings.
pub fn cache_enabled() -> bool {
    !std::env::var("SDD_NO_CACHE").is_ok_and(|v| v != "0")
}

/// A snapshot of the cache's work counters. Counters never influence
/// results (the parity suites pin that); they exist for observability —
/// the serve banner, benches, and capacity planning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to a fresh search.
    pub misses: u64,
    /// Results stored.
    pub inserts: u64,
    /// Entries dropped by stripe-epoch eviction.
    pub evictions: u64,
    /// Estimated bytes currently held across all stripes.
    pub bytes: u64,
}

struct Stripe {
    map: FxHashMap<DrillKey, CachedRules>,
    bytes: u64,
}

/// The lock-striped result cache. See module docs.
pub struct SearchCache {
    stripes: Vec<Mutex<Stripe>>,
    stripe_budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

/// Estimated heap footprint of one entry (key + `Arc` + rule codes +
/// scored fields + map overhead). An estimate is all eviction needs.
fn entry_bytes(value: &CachedRules) -> u64 {
    let rules: u64 = value
        .iter()
        .map(|s| 4 * s.rule.codes().len() as u64 + 3 * 8 + 16)
        .sum();
    16 + 48 + rules
}

impl SearchCache {
    /// A cache with `stripes.max(1)` stripes sharing `budget_bytes` evenly.
    pub fn new(stripes: usize, budget_bytes: usize) -> Self {
        let stripes = stripes.max(1);
        Self {
            stripe_budget: (budget_bytes as u64 / stripes as u64).max(1),
            stripes: (0..stripes)
                .map(|_| {
                    Mutex::new(Stripe {
                        map: FxHashMap::default(),
                        bytes: 0,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    fn stripe(&self, key: &DrillKey) -> &Mutex<Stripe> {
        // The key is already a uniform 128-bit digest; its low word is as
        // good a stripe selector as any hash of it.
        let idx = (key.0[0] as usize) % self.stripes.len();
        &self.stripes[idx]
    }

    fn lock(m: &Mutex<Stripe>) -> std::sync::MutexGuard<'_, Stripe> {
        // A poisoned stripe only means some thread panicked while holding
        // the lock; the map itself is still a valid cache (worst case a
        // half-done insert we overwrite). Absorb instead of propagating.
        m.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Snapshot of the work counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently cached (snapshot across stripes).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| Self::lock(s).map.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ResultCache for SearchCache {
    fn get(&self, key: &DrillKey) -> Option<CachedRules> {
        let hit = Self::lock(self.stripe(key)).map.get(key).cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn contains(&self, key: &DrillKey) -> bool {
        // A pure peek for speculation probes: no hit/miss accounting.
        Self::lock(self.stripe(key)).map.contains_key(key)
    }

    fn insert(&self, key: DrillKey, value: CachedRules) {
        let size = entry_bytes(&value);
        let mut stripe = Self::lock(self.stripe(&key));
        if stripe.map.contains_key(&key) {
            // Idempotent: concurrent missers computed the same bits.
            return;
        }
        if stripe.bytes + size > self.stripe_budget && !stripe.map.is_empty() {
            // Epoch eviction: clear the stripe rather than maintain LRU
            // chains under the lock. The cache is an accelerator — a cold
            // stripe repopulates from recomputation, bit-identically.
            self.evictions
                .fetch_add(stripe.map.len() as u64, Ordering::Relaxed);
            self.bytes.fetch_sub(stripe.bytes, Ordering::Relaxed);
            stripe.map.clear();
            stripe.bytes = 0;
        }
        stripe.map.insert(key, value);
        stripe.bytes += size;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::{Rule, ScoredRule};
    use std::sync::Arc;

    fn key(n: u64) -> DrillKey {
        DrillKey([n, n.wrapping_mul(0x9E37_79B9_7F4A_7C15)])
    }

    fn rules(count: f64) -> CachedRules {
        Arc::new(vec![ScoredRule {
            rule: Rule::trivial(3),
            weight: 1.0,
            count,
            mcount: count,
        }])
    }

    #[test]
    fn get_insert_roundtrip_with_counters() {
        let c = SearchCache::new(4, 1 << 20);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), rules(7.0));
        let hit = c.get(&key(1)).expect("inserted");
        assert_eq!(hit[0].count.to_bits(), 7.0f64.to_bits());
        let counters = c.counters();
        assert_eq!(
            (counters.hits, counters.misses, counters.inserts),
            (1, 1, 1)
        );
        assert!(counters.bytes > 0);
    }

    #[test]
    fn contains_is_a_pure_peek() {
        let c = SearchCache::new(2, 1 << 20);
        assert!(!c.contains(&key(9)));
        c.insert(key(9), rules(1.0));
        assert!(c.contains(&key(9)));
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses), (0, 0));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let c = SearchCache::new(1, 1 << 20);
        c.insert(key(3), rules(1.0));
        let bytes = c.counters().bytes;
        c.insert(key(3), rules(2.0));
        assert_eq!(c.counters().inserts, 1);
        assert_eq!(c.counters().bytes, bytes);
        // First write wins (both are bit-identical in real use).
        assert_eq!(c.get(&key(3)).expect("present")[0].count, 1.0);
    }

    #[test]
    fn budget_overflow_clears_the_stripe_and_keeps_serving() {
        let c = SearchCache::new(1, 64); // tiny: every entry overflows
        c.insert(key(1), rules(1.0));
        c.insert(key(2), rules(2.0));
        assert!(c.counters().evictions >= 1, "{:?}", c.counters());
        // The newest insert survives its own eviction pass.
        assert!(c.get(&key(2)).is_some());
        assert!(c.counters().bytes > 0);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let c = Arc::new(SearchCache::new(8, 1 << 20));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        c.insert(key(i % 32), rules((t * 1000 + i) as f64));
                        let _ = c.get(&key(i % 32));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let counters = c.counters();
        assert_eq!(counters.hits + counters.misses, 1600);
        assert!(c.len() <= 32);
    }
}
