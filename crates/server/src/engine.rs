//! The request-dispatch core: a registry of [`Explorer`] sessions over one
//! shared table, independent of any transport.
//!
//! TCP connections and in-process callers (tests, benches) both go through
//! [`Engine::handle_line`], so the bytes a client receives are — by
//! construction — the bytes a single-threaded replay of the same request
//! sequence produces. The concurrency layers above (connection pool,
//! background prefetch worker) only decide *when* work happens:
//!
//! * per-session ordering: every operation locks the session's own mutex;
//! * prefetch equivalence: a deferred prefetch job is run by the background
//!   worker during think-time, or — if a request arrives first — drained at
//!   the start of that request, which is exactly where the inline mode
//!   would have run it (see [`sdd_explorer::PrefetchMode`]).
//!
//! Sessions never share mutable state (each has its own sample store,
//! click model, and counters), so concurrent sessions cannot perturb each
//! other's results — the property the stress harness pins down.

use crate::auth::TenantRegistry;
use crate::cache::{cache_enabled, CacheCounters, EvictionMode, SearchCache, TenantCacheView};
use crate::predict::{PredictCounters, TransitionModel};
use crate::protocol::{Request, Response, RuleInfo, StatsInfo};
use crate::registry::{Registry, RegistryError, TenantId, ANONYMOUS_TENANT};
use sdd_core::{BitsWeight, SizeMinusOne, SizeWeight, WeightFn};
use sdd_explorer::{
    DisplayedRule, Explorer, ExplorerConfig, PrefetchMode, ResultCache, SharedResultCache,
};
use sdd_sampling::PrefetchJob;
use sdd_table::{Table, TableStore};
use std::sync::Arc;

/// Tail-ingest settings: accepting `append` requests against a live
/// (appendable) served table. Absent from [`EngineConfig`] by default —
/// a server that did not opt in (`sdd serve --tail`) rejects every
/// `append` before touching the store.
#[derive(Debug, Clone)]
pub struct TailConfig {
    /// Largest accepted `append` batch, in rows. One request seals at
    /// least one segment, so unbounded batches would let a single client
    /// drive unbounded allocation; the default (10 000) comfortably fits
    /// the protocol's line-length budget.
    pub max_batch_rows: usize,
}

impl Default for TailConfig {
    fn default() -> Self {
        Self {
            max_batch_rows: 10_000,
        }
    }
}

/// Server-wide defaults for new sessions.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Session defaults (`k`, `mw`, sampling layer). The `prefetch` field
    /// selects the serving mode: `Deferred` for a server with a background
    /// prefetch worker, `Inline` for single-threaded replay — the two are
    /// observably identical.
    pub session: ExplorerConfig,
    /// Stripe count of the session registry.
    pub stripes: usize,
    /// Cap on concurrently registered sessions (backpressure guard on the
    /// open port).
    pub max_sessions: usize,
    /// Byte budget of the shared cross-session result cache; `0` disables
    /// it (as does the `SDD_NO_CACHE` environment kill switch). The cache
    /// is transparent — responses are byte-identical either way.
    pub cache_bytes: usize,
    /// Stripe-overflow eviction policy of the result cache. The default
    /// honours the `SDD_CACHE_EVICT` environment override and otherwise
    /// keeps the policy the cache-module bench selected (see
    /// [`EvictionMode`]). Policy never changes a response byte — only the
    /// hit rate under budget pressure.
    pub cache_eviction: EvictionMode,
    /// Tenant directory (auth tokens + per-tenant quotas). The default is
    /// an open registry: one anonymous tenant, no auth, no quotas beyond
    /// `max_sessions` — exactly the lab behavior every existing caller
    /// expects. Quotas never change a response byte; they only decide
    /// whether an `open` is admitted.
    pub tenants: Arc<TenantRegistry>,
    /// Tail-ingest opt-in: `Some` accepts `append` requests (gated on the
    /// tenant's `ingest` capability and `max_batch_rows`), `None` — the
    /// default — rejects them all.
    pub tail: Option<TailConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            session: ExplorerConfig {
                prefetch: PrefetchMode::Deferred,
                ..ExplorerConfig::default()
            },
            stripes: 16,
            max_sessions: 10_000,
            cache_bytes: 64 << 20,
            cache_eviction: EvictionMode::from_env(),
            tenants: Arc::new(TenantRegistry::open()),
            tail: None,
        }
    }
}

/// The transport-independent server core. See module docs.
pub struct Engine {
    store: TableStore,
    sessions: Registry<Explorer>,
    config: EngineConfig,
    /// Shared cross-session result cache; `None` when disabled by config
    /// (`cache_bytes == 0`) or the `SDD_NO_CACHE` kill switch.
    cache: Option<Arc<SearchCache>>,
    /// Parent→child drill-down frequency model feeding think-time
    /// speculation. Advisory only: never changes a response byte.
    transitions: Arc<TransitionModel>,
    /// The engine-assigned cache identity of the served store. Every
    /// session gets this id, so sessions share result-cache entries;
    /// two engines (two loaded stores) always get distinct ids, so their
    /// entries can never collide even if they share a cache.
    table_id: u64,
}

impl Engine {
    /// Creates an engine serving a monolithic in-memory `table`.
    pub fn new(table: Arc<Table>, config: EngineConfig) -> Self {
        Self::with_store(TableStore::Whole(table), config)
    }

    /// Creates an engine serving any [`TableStore`] — in particular a
    /// sharded table whose segments spill to disk, which lets one served
    /// dataset exceed RAM. Every session opened on this engine explores the
    /// shared store; results are byte-identical to serving the equivalent
    /// monolithic table (the sharded stress harness asserts the transcript
    /// equality).
    pub fn with_store(store: TableStore, config: EngineConfig) -> Self {
        let cache = (config.cache_bytes > 0 && cache_enabled()).then(|| {
            Arc::new(
                SearchCache::with_tenants(
                    config.stripes,
                    config.cache_bytes,
                    config.tenants.cache_quotas(config.cache_bytes as u64),
                )
                .eviction(config.cache_eviction),
            )
        });
        Self {
            store,
            sessions: Registry::new(config.stripes),
            cache,
            transitions: Arc::new(TransitionModel::new(config.stripes)),
            config,
            table_id: sdd_explorer::allocate_table_id(),
        }
    }

    /// The served store's metadata table (schema/dictionaries; for sharded
    /// stores this is the zero-row header).
    pub fn table(&self) -> &Arc<Table> {
        self.store.header()
    }

    /// The storage this engine serves.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// Storage-tier counters `(loads, evictions, spills, peak_resident)`
    /// when the served store is sharded, `None` for a monolithic store —
    /// the observability hook front-ends and the ingest test suites use to
    /// verify a served dataset actually exercised the spill tier (counters
    /// never influence results; the parity suites pin that).
    pub fn storage_counters(&self) -> Option<(u64, u64, u64, usize)> {
        match &self.store {
            TableStore::Sharded(s) => {
                Some((s.loads(), s.evictions(), s.spills(), s.peak_resident()))
            }
            TableStore::Live(l) => Some(l.live().storage_counters()),
            TableStore::Whole(_) => None,
        }
    }

    /// Live-table gauges `(epoch, visible_rows)` when the served store is
    /// appendable, `None` otherwise. Reads the **latest** published state,
    /// not any session's pin — this is what `/metrics` exports so an
    /// operator can watch ingest advance.
    pub fn live_info(&self) -> Option<(u64, usize)> {
        match &self.store {
            TableStore::Live(l) => Some((l.live().epoch(), l.live().n_rows())),
            _ => None,
        }
    }

    /// Number of live sessions.
    pub fn n_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Shared result-cache counters, `None` when the cache is disabled
    /// (`cache_bytes == 0` or `SDD_NO_CACHE`). Like
    /// [`Engine::storage_counters`] these are observability only — the
    /// cache-parity suites pin that they never influence response bytes,
    /// which is also why they are not part of the wire `stats` reply.
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|c| c.counters())
    }

    /// Configured result-cache byte budget, `None` when disabled.
    pub fn cache_capacity(&self) -> Option<usize> {
        self.cache.as_ref().map(|_| self.config.cache_bytes)
    }

    /// Transition-model counters (records/predictions/speculations).
    pub fn predict_counters(&self) -> PredictCounters {
        self.transitions.counters()
    }

    /// The tenant directory this engine enforces quotas from.
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.config.tenants
    }

    /// Result-cache bytes currently charged to `tenant` (0 when the cache
    /// is disabled). Observability only — `/metrics` reads this.
    pub fn tenant_cache_bytes(&self, tenant: TenantId) -> u64 {
        self.cache.as_ref().map_or(0, |c| c.tenant_bytes(tenant))
    }

    /// Handles one raw request line and returns the serialized response
    /// line (no trailing newline) plus, when a deferred prefetch job is now
    /// pending, the session name to hand to the background worker.
    pub fn handle_line(&self, line: &str) -> (String, Option<String>) {
        let (response, hint) = match crate::protocol::parse_request_line(line) {
            Ok(req) => self.handle(&req),
            Err(e) => (Response::error(e), None),
        };
        (response.to_json().to_string(), hint)
    }

    /// [`Engine::handle_line`] plus connection-scoped session tracking: a
    /// successful `open` appends the session name to `opened`, a
    /// successful `close` removes it, so a transport can reap whatever is
    /// left when its connection dies without a `close` (client crash,
    /// abrupt TCP drop — see [`Engine::close_session`]). In-process
    /// callers that want process-lifetime sessions keep using
    /// [`Engine::handle_line`].
    pub fn handle_line_tracked(
        &self,
        line: &str,
        opened: &mut Vec<String>,
    ) -> (String, Option<String>) {
        self.handle_line_as(line, Some(opened), ANONYMOUS_TENANT)
    }

    /// The fully general entry point: one raw request line, handled on
    /// behalf of `tenant` (session-quota enforcement at `open`; cache
    /// inserts charged to the tenant), with optional connection-scoped
    /// session tracking via `opened` (pass `None` for transports whose
    /// sessions outlive connections — HTTP — and rely on the idle sweep
    /// instead). Tenancy decides only whether an `open` is admitted: for
    /// any admitted request sequence the response bytes are identical for
    /// every tenant, which is what keeps HTTP transcripts byte-equal to
    /// line-JSON transcripts.
    pub fn handle_line_as(
        &self,
        line: &str,
        opened: Option<&mut Vec<String>>,
        tenant: TenantId,
    ) -> (String, Option<String>) {
        match crate::protocol::parse_request_line(line) {
            Ok(req) => {
                let (response, hint) = self.handle_as(&req, tenant);
                if let Some(opened) = opened {
                    match (&req, &response) {
                        (Request::Open { session, .. }, Response::Opened { .. }) => {
                            opened.push(session.clone());
                        }
                        (Request::Close { session }, Response::Closed) => {
                            opened.retain(|s| s != session);
                        }
                        _ => {}
                    }
                }
                (response.to_json().to_string(), hint)
            }
            Err(e) => (Response::error(e).to_json().to_string(), None),
        }
    }

    /// Removes a session without a protocol exchange — transport-level
    /// reaping of connection-scoped sessions whose client vanished without
    /// `close`. Idempotent; a name already closed is a no-op. Releases the
    /// owning tenant's session quota.
    pub fn close_session(&self, session: &str) {
        if let Some((_, tenant)) = self.sessions.remove_tagged(session) {
            self.config.tenants.tenant(tenant).release_session();
        }
    }

    /// Removes every session idle longer than `ttl`, releasing each
    /// owner's quota, and returns how many were reaped. The server's
    /// background sweep calls this; HTTP sessions (not connection-scoped)
    /// rely on it for their whole lifecycle, and a stalled TCP client's
    /// sessions are also reclaimed here if its read timeout has not fired
    /// first.
    pub fn evict_idle_sessions(&self, ttl: std::time::Duration) -> usize {
        let reaped = self.sessions.sweep_idle(ttl.as_millis() as u64);
        for (_, tenant) in &reaped {
            self.config.tenants.tenant(*tenant).release_session();
        }
        reaped.len()
    }

    /// Handles one parsed request as the anonymous tenant. Returns the
    /// response and, when a deferred prefetch job is pending afterwards,
    /// the session to ping.
    pub fn handle(&self, req: &Request) -> (Response, Option<String>) {
        self.handle_as(req, ANONYMOUS_TENANT)
    }

    /// [`Engine::handle`] on behalf of `tenant` — see
    /// [`Engine::handle_line_as`] for the tenancy contract.
    pub fn handle_as(&self, req: &Request, tenant: TenantId) -> (Response, Option<String>) {
        match req {
            Request::Ping => (Response::Pong, None),
            Request::TableInfo => (
                Response::TableInfo {
                    // Live stores report the latest published epoch's row
                    // count, not the engine's load-time pin — `table` is
                    // how a tail client confirms its appends landed.
                    rows: self
                        .live_info()
                        .map_or_else(|| self.store.n_rows(), |(_, rows)| rows),
                    columns: (0..self.store.n_columns())
                        .map(|c| self.store.schema().column_name(c).to_owned())
                        .collect(),
                },
                None,
            ),
            Request::Open { session, options } => (self.open(session, options, tenant), None),
            Request::Close { session } => match self.sessions.remove_tagged(session) {
                Some((_, owner)) => {
                    self.config.tenants.tenant(owner).release_session();
                    (Response::Closed, None)
                }
                None => (
                    Response::error(RegistryError::NotFound(session.clone())),
                    None,
                ),
            },
            Request::Expand { session, path } => {
                self.with_session(session, |ex| match ex.expand(path) {
                    Ok(children) => {
                        self.record_transition(ex, path);
                        Response::Expanded {
                            rules: child_infos(path, &children, ex.table()),
                        }
                    }
                    Err(e) => Response::error(e),
                })
            }
            Request::Star {
                session,
                path,
                column,
            } => self.with_session(session, |ex| {
                let col = match ex.table().schema().index_of(column) {
                    Ok(c) => c,
                    Err(e) => return Response::error(e),
                };
                match ex.expand_star(path, col) {
                    Ok(children) => Response::Expanded {
                        rules: child_infos(path, &children, ex.table()),
                    },
                    Err(e) => Response::error(e),
                }
            }),
            Request::Collapse { session, path } => {
                self.with_session(session, |ex| match ex.collapse(path) {
                    Ok(()) => Response::Collapsed,
                    Err(e) => Response::error(e),
                })
            }
            Request::Rules { session } => self.with_session(session, |ex| Response::RuleList {
                rules: visible_infos(ex),
            }),
            Request::Render { session } => {
                self.with_session(session, |ex| Response::Rendered { text: ex.render() })
            }
            Request::Refresh { session } => {
                self.with_session(session, |ex| {
                    // Serving-mode split: over frozen storage the refresh
                    // scan runs inline (the classic blocking semantics many
                    // transcript suites pin). Over a live table it is
                    // *scheduled* — the background worker or the next
                    // operation prologue runs it off the request path — and
                    // the reply shows the current (possibly estimated)
                    // counts. Either way the scan executes at the epoch the
                    // session is pinned to right now.
                    let result = if ex.store().as_live().is_some() {
                        ex.request_refresh();
                        Ok(())
                    } else {
                        ex.try_refresh_exact_counts()
                    };
                    match result {
                        Ok(()) => Response::RuleList {
                            rules: visible_infos(ex),
                        },
                        Err(e) => Response::error(e),
                    }
                })
            }
            Request::Append { rows, measures } => (self.append(rows, measures, tenant), None),
            Request::Stats { session } => self.with_session(session, |ex| {
                let h = ex.handler_stats();
                Response::Stats {
                    stats: StatsInfo {
                        expansions: ex.stats.expansions,
                        served_from_memory: ex.stats.served_from_memory,
                        refreshes: ex.stats.refreshes,
                        finds: h.finds,
                        combines: h.combines,
                        creates: h.creates,
                        full_scans: h.full_scans,
                        evictions: h.evictions,
                        stored_samples: ex.handler().n_samples(),
                        memory_used: ex.handler().memory_used(),
                    },
                }
            }),
        }
    }

    /// Handles one `append`: gate (tail opt-in → tenant ingest capability →
    /// batch cap → live store), then seal the batch through the live
    /// table's existing segment machinery. The append publishes a new
    /// epoch; every session picks it up at its next operation prologue and
    /// no cached result is ever served across the boundary (the epoch is
    /// part of every cache key).
    fn append(&self, rows: &[Vec<String>], measures: &[Vec<f64>], tenant: TenantId) -> Response {
        let Some(tail) = &self.config.tail else {
            return Response::error("append rejected: tail ingest is not enabled on this server");
        };
        let owner = self.config.tenants.tenant(tenant);
        if !owner.quota.ingest {
            return Response::error(format!(
                "tenant {:?} lacks the ingest capability",
                owner.name
            ));
        }
        if rows.len() > tail.max_batch_rows {
            return Response::error(format!(
                "append batch of {} rows exceeds the {}-row cap",
                rows.len(),
                tail.max_batch_rows
            ));
        }
        let Some(live) = self.store.as_live() else {
            return Response::error("append rejected: the served table is frozen");
        };
        // The wire carries measure *columns*; the live table wants one
        // measure vector per *row* — transpose after checking the columns
        // are rectangular (a ragged batch must not partially apply).
        if let Some(col) = measures.iter().find(|col| col.len() != rows.len()) {
            return Response::error(format!(
                "measure column of {} values does not match the {}-row batch",
                col.len(),
                rows.len()
            ));
        }
        let by_row: Vec<Vec<f64>> = (0..rows.len())
            .map(|r| measures.iter().map(|col| col[r]).collect())
            .collect();
        match live.live().try_append(rows, &by_row) {
            Ok(snap) => Response::Appended {
                epoch: snap.epoch,
                rows: snap.table.n_rows(),
            },
            Err(e) => Response::error(e),
        }
    }

    fn open(
        &self,
        session: &str,
        options: &crate::protocol::OpenOptions,
        tenant: TenantId,
    ) -> Response {
        if session.is_empty() || session.len() > 128 {
            return Response::error("session name must be 1..=128 characters");
        }
        if self.sessions.len() >= self.config.max_sessions {
            return Response::error("session limit reached");
        }
        let owner = self.config.tenants.tenant(tenant);
        if !owner.try_claim_session() {
            return Response::error(format!(
                "tenant {:?} session quota ({}) reached",
                owner.name, owner.quota.max_sessions
            ));
        }
        // The slot is claimed; any failure below must hand it back.
        let response = self.open_claimed(session, options, tenant);
        if !matches!(response, Response::Opened { .. }) {
            owner.release_session();
        }
        response
    }

    /// The validation + construction half of `open`, running with the
    /// tenant's session slot already claimed.
    fn open_claimed(
        &self,
        session: &str,
        options: &crate::protocol::OpenOptions,
        tenant: TenantId,
    ) -> Response {
        let weight: Box<dyn WeightFn> = match options.weight.as_deref() {
            None | Some("size") => Box::new(SizeWeight),
            Some("bits") => Box::new(BitsWeight),
            Some("size-1") | Some("size-minus-one") => Box::new(SizeMinusOne),
            Some(other) => {
                return Response::error(format!("unknown weight {other:?} (size|bits|size-1)"))
            }
        };
        let mut cfg = self.config.session.clone();
        if let Some(k) = options.k {
            if k == 0 {
                return Response::error("k must be positive");
            }
            cfg.k = k;
        }
        if let Some(mw) = options.max_weight {
            if mw <= 0.0 || mw.is_nan() {
                return Response::error("mw must be positive");
            }
            cfg.max_weight = Some(mw);
        }
        if let Some(seed) = options.seed {
            cfg.handler.seed = seed;
        }
        if let Some(capacity) = options.capacity {
            cfg.handler.capacity = capacity;
        }
        if let Some(min_ss) = options.min_ss {
            cfg.handler.min_sample_size = min_ss;
        }
        if cfg.handler.min_sample_size == 0 || cfg.handler.capacity < cfg.handler.min_sample_size {
            return Response::error("capacity must hold at least one minimum-size sample");
        }
        // Every session shares the engine-wide result cache. Key
        // derivation inside the explorer already folds in everything that
        // can vary per session (sample content, base rule, k, weight, mw),
        // so cross-session sharing is sound — and sessions with diverging
        // sample content simply miss.
        // The view tags inserts with the owning tenant so cache-byte
        // quotas charge the right account; hits stay tenant-blind.
        cfg.cache = self.cache.clone().map(|c| {
            SharedResultCache(Arc::new(TenantCacheView::new(c, tenant)) as Arc<dyn ResultCache>)
        });
        // One id per loaded store: sessions of this engine interoperate in
        // the cache, sessions of any other engine (even over an identical
        // table) never collide with them.
        cfg.table_id = Some(self.table_id);
        let explorer = Explorer::with_store(self.store.clone(), weight, cfg);
        match self.sessions.insert_tagged(session, explorer, tenant) {
            Ok(()) => Response::Opened {
                session: session.to_owned(),
            },
            Err(e) => Response::error(e),
        }
    }

    /// Locks the named session and runs `f` on it. Any deferred prefetch
    /// job the background worker has not claimed yet is drained **first**,
    /// under the same lock, so every operation observes the state inline
    /// prefetching would have produced.
    fn with_session(
        &self,
        session: &str,
        f: impl FnOnce(&mut Explorer) -> Response,
    ) -> (Response, Option<String>) {
        let Some(handle) = self.sessions.get(session) else {
            return (
                Response::error(RegistryError::NotFound(session.to_owned())),
                None,
            );
        };
        // A panic inside an earlier operation poisons the session lock;
        // answer with an error (the session state may be inconsistent)
        // instead of cascading the panic through the connection worker.
        let Ok(mut ex) = handle.lock() else {
            return (
                Response::error(format!(
                    "session {session:?} is corrupted by an earlier internal error; close it"
                )),
                None,
            );
        };
        // The operation prologue, in two steps. First, the unclaimed
        // prefetch job: best-effort, error dropped — the job is consumed
        // either way and the operation below resurfaces the fault if it
        // needs the damaged shard (the pre-live behavior, pinned by the
        // spill-fault suite). Then the epoch advance: a scheduled refresh
        // drains at the epoch it was created under and the session moves
        // onto the newest published snapshot; a storage fault *here* is a
        // real answer-blocking failure (the refresh stays scheduled, the
        // pin stays put), so it becomes the error response — not a panic,
        // not a silent stale answer.
        let _ = ex.try_drain_pending_prefetch();
        if let Err(e) = ex.try_advance_epoch() {
            return (Response::error(e), None);
        }
        let response = f(&mut ex);
        let hint =
            (ex.has_pending_prefetch() || ex.has_pending_refresh()).then(|| session.to_owned());
        (response, hint)
    }

    /// Background-worker tick: claim and run the named session's pending
    /// prefetch job, if it is still unclaimed. Holding the session lock for
    /// the duration keeps the job atomic with respect to requests. After
    /// the sample prefetch, think-time speculation may precompute the
    /// predicted next expansion into the shared result cache.
    pub fn run_pending_prefetch(&self, session: &str) {
        if let Some(handle) = self.sessions.get(session) {
            if let Ok(mut ex) = handle.lock() {
                if let Some(job) = ex.take_pending_prefetch() {
                    // Best-effort: a failed background prefetch stores
                    // nothing; the next request touching the damaged shard
                    // gets the error. (When no job remains, a request beat
                    // us to it and drained it — the exact point inline
                    // prefetching would have run it.)
                    let _ = ex.try_run_prefetch(&job);
                    self.speculate(&ex, &job);
                }
                // Scheduled exact-count refresh (live serving mode) also
                // runs on this worker — at the session's pinned epoch, the
                // same point the next request prologue would run it, so
                // worker timing is unobservable in the response bytes; the
                // epoch advance afterwards keeps think-time sample
                // maintenance off the request path too.
                let _ = ex.try_advance_epoch();
            }
        }
    }

    /// Feeds the transition model after a successful `expand`: the analyst,
    /// looking at the parent's rule list, drilled into the rule at `path`.
    /// Root expansions have no parent to learn from, and without a shared
    /// cache there is nothing speculation could warm — skip both.
    fn record_transition(&self, ex: &Explorer, path: &[usize]) {
        if self.cache.is_none() || path.is_empty() {
            return;
        }
        let (Ok(parent), Ok(child)) = (ex.rule_at(&path[..path.len() - 1]), ex.rule_at(path))
        else {
            return;
        };
        self.transitions.record(&parent.rule, &child.rule);
    }

    /// Think-time speculation: if the transition model confidently predicts
    /// which displayed child the analyst drills into next, precompute that
    /// expansion into the shared result cache before the click arrives.
    /// Runs under the session lock after the sample prefetch and mutates no
    /// session state (read-only sample peek, shared-cache insert), so a
    /// wrong guess or a lost race changes nothing observable.
    fn speculate(&self, ex: &Explorer, job: &PrefetchJob) {
        if self.cache.is_none() {
            return;
        }
        let Some(predicted) = self.transitions.predict(&job.parent) else {
            return;
        };
        // Only precompute rules actually on this session's display — the
        // model is shared, so the predicted child may not be among this
        // session's prefetch candidates.
        if job.entries.iter().any(|e| e.rule == predicted) && ex.speculate_expand(&predicted) {
            self.transitions.note_speculation();
        }
    }
}

fn rule_info(path: Vec<usize>, info: &DisplayedRule, table: &Table) -> RuleInfo {
    RuleInfo {
        path,
        rule: info.rule.display(table),
        count: info.count,
        ci: (info.ci_lo, info.ci_hi),
        exact: info.exact,
        weight: info.weight,
    }
}

fn child_infos(base: &[usize], children: &[DisplayedRule], table: &Table) -> Vec<RuleInfo> {
    children
        .iter()
        .enumerate()
        .map(|(i, info)| {
            let mut path = base.to_vec();
            path.push(i);
            rule_info(path, info, table)
        })
        .collect()
}

fn visible_infos(ex: &Explorer) -> Vec<RuleInfo> {
    let table = ex.table().clone();
    let mut out = Vec::new();
    // Depth-first in display order, reconstructing paths.
    fn walk(ex: &Explorer, path: &mut Vec<usize>, table: &Table, out: &mut Vec<RuleInfo>) {
        if let Ok(info) = ex.rule_at(path) {
            out.push(rule_info(path.clone(), info, table));
        }
        if let Ok(children) = ex.children_at(path) {
            for i in 0..children.len() {
                path.push(i);
                walk(ex, path, table, out);
                path.pop();
            }
        }
    }
    let mut path = Vec::new();
    walk(ex, &mut path, &table, &mut out);
    out
}
