//! The line-delimited JSON wire protocol.
//!
//! One request object per line in, one response object per line out, in
//! order. Requests carry an `"op"` discriminator; responses carry
//! `"ok": true/false` plus an echo of the op. See `PROTOCOL.md` in this
//! crate for the full reference with examples.
//!
//! Both directions are implemented here (`to_json` / `from_json` on both
//! types) so the test harness can round-trip every variant and drive the
//! engine through exactly the bytes a TCP client would send.

use crate::json::Json;

/// Per-session knobs a client may set at `open`. Unset fields fall back to
/// the server's engine defaults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpenOptions {
    /// Rules per expansion (the paper's `k`).
    pub k: Option<usize>,
    /// The optimizer's `mw` parameter.
    pub max_weight: Option<f64>,
    /// Weighting function: `"size"`, `"bits"`, or `"size-1"`.
    pub weight: Option<String>,
    /// Sampling seed (sessions with equal seeds draw equal samples). Sent
    /// as a JSON **string** so the full `u64` range survives the wire
    /// (JSON numbers go through `f64`, which is exact only to 2^53);
    /// small numeric seeds are accepted on parse for hand-written clients.
    pub seed: Option<u64>,
    /// Sample-memory capacity `M`.
    pub capacity: Option<usize>,
    /// Minimum sample size `minSS`.
    pub min_ss: Option<usize>,
}

/// One protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a session under a client-chosen name.
    Open {
        /// Client-chosen session name (the registry key).
        session: String,
        /// Optional per-session configuration.
        options: OpenOptions,
    },
    /// Smart drill-down on the rule at `path`.
    Expand {
        /// Session name.
        session: String,
        /// Node path (child indices from the root).
        path: Vec<usize>,
    },
    /// Star drill-down on `column` of the rule at `path`.
    Star {
        /// Session name.
        session: String,
        /// Node path.
        path: Vec<usize>,
        /// Column name to instantiate.
        column: String,
    },
    /// Roll up the node at `path`.
    Collapse {
        /// Session name.
        session: String,
        /// Node path.
        path: Vec<usize>,
    },
    /// List every visible rule.
    Rules {
        /// Session name.
        session: String,
    },
    /// Render the paper-style text table.
    Render {
        /// Session name.
        session: String,
    },
    /// Replace all displayed estimates with exact counts (one scan).
    Refresh {
        /// Session name.
        session: String,
    },
    /// Session + sampling-layer statistics.
    Stats {
        /// Session name.
        session: String,
    },
    /// Drop a session.
    Close {
        /// Session name.
        session: String,
    },
    /// Append a batch of rows to a live (appendable) shared table. The
    /// table-level analogue of `table`: it carries no session — every
    /// session observes the new epoch at its next operation.
    Append {
        /// Rows in schema order, one `Vec<String>` of category values per row.
        rows: Vec<Vec<String>>,
        /// Measure columns (one `Vec<f64>` per measure, each `rows.len()`
        /// long). Empty when the table has no measures.
        measures: Vec<Vec<f64>>,
    },
    /// Liveness probe.
    Ping,
    /// Shared-table metadata.
    TableInfo,
}

impl Request {
    /// The `"op"` string of this request.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Expand { .. } => "expand",
            Request::Star { .. } => "star",
            Request::Collapse { .. } => "collapse",
            Request::Rules { .. } => "rules",
            Request::Render { .. } => "render",
            Request::Refresh { .. } => "refresh",
            Request::Stats { .. } => "stats",
            Request::Close { .. } => "close",
            Request::Append { .. } => "append",
            Request::Ping => "ping",
            Request::TableInfo => "table",
        }
    }

    /// Serializes to the wire object.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![("op".to_owned(), Json::str(self.op()))];
        let mut push = |k: &str, v: Json| pairs.push((k.to_owned(), v));
        match self {
            Request::Open { session, options } => {
                push("session", Json::str(session.clone()));
                if let Some(k) = options.k {
                    push("k", Json::num(k as f64));
                }
                if let Some(mw) = options.max_weight {
                    push("mw", Json::num(mw));
                }
                if let Some(w) = &options.weight {
                    push("weight", Json::str(w.clone()));
                }
                if let Some(seed) = options.seed {
                    push("seed", Json::str(seed.to_string()));
                }
                if let Some(c) = options.capacity {
                    push("capacity", Json::num(c as f64));
                }
                if let Some(m) = options.min_ss {
                    push("min_ss", Json::num(m as f64));
                }
            }
            Request::Expand { session, path } | Request::Collapse { session, path } => {
                push("session", Json::str(session.clone()));
                push("path", path_json(path));
            }
            Request::Star {
                session,
                path,
                column,
            } => {
                push("session", Json::str(session.clone()));
                push("path", path_json(path));
                push("column", Json::str(column.clone()));
            }
            Request::Rules { session }
            | Request::Render { session }
            | Request::Refresh { session }
            | Request::Stats { session }
            | Request::Close { session } => {
                push("session", Json::str(session.clone()));
            }
            Request::Append { rows, measures } => {
                push(
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| Json::Arr(r.iter().map(|c| Json::str(c.clone())).collect()))
                            .collect(),
                    ),
                );
                if !measures.is_empty() {
                    push(
                        "measures",
                        Json::Arr(
                            measures
                                .iter()
                                .map(|m| Json::Arr(m.iter().map(|&x| Json::num(x)).collect()))
                                .collect(),
                        ),
                    );
                }
            }
            Request::Ping | Request::TableInfo => {}
        }
        Json::Obj(pairs)
    }

    /// Parses a wire object into a request.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field \"op\"")?;
        let session = || -> Result<String, String> {
            Ok(v.get("session")
                .and_then(Json::as_str)
                .ok_or("missing string field \"session\"")?
                .to_owned())
        };
        let path = || -> Result<Vec<usize>, String> {
            let arr = v
                .get("path")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"path\"")?;
            arr.iter()
                .map(|e| e.as_usize().ok_or_else(|| "bad path element".to_owned()))
                .collect()
        };
        match op {
            "open" => {
                let get_usize = |key: &str| -> Result<Option<usize>, String> {
                    match v.get(key) {
                        None => Ok(None),
                        Some(x) => Ok(Some(
                            x.as_usize().ok_or(format!("bad integer field {key:?}"))?,
                        )),
                    }
                };
                let options = OpenOptions {
                    k: get_usize("k")?,
                    max_weight: match v.get("mw") {
                        None => None,
                        Some(x) => Some(x.as_f64().ok_or("bad number field \"mw\"")?),
                    },
                    weight: match v.get("weight") {
                        None => None,
                        Some(x) => {
                            Some(x.as_str().ok_or("bad string field \"weight\"")?.to_owned())
                        }
                    },
                    seed: match v.get("seed") {
                        None => None,
                        // Canonical form: a decimal string (exact for all
                        // of u64). Numbers work up to 2^53.
                        Some(Json::Str(s)) => Some(
                            s.parse::<u64>()
                                .map_err(|_| "bad integer field \"seed\"".to_owned())?,
                        ),
                        Some(x) => Some(x.as_usize().ok_or("bad integer field \"seed\"")? as u64),
                    },
                    capacity: get_usize("capacity")?,
                    min_ss: get_usize("min_ss")?,
                };
                Ok(Request::Open {
                    session: session()?,
                    options,
                })
            }
            "expand" => Ok(Request::Expand {
                session: session()?,
                path: path()?,
            }),
            "star" => Ok(Request::Star {
                session: session()?,
                path: path()?,
                column: v
                    .get("column")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"column\"")?
                    .to_owned(),
            }),
            "collapse" => Ok(Request::Collapse {
                session: session()?,
                path: path()?,
            }),
            "rules" => Ok(Request::Rules {
                session: session()?,
            }),
            "render" => Ok(Request::Render {
                session: session()?,
            }),
            "refresh" => Ok(Request::Refresh {
                session: session()?,
            }),
            "stats" => Ok(Request::Stats {
                session: session()?,
            }),
            "close" => Ok(Request::Close {
                session: session()?,
            }),
            "append" => {
                let rows = v
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or("missing array field \"rows\"")?
                    .iter()
                    .map(|r| {
                        r.as_arr()
                            .ok_or_else(|| "bad row (expected array of strings)".to_owned())?
                            .iter()
                            .map(|c| {
                                c.as_str()
                                    .map(str::to_owned)
                                    .ok_or_else(|| "bad category value".to_owned())
                            })
                            .collect()
                    })
                    .collect::<Result<Vec<Vec<String>>, String>>()?;
                let measures = match v.get("measures") {
                    None => Vec::new(),
                    Some(m) => m
                        .as_arr()
                        .ok_or("bad array field \"measures\"")?
                        .iter()
                        .map(|col| {
                            col.as_arr()
                                .ok_or_else(|| "bad measure column".to_owned())?
                                .iter()
                                .map(|x| x.as_f64().ok_or_else(|| "bad measure value".to_owned()))
                                .collect()
                        })
                        .collect::<Result<Vec<Vec<f64>>, String>>()?,
                };
                Ok(Request::Append { rows, measures })
            }
            "ping" => Ok(Request::Ping),
            "table" => Ok(Request::TableInfo),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// One displayed rule on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleInfo {
    /// Node path from the root.
    pub path: Vec<usize>,
    /// The rule, rendered as the paper's tuple pattern, e.g.
    /// `(Walmart, ?, ?)`.
    pub rule: String,
    /// Displayed (possibly estimated) count.
    pub count: f64,
    /// Confidence-interval bounds (equal to `count` when exact).
    pub ci: (f64, f64),
    /// True once the count is exact.
    pub exact: bool,
    /// `W(rule)`.
    pub weight: f64,
}

impl RuleInfo {
    fn to_json(&self) -> Json {
        Json::obj([
            ("path", path_json(&self.path)),
            ("rule", Json::str(self.rule.clone())),
            ("count", Json::num(self.count)),
            (
                "ci",
                Json::Arr(vec![Json::num(self.ci.0), Json::num(self.ci.1)]),
            ),
            ("exact", Json::Bool(self.exact)),
            ("weight", Json::num(self.weight)),
        ])
    }

    fn from_json(v: &Json) -> Result<RuleInfo, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing number field {key:?}"))
        };
        let ci = v
            .get("ci")
            .and_then(Json::as_arr)
            .filter(|a| a.len() == 2)
            .ok_or("missing 2-element array field \"ci\"")?;
        Ok(RuleInfo {
            path: v
                .get("path")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"path\"")?
                .iter()
                .map(|e| e.as_usize().ok_or_else(|| "bad path element".to_owned()))
                .collect::<Result<_, _>>()?,
            rule: v
                .get("rule")
                .and_then(Json::as_str)
                .ok_or("missing string field \"rule\"")?
                .to_owned(),
            count: num("count")?,
            ci: (
                ci[0].as_f64().ok_or("bad ci bound")?,
                ci[1].as_f64().ok_or("bad ci bound")?,
            ),
            exact: v
                .get("exact")
                .and_then(Json::as_bool)
                .ok_or("missing bool field \"exact\"")?,
            weight: num("weight")?,
        })
    }
}

/// Session + sampling counters on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsInfo {
    /// Expansions performed.
    pub expansions: usize,
    /// Expansions served without a fresh blocking scan.
    pub served_from_memory: usize,
    /// Exact-count refresh passes.
    pub refreshes: usize,
    /// Find-mechanism hits.
    pub finds: usize,
    /// Combine-mechanism hits.
    pub combines: usize,
    /// Create-mechanism hits (each one blocked a request on a full scan).
    pub creates: usize,
    /// Full table passes (Create + prefetch scans).
    pub full_scans: usize,
    /// Sample evictions.
    pub evictions: usize,
    /// Stored samples right now.
    pub stored_samples: usize,
    /// Tuples held across stored samples.
    pub memory_used: usize,
}

impl StatsInfo {
    const FIELDS: [&'static str; 10] = [
        "expansions",
        "served_from_memory",
        "refreshes",
        "finds",
        "combines",
        "creates",
        "full_scans",
        "evictions",
        "stored_samples",
        "memory_used",
    ];

    fn values(&self) -> [usize; 10] {
        [
            self.expansions,
            self.served_from_memory,
            self.refreshes,
            self.finds,
            self.combines,
            self.creates,
            self.full_scans,
            self.evictions,
            self.stored_samples,
            self.memory_used,
        ]
    }

    fn to_json(self) -> Json {
        Json::Obj(
            Self::FIELDS
                .iter()
                .zip(self.values())
                .map(|(k, v)| ((*k).to_owned(), Json::num(v as f64)))
                .collect(),
        )
    }

    fn from_json(v: &Json) -> Result<StatsInfo, String> {
        let mut values = [0usize; 10];
        for (slot, key) in values.iter_mut().zip(Self::FIELDS) {
            *slot = v
                .get(key)
                .and_then(Json::as_usize)
                .ok_or(format!("missing integer field {key:?}"))?;
        }
        let [expansions, served_from_memory, refreshes, finds, combines, creates, full_scans, evictions, stored_samples, memory_used] =
            values;
        Ok(StatsInfo {
            expansions,
            served_from_memory,
            refreshes,
            finds,
            combines,
            creates,
            full_scans,
            evictions,
            stored_samples,
            memory_used,
        })
    }
}

/// One protocol response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `open` succeeded.
    Opened {
        /// The session name now registered.
        session: String,
    },
    /// `expand`/`star` succeeded: the new children.
    Expanded {
        /// New child rules, in display order.
        rules: Vec<RuleInfo>,
    },
    /// `collapse` succeeded.
    Collapsed,
    /// `rules`/`refresh` result: every visible rule in display order.
    RuleList {
        /// Visible rules (root first).
        rules: Vec<RuleInfo>,
    },
    /// `render` result.
    Rendered {
        /// The dotted-indent text table.
        text: String,
    },
    /// `stats` result.
    Stats {
        /// Counter snapshot.
        stats: StatsInfo,
    },
    /// `close` succeeded.
    Closed,
    /// `append` succeeded: the batch is sealed and visible.
    Appended {
        /// The table epoch after this append (= total appends so far).
        epoch: u64,
        /// Total visible rows after this append.
        rows: usize,
    },
    /// `ping` reply.
    Pong,
    /// `table` reply.
    TableInfo {
        /// Row count of the shared table.
        rows: usize,
        /// Column names in schema order.
        columns: Vec<String>,
    },
    /// Any failure; `message` comes from the underlying error's `Display`
    /// (`SessionError`, `TableError`, parse errors, registry errors).
    Error {
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// The `"op"` echo of this response.
    pub fn op(&self) -> &'static str {
        match self {
            Response::Opened { .. } => "open",
            Response::Expanded { .. } => "expand",
            Response::Collapsed => "collapse",
            Response::RuleList { .. } => "rules",
            Response::Rendered { .. } => "render",
            Response::Stats { .. } => "stats",
            Response::Closed => "close",
            Response::Appended { .. } => "append",
            Response::Pong => "pong",
            Response::TableInfo { .. } => "table",
            Response::Error { .. } => "error",
        }
    }

    /// Serializes to the wire object.
    pub fn to_json(&self) -> Json {
        let ok = !matches!(self, Response::Error { .. });
        let mut pairs: Vec<(String, Json)> = vec![
            ("ok".to_owned(), Json::Bool(ok)),
            ("op".to_owned(), Json::str(self.op())),
        ];
        let mut push = |k: &str, v: Json| pairs.push((k.to_owned(), v));
        match self {
            Response::Opened { session } => push("session", Json::str(session.clone())),
            Response::Expanded { rules } | Response::RuleList { rules } => push(
                "rules",
                Json::Arr(rules.iter().map(RuleInfo::to_json).collect()),
            ),
            Response::Rendered { text } => push("text", Json::str(text.clone())),
            Response::Stats { stats } => push("stats", stats.to_json()),
            Response::TableInfo { rows, columns } => {
                push("rows", Json::num(*rows as f64));
                push(
                    "columns",
                    Json::Arr(columns.iter().map(|c| Json::str(c.clone())).collect()),
                );
            }
            Response::Appended { epoch, rows } => {
                push("epoch", Json::num(*epoch as f64));
                push("rows", Json::num(*rows as f64));
            }
            Response::Error { message } => push("error", Json::str(message.clone())),
            Response::Collapsed | Response::Closed | Response::Pong => {}
        }
        Json::Obj(pairs)
    }

    /// Parses a wire object into a response.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field \"op\"")?;
        let rules = || -> Result<Vec<RuleInfo>, String> {
            v.get("rules")
                .and_then(Json::as_arr)
                .ok_or("missing array field \"rules\"")?
                .iter()
                .map(RuleInfo::from_json)
                .collect()
        };
        match op {
            "open" => Ok(Response::Opened {
                session: v
                    .get("session")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"session\"")?
                    .to_owned(),
            }),
            "expand" => Ok(Response::Expanded { rules: rules()? }),
            "collapse" => Ok(Response::Collapsed),
            "rules" => Ok(Response::RuleList { rules: rules()? }),
            "render" => Ok(Response::Rendered {
                text: v
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"text\"")?
                    .to_owned(),
            }),
            "stats" => Ok(Response::Stats {
                stats: StatsInfo::from_json(
                    v.get("stats").ok_or("missing object field \"stats\"")?,
                )?,
            }),
            "close" => Ok(Response::Closed),
            "append" => Ok(Response::Appended {
                epoch: v
                    .get("epoch")
                    .and_then(Json::as_usize)
                    .ok_or("missing integer field \"epoch\"")? as u64,
                rows: v
                    .get("rows")
                    .and_then(Json::as_usize)
                    .ok_or("missing integer field \"rows\"")?,
            }),
            "pong" => Ok(Response::Pong),
            "table" => Ok(Response::TableInfo {
                rows: v
                    .get("rows")
                    .and_then(Json::as_usize)
                    .ok_or("missing integer field \"rows\"")?,
                columns: v
                    .get("columns")
                    .and_then(Json::as_arr)
                    .ok_or("missing array field \"columns\"")?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| "bad column name".to_owned())
                    })
                    .collect::<Result<_, _>>()?,
            }),
            "error" => Ok(Response::Error {
                message: v
                    .get("error")
                    .and_then(Json::as_str)
                    .ok_or("missing string field \"error\"")?
                    .to_owned(),
            }),
            other => Err(format!("unknown response op {other:?}")),
        }
    }

    /// Builds the error response for any displayable failure.
    pub fn error(e: impl std::fmt::Display) -> Response {
        Response::Error {
            message: e.to_string(),
        }
    }
}

fn path_json(path: &[usize]) -> Json {
    Json::Arr(path.iter().map(|&i| Json::num(i as f64)).collect())
}

/// Parses one request line; serializing the result of [`handle`] back is
/// the complete wire behavior of a connection.
///
/// [`handle`]: crate::Engine::handle
pub fn parse_request_line(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("bad json: {e}"))?;
    Request::from_json(&v)
}
