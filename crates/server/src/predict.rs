//! Transition-frequency prediction for think-time prefetch.
//!
//! The deferred-prefetch worker already refreshes samples during analyst
//! think-time. This module lets it go one step further: a shared
//! [`TransitionModel`] counts, across *all* sessions of an engine, which
//! child rule analysts actually drill into after looking at a given parent
//! rule's expansion. When the same parent comes up again and one child
//! dominates the history — at least [`TransitionModel::MIN_OBSERVATIONS`]
//! observations, with the mode holding at least
//! [`TransitionModel::MIN_CONFIDENCE`] of them — the worker precomputes
//! that child's expansion into the shared result cache before the analyst
//! clicks.
//!
//! Prediction is *advisory only*: a right guess warms the cache, a wrong
//! guess wastes background cycles, and neither changes a single response
//! byte (the cache-transparency invariant; see docs/DETERMINISM.md).
//! Predictions are confidence-gated rather than always-on so cold or
//! uniform click histories don't trigger speculative searches that rarely
//! pay off. Ties break deterministically (highest count, then smallest
//! rule codes lexicographically) so the same history always predicts the
//! same child regardless of map iteration order.
//!
//! Panic-free (lint rule P001): lock poisoning is absorbed, never
//! unwrapped.

use rustc_hash::{FxHashMap, FxHasher};
use sdd_core::Rule;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Snapshot of the model's work counters (observability only; predictions
/// never influence response bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictCounters {
    /// Parent→child transitions observed.
    pub records: u64,
    /// Confident predictions issued to the prefetch worker.
    pub predictions: u64,
    /// Predictions the worker actually precomputed into the cache.
    pub speculations: u64,
}

type Transitions = FxHashMap<Rule, FxHashMap<Rule, u64>>;

/// Lock-striped parent→child drill-down frequency model. See module docs.
pub struct TransitionModel {
    stripes: Vec<Mutex<Transitions>>,
    records: AtomicU64,
    predictions: AtomicU64,
    speculations: AtomicU64,
}

impl TransitionModel {
    /// Minimum drill-downs observed from a parent before predicting.
    pub const MIN_OBSERVATIONS: u64 = 3;
    /// Minimum fraction of those drill-downs the predicted child must hold.
    pub const MIN_CONFIDENCE: f64 = 0.5;

    /// A model with `stripes.max(1)` stripes.
    pub fn new(stripes: usize) -> Self {
        Self {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(Transitions::default()))
                .collect(),
            records: AtomicU64::new(0),
            predictions: AtomicU64::new(0),
            speculations: AtomicU64::new(0),
        }
    }

    fn stripe(&self, parent: &Rule) -> &Mutex<Transitions> {
        let mut h = FxHasher::default();
        parent.hash(&mut h);
        &self.stripes[(h.finish() as usize) % self.stripes.len()]
    }

    fn lock(m: &Mutex<Transitions>) -> std::sync::MutexGuard<'_, Transitions> {
        // Poisoning only means a holder panicked; counts stay usable.
        m.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Observes one analyst drill-down from `parent` into `child`.
    pub fn record(&self, parent: &Rule, child: &Rule) {
        let mut map = Self::lock(self.stripe(parent));
        *map.entry(parent.clone())
            .or_default()
            .entry(child.clone())
            .or_insert(0) += 1;
        self.records.fetch_add(1, Ordering::Relaxed);
    }

    /// The confidently-predicted next drill-down from `parent`, if the
    /// history clears both gates. Deterministic for a given history.
    pub fn predict(&self, parent: &Rule) -> Option<Rule> {
        let map = Self::lock(self.stripe(parent));
        let children = map.get(parent)?;
        let total: u64 = children.values().sum();
        if total < Self::MIN_OBSERVATIONS {
            return None;
        }
        // Deterministic argmax: count descending, then rule codes
        // ascending — independent of hash-map iteration order.
        let best = children
            .iter()
            .max_by(|(ra, ca), (rb, cb)| ca.cmp(cb).then_with(|| rb.codes().cmp(ra.codes())))?;
        if (*best.1 as f64) < Self::MIN_CONFIDENCE * total as f64 {
            return None;
        }
        let predicted = best.0.clone();
        drop(map);
        self.predictions.fetch_add(1, Ordering::Relaxed);
        Some(predicted)
    }

    /// Marks one prediction as actually precomputed by the worker.
    pub fn note_speculation(&self) {
        self.speculations.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the work counters.
    pub fn counters(&self) -> PredictCounters {
        PredictCounters {
            records: self.records.load(Ordering::Relaxed),
            predictions: self.predictions.load(Ordering::Relaxed),
            speculations: self.speculations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(codes: &[u32]) -> Rule {
        Rule::from_codes(codes.to_vec())
    }

    #[test]
    fn cold_parent_predicts_nothing() {
        let m = TransitionModel::new(4);
        let p = rule(&[1, 0]);
        assert_eq!(m.predict(&p), None);
        m.record(&p, &rule(&[1, 2]));
        m.record(&p, &rule(&[1, 2]));
        // Two observations: still below MIN_OBSERVATIONS.
        assert_eq!(m.predict(&p), None);
    }

    #[test]
    fn dominant_child_is_predicted_once_warm() {
        let m = TransitionModel::new(4);
        let p = rule(&[1, 0]);
        let hot = rule(&[1, 2]);
        m.record(&p, &hot);
        m.record(&p, &hot);
        m.record(&p, &rule(&[1, 3]));
        // 2/3 ≥ 0.5 with 3 observations.
        assert_eq!(m.predict(&p), Some(hot));
        assert_eq!(m.counters().predictions, 1);
    }

    #[test]
    fn uniform_history_stays_below_the_confidence_gate() {
        let m = TransitionModel::new(4);
        let p = rule(&[9]);
        m.record(&p, &rule(&[1]));
        m.record(&p, &rule(&[2]));
        m.record(&p, &rule(&[3]));
        // Mode holds 1/3 < 0.5: no prediction.
        assert_eq!(m.predict(&p), None);
    }

    #[test]
    fn ties_break_to_the_smallest_rule_deterministically() {
        let p = rule(&[7, 7]);
        let a = rule(&[1, 9]);
        let b = rule(&[2, 0]);
        for _ in 0..16 {
            let m = TransitionModel::new(4);
            // Interleave insertion orders; prediction must not depend on
            // map iteration order.
            m.record(&p, &b);
            m.record(&p, &a);
            m.record(&p, &b);
            m.record(&p, &a);
            assert_eq!(m.predict(&p), Some(a.clone()));
        }
    }

    #[test]
    fn parents_are_independent() {
        let m = TransitionModel::new(1);
        let p1 = rule(&[1]);
        let p2 = rule(&[2]);
        let c = rule(&[3]);
        for _ in 0..4 {
            m.record(&p1, &c);
        }
        assert_eq!(m.predict(&p1), Some(c));
        assert_eq!(m.predict(&p2), None);
        assert_eq!(m.counters().records, 4);
    }
}
