//! Bearer-token authentication and per-tenant quotas for the HTTP
//! front-end.
//!
//! A token file (one entry per line) maps secrets to tenants:
//!
//! ```text
//! # token      tenant     [max_sessions]  [cache_mib]  [ingest]
//! s3cr3t-alpha alpha      64              16           ingest
//! s3cr3t-beta  beta
//! ```
//!
//! Fields are whitespace-separated; `#` starts a comment. Unset quotas
//! fall back to [`TenantQuota::default`]. Tenant ids are assigned in file
//! order starting at 1 — id 0 is always the **anonymous tenant**, used by
//! unauthenticated transports (the lab line-JSON TCP path, in-process
//! callers) and by every request when no token file is configured.
//!
//! Authentication is a pure lookup (token → tenant id); quota
//! *enforcement* lives where the resources live: session quotas in
//! [`crate::Engine::handle_line_as`], cache-byte quotas in
//! [`crate::SearchCache`]. Nothing here ever influences a response body —
//! auth gates *whether* the engine is asked, never what it answers.
//!
//! This file is panic-free outside tests (lint rule P001): the registry
//! is consulted on every request, and a panic here would take the
//! front-end down.

use crate::registry::{TenantId, ANONYMOUS_TENANT};
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resource limits for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Concurrently live sessions this tenant may hold.
    pub max_sessions: usize,
    /// Result-cache bytes this tenant's inserts may occupy.
    pub cache_bytes: u64,
    /// May this tenant append rows to a live table (`sdd serve --tail`)?
    /// Appends mutate shared state every session sees, so the capability
    /// is opt-in per token (the literal field `ingest` in the token file);
    /// the anonymous tenant of an open registry has it — no token file
    /// means no auth boundary to enforce.
    pub ingest: bool,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            max_sessions: 256,
            cache_bytes: 16 << 20,
            ingest: false,
        }
    }
}

/// One tenant: identity plus live-resource gauges.
#[derive(Debug)]
pub struct Tenant {
    /// Display name (from the token file; `"anonymous"` for id 0).
    pub name: String,
    /// Configured limits.
    pub quota: TenantQuota,
    /// Live session gauge, maintained by the engine on every open /
    /// close / reap / sweep.
    sessions: AtomicUsize,
}

impl Tenant {
    fn new(name: String, quota: TenantQuota) -> Self {
        Self {
            name,
            quota,
            sessions: AtomicUsize::new(0),
        }
    }

    /// Sessions currently alive for this tenant.
    pub fn live_sessions(&self) -> usize {
        self.sessions.load(Ordering::Relaxed)
    }

    /// Tries to claim one session slot; `false` when the quota is full.
    /// Compare-and-swap so racing opens cannot overshoot the quota.
    pub fn try_claim_session(&self) -> bool {
        let mut live = self.sessions.load(Ordering::Relaxed);
        loop {
            if live >= self.quota.max_sessions {
                return false;
            }
            match self.sessions.compare_exchange_weak(
                live,
                live + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => live = actual,
            }
        }
    }

    /// Releases one session slot (close, connection reap, idle sweep).
    /// Saturating: a spurious release cannot wrap the gauge.
    pub fn release_session(&self) {
        let mut live = self.sessions.load(Ordering::Relaxed);
        while live > 0 {
            match self.sessions.compare_exchange_weak(
                live,
                live - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => live = actual,
            }
        }
    }
}

/// The token → tenant directory. Built once at startup, read-only after.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: Vec<Tenant>,
    by_token: FxHashMap<String, TenantId>,
    /// True when a token file was configured: bearer auth is then
    /// required on the HTTP front-end.
    required: bool,
}

impl Default for TenantRegistry {
    fn default() -> Self {
        Self::open()
    }
}

impl TenantRegistry {
    /// An open registry: no tokens, every request runs as the anonymous
    /// tenant with an effectively unlimited quota (the engine-wide
    /// `max_sessions` cap still applies).
    pub fn open() -> Self {
        Self {
            tenants: vec![Tenant::new(
                "anonymous".to_owned(),
                TenantQuota {
                    max_sessions: usize::MAX,
                    cache_bytes: u64::MAX,
                    ingest: true,
                },
            )],
            by_token: FxHashMap::default(),
            required: false,
        }
    }

    /// Parses a token file's contents (see module docs for the format).
    /// Errors carry the offending line number.
    pub fn from_token_file(contents: &str) -> Result<Self, String> {
        let mut reg = Self::open();
        reg.required = true;
        for (lineno, raw) in contents.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let (Some(token), Some(name)) = (fields.next(), fields.next()) else {
                return Err(format!(
                    "token file line {}: expected `<token> <tenant> [max_sessions] [cache_mib] [ingest]`",
                    lineno + 1
                ));
            };
            let mut quota = TenantQuota::default();
            if let Some(ms) = fields.next() {
                quota.max_sessions = ms.parse().map_err(|_| {
                    format!("token file line {}: bad max_sessions {ms:?}", lineno + 1)
                })?;
            }
            if let Some(mib) = fields.next() {
                let mib: u64 = mib.parse().map_err(|_| {
                    format!("token file line {}: bad cache_mib {mib:?}", lineno + 1)
                })?;
                quota.cache_bytes = mib << 20;
            }
            match fields.next() {
                None => {}
                Some("ingest") => quota.ingest = true,
                Some(other) => {
                    return Err(format!(
                        "token file line {}: expected `ingest` or end of line, got {other:?}",
                        lineno + 1
                    ));
                }
            }
            if fields.next().is_some() {
                return Err(format!(
                    "token file line {}: trailing fields after ingest",
                    lineno + 1
                ));
            }
            if reg.by_token.contains_key(token) {
                return Err(format!("token file line {}: duplicate token", lineno + 1));
            }
            if reg.tenants.len() > TenantId::MAX as usize {
                return Err("token file: too many tenants".to_owned());
            }
            let id = reg.tenants.len() as TenantId;
            // Tenant *names* may repeat (token rotation: old + new token
            // both live); each line still gets its own id and quota.
            reg.tenants.push(Tenant::new(name.to_owned(), quota));
            reg.by_token.insert(token.to_owned(), id);
        }
        Ok(reg)
    }

    /// Reads and parses a token file from disk.
    pub fn load_token_file(path: &std::path::Path) -> Result<Self, String> {
        let contents = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read token file {path:?}: {e}"))?;
        Self::from_token_file(&contents)
    }

    /// True when bearer auth is required (a token file was configured).
    pub fn auth_required(&self) -> bool {
        self.required
    }

    /// Resolves a bearer token to a tenant id; `None` = unauthorized.
    pub fn authenticate(&self, token: &str) -> Option<TenantId> {
        self.by_token.get(token).copied()
    }

    /// The tenant for `id`; unknown ids clamp to the anonymous tenant
    /// (cannot occur in correct use, and this file must not panic).
    pub fn tenant(&self, id: TenantId) -> &Tenant {
        self.tenants
            .get(id as usize)
            .unwrap_or(&self.tenants[ANONYMOUS_TENANT as usize])
    }

    /// All tenants, indexed by id (0 = anonymous).
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The cache-byte quota table, indexed by tenant id — the shape
    /// [`crate::SearchCache::with_tenants`] takes. The anonymous tenant's
    /// (unlimited) entry is clamped to `whole_budget`.
    pub fn cache_quotas(&self, whole_budget: u64) -> Vec<u64> {
        self.tenants
            .iter()
            .map(|t| t.quota.cache_bytes.min(whole_budget))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "\
# comment line
tok-alpha alpha 2 1
tok-beta  beta          # defaults
tok-beta2 beta 8 4      # second token for the same tenant name
";

    #[test]
    fn parses_tokens_quotas_and_comments() {
        let reg = TenantRegistry::from_token_file(FILE).unwrap();
        assert!(reg.auth_required());
        assert_eq!(reg.tenants().len(), 4); // anonymous + 3 lines
        let alpha = reg.authenticate("tok-alpha").unwrap();
        assert_eq!(reg.tenant(alpha).name, "alpha");
        assert_eq!(reg.tenant(alpha).quota.max_sessions, 2);
        assert_eq!(reg.tenant(alpha).quota.cache_bytes, 1 << 20);
        let beta = reg.authenticate("tok-beta").unwrap();
        assert_eq!(reg.tenant(beta).quota, TenantQuota::default());
        assert!(reg.authenticate("nope").is_none());
        assert!(reg.authenticate("").is_none());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(TenantRegistry::from_token_file("only-token").is_err());
        assert!(TenantRegistry::from_token_file("t a bad-number").is_err());
        assert!(TenantRegistry::from_token_file("t a 1 bad-number").is_err());
        assert!(TenantRegistry::from_token_file("t a 1 2 extra").is_err());
        assert!(TenantRegistry::from_token_file("t a 1 2 ingest extra").is_err());
        assert!(TenantRegistry::from_token_file("dup a\ndup b").is_err());
    }

    #[test]
    fn ingest_capability_is_opt_in_per_token() {
        let reg =
            TenantRegistry::from_token_file("tok-w writer 4 2 ingest\ntok-r reader 4 2").unwrap();
        let writer = reg.authenticate("tok-w").unwrap();
        let reader = reg.authenticate("tok-r").unwrap();
        assert!(reg.tenant(writer).quota.ingest);
        assert!(!reg.tenant(reader).quota.ingest);
        // With no token file there is no auth boundary: anonymous may ingest.
        assert!(TenantRegistry::open().tenant(ANONYMOUS_TENANT).quota.ingest);
        // With a token file, the anonymous tenant (unauthenticated TCP
        // path) keeps the open-registry quota — auth gating of appends is
        // the HTTP front-end's job; see the engine's tail config.
    }

    #[test]
    fn open_registry_needs_no_auth() {
        let reg = TenantRegistry::open();
        assert!(!reg.auth_required());
        assert_eq!(reg.tenant(ANONYMOUS_TENANT).name, "anonymous");
        assert_eq!(reg.tenant(ANONYMOUS_TENANT).quota.max_sessions, usize::MAX);
        // Unknown ids clamp to anonymous instead of panicking.
        assert_eq!(reg.tenant(999).name, "anonymous");
    }

    #[test]
    fn session_claims_stop_at_the_quota_under_contention() {
        let reg = std::sync::Arc::new(TenantRegistry::from_token_file("tok alpha 10 1").unwrap());
        let id = reg.authenticate("tok").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    (0..5)
                        .filter(|_| reg.tenant(id).try_claim_session())
                        .count()
                })
            })
            .collect();
        let claimed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(claimed, 10, "exactly the quota must be claimable");
        assert_eq!(reg.tenant(id).live_sessions(), 10);
        assert!(!reg.tenant(id).try_claim_session());
        reg.tenant(id).release_session();
        assert!(reg.tenant(id).try_claim_session());
        // Saturating release: draining far past zero never wraps.
        for _ in 0..100 {
            reg.tenant(id).release_session();
        }
        assert_eq!(reg.tenant(id).live_sessions(), 0);
    }

    #[test]
    fn cache_quota_table_clamps_to_the_budget() {
        let reg = TenantRegistry::from_token_file("tok alpha 2 64").unwrap();
        let quotas = reg.cache_quotas(8 << 20);
        assert_eq!(quotas[0], 8 << 20); // anonymous clamped to the budget
        assert_eq!(quotas[1], 8 << 20); // 64 MiB request clamped too
        let small = TenantRegistry::from_token_file("tok alpha 2 1").unwrap();
        assert_eq!(small.cache_quotas(8 << 20)[1], 1 << 20);
    }
}
