//! Observability: request-latency histograms, work counters, and the
//! Prometheus text rendering behind `GET /metrics`.
//!
//! One [`Metrics`] instance is shared by every front-end of a server
//! (HTTP and line-JSON TCP record into the same histograms, labeled by
//! transport). Everything here is atomics — recording a latency is two
//! `fetch_add`s — and **nothing here can influence a response byte**:
//! metrics observe the serve path, they are not part of it (the parity
//! suites keep that honest, since they diff transcripts while these
//! counters tick underneath).
//!
//! Exported families (all prefixed `sdd_`):
//!
//! | metric | type | labels |
//! |---|---|---|
//! | `sdd_request_latency_seconds` | histogram | `transport` |
//! | `sdd_requests_total` | counter | `transport`, `outcome` |
//! | `sdd_requests_shed_total` | counter | — |
//! | `sdd_auth_failures_total` | counter | — |
//! | `sdd_http_connections` | gauge | — |
//! | `sdd_tcp_connections` | gauge | — |
//! | `sdd_queue_depth` | gauge | — |
//! | `sdd_sessions` | gauge | — |
//! | `sdd_sessions_swept_total` | counter | — |
//! | `sdd_tenant_sessions` | gauge | `tenant` |
//! | `sdd_tenant_cache_bytes` | gauge | `tenant` |
//! | `sdd_cache_{hits,misses,inserts,evictions}_total`, `sdd_cache_bytes` | counter/gauge | — |
//! | `sdd_storage_{loads,evictions,spills}_total`, `sdd_storage_peak_resident` | counter/gauge | — |
//! | `sdd_live_epoch`, `sdd_live_rows` | gauge | — (live tables only) |
//!
//! This file is panic-free outside tests (lint rule P001): a scrape or a
//! latency record must never be able to take the server down.

use crate::engine::Engine;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in seconds. Spans 100 µs → ~13 s in
/// powers of two — interactive drill-downs sit in the middle decades, and
/// the paper's §5 latency axis is exactly what these resolve.
pub const LATENCY_BUCKETS_S: [f64; 18] = [
    0.0001, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064, 0.0128, 0.0256, 0.0512, 0.1024, 0.2048,
    0.4096, 0.8192, 1.6384, 3.2768, 6.5536, 13.1072,
];

/// A fixed-bucket latency histogram (Prometheus `histogram` semantics:
/// cumulative buckets plus `_sum` and `_count`).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    /// Per-bucket (non-cumulative) counts; rendered cumulatively.
    buckets: [AtomicU64; LATENCY_BUCKETS_S.len()],
    /// Observations above the last bound (the `+Inf` bucket's own share).
    overflow: AtomicU64,
    /// Total observed time in nanoseconds (u64 holds ~584 years).
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one request latency.
    pub fn observe(&self, latency: Duration) {
        let s = latency.as_secs_f64();
        match LATENCY_BUCKETS_S.iter().position(|&b| s <= b) {
            Some(i) => &self.buckets[i],
            None => &self.overflow,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.sum_ns
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in seconds (`NaN` with no observations) — `_sum` over
    /// `_count`, exactly as a dashboard would compute it from `/metrics`.
    pub fn mean_seconds(&self) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return f64::NAN;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9 / count as f64
    }

    /// Cumulative bucket counts aligned with [`LATENCY_BUCKETS_S`], plus
    /// the total (the `+Inf` entry) — the exact numbers `/metrics`
    /// exports, which is also what the serve bench derives percentiles
    /// from, so the bench and the dashboard can never disagree.
    pub fn cumulative(&self) -> ([u64; LATENCY_BUCKETS_S.len()], u64) {
        let mut cumulative = [0u64; LATENCY_BUCKETS_S.len()];
        let mut running = 0u64;
        for (slot, bucket) in cumulative.iter_mut().zip(&self.buckets) {
            running += bucket.load(Ordering::Relaxed);
            *slot = running;
        }
        (cumulative, running + self.overflow.load(Ordering::Relaxed))
    }

    /// Upper-bound estimate of the `p` (0..=1) percentile in seconds,
    /// from bucket counts alone: the smallest bucket bound covering `p`
    /// of observations (`+Inf` maps to the largest finite bound). This is
    /// the histogram-resolution percentile a Prometheus `histogram_quantile`
    /// would compute, so bench numbers match dashboard numbers.
    pub fn percentile(&self, p: f64) -> f64 {
        let (cumulative, total) = self.cumulative();
        if total == 0 {
            return f64::NAN;
        }
        let rank = (p.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        for (i, &c) in cumulative.iter().enumerate() {
            if c >= rank {
                return LATENCY_BUCKETS_S[i];
            }
        }
        LATENCY_BUCKETS_S[LATENCY_BUCKETS_S.len() - 1]
    }

    fn render(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write;
        let (cumulative, total) = self.cumulative();
        for (i, &bound) in LATENCY_BUCKETS_S.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}le=\"{bound}\"}} {}",
                cumulative[i]
            );
        }
        let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {total}");
        let sum_s = self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let _ = writeln!(
            out,
            "{name}_sum{{{labels_t}}} {sum_s}",
            labels_t = labels.trim_end_matches(',')
        );
        let _ = writeln!(
            out,
            "{name}_count{{{labels_t}}} {total}",
            labels_t = labels.trim_end_matches(',')
        );
    }
}

/// Which front-end served a request (a label on the shared histogram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// The HTTP/1.1 front-end.
    Http,
    /// The line-JSON TCP lab protocol.
    Tcp,
}

/// The server-wide metrics hub. See module docs.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Request latency, per transport.
    pub http_latency: LatencyHistogram,
    /// Request latency over the line-JSON TCP path.
    pub tcp_latency: LatencyHistogram,
    /// Requests answered `ok:true` / `ok:false`, per transport.
    http_ok: AtomicU64,
    http_err: AtomicU64,
    tcp_ok: AtomicU64,
    tcp_err: AtomicU64,
    /// Requests shed by admission control (429/503).
    pub shed: AtomicU64,
    /// Rejected / missing bearer tokens.
    pub auth_failures: AtomicU64,
    /// Live HTTP connections.
    pub http_connections: AtomicU64,
    /// Live line-JSON TCP connections.
    pub tcp_connections: AtomicU64,
    /// Sessions reaped by the idle sweep since start.
    pub sessions_swept: AtomicU64,
}

impl Metrics {
    /// Records one answered request: latency plus the ok/error outcome
    /// (`ok` = the engine's `"ok"` field, i.e. not a `Response::Error`).
    pub fn record(&self, transport: Transport, latency: Duration, ok: bool) {
        let (hist, counter) = match (transport, ok) {
            (Transport::Http, true) => (&self.http_latency, &self.http_ok),
            (Transport::Http, false) => (&self.http_latency, &self.http_err),
            (Transport::Tcp, true) => (&self.tcp_latency, &self.tcp_ok),
            (Transport::Tcp, false) => (&self.tcp_latency, &self.tcp_err),
        };
        hist.observe(latency);
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the full Prometheus text exposition (format 0.0.4) for
    /// this hub plus the engine's own gauges (sessions, cache, storage,
    /// tenants) and the live `queue_depth`.
    pub fn render(&self, engine: &Engine, queue_depth: usize) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);

        let _ = writeln!(
            out,
            "# HELP sdd_request_latency_seconds Request latency by transport.\n\
             # TYPE sdd_request_latency_seconds histogram"
        );
        self.http_latency.render(
            &mut out,
            "sdd_request_latency_seconds",
            "transport=\"http\",",
        );
        self.tcp_latency.render(
            &mut out,
            "sdd_request_latency_seconds",
            "transport=\"tcp\",",
        );

        let _ = writeln!(
            out,
            "# HELP sdd_requests_total Requests answered, by transport and outcome.\n\
             # TYPE sdd_requests_total counter"
        );
        for (labels, v) in [
            ("transport=\"http\",outcome=\"ok\"", &self.http_ok),
            ("transport=\"http\",outcome=\"error\"", &self.http_err),
            ("transport=\"tcp\",outcome=\"ok\"", &self.tcp_ok),
            ("transport=\"tcp\",outcome=\"error\"", &self.tcp_err),
        ] {
            let _ = writeln!(
                out,
                "sdd_requests_total{{{labels}}} {}",
                v.load(Ordering::Relaxed)
            );
        }

        for (name, help, kind, value) in [
            (
                "sdd_requests_shed_total",
                "Requests shed by admission control.",
                "counter",
                self.shed.load(Ordering::Relaxed),
            ),
            (
                "sdd_auth_failures_total",
                "Requests with a missing or invalid bearer token.",
                "counter",
                self.auth_failures.load(Ordering::Relaxed),
            ),
            (
                "sdd_http_connections",
                "Live HTTP connections.",
                "gauge",
                self.http_connections.load(Ordering::Relaxed),
            ),
            (
                "sdd_tcp_connections",
                "Live line-JSON TCP connections.",
                "gauge",
                self.tcp_connections.load(Ordering::Relaxed),
            ),
            (
                "sdd_queue_depth",
                "Connections queued for a pool worker.",
                "gauge",
                queue_depth as u64,
            ),
            (
                "sdd_sessions",
                "Live sessions across all tenants.",
                "gauge",
                engine.n_sessions() as u64,
            ),
            (
                "sdd_sessions_swept_total",
                "Sessions reaped by the idle sweep.",
                "counter",
                self.sessions_swept.load(Ordering::Relaxed),
            ),
        ] {
            let _ = writeln!(
                out,
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}"
            );
        }

        if let Some(c) = engine.cache_counters() {
            for (name, help, kind, value) in [
                (
                    "sdd_cache_hits_total",
                    "Result-cache hits.",
                    "counter",
                    c.hits,
                ),
                (
                    "sdd_cache_misses_total",
                    "Result-cache misses.",
                    "counter",
                    c.misses,
                ),
                (
                    "sdd_cache_inserts_total",
                    "Result-cache inserts.",
                    "counter",
                    c.inserts,
                ),
                (
                    "sdd_cache_evictions_total",
                    "Result-cache evictions.",
                    "counter",
                    c.evictions,
                ),
                (
                    "sdd_cache_bytes",
                    "Result-cache resident bytes.",
                    "gauge",
                    c.bytes,
                ),
            ] {
                let _ = writeln!(
                    out,
                    "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}"
                );
            }
        }

        if let Some((loads, evictions, spills, peak)) = engine.storage_counters() {
            for (name, help, kind, value) in [
                (
                    "sdd_storage_loads_total",
                    "Shard segment loads.",
                    "counter",
                    loads,
                ),
                (
                    "sdd_storage_evictions_total",
                    "Shard evictions.",
                    "counter",
                    evictions,
                ),
                (
                    "sdd_storage_spills_total",
                    "Shard spill writes.",
                    "counter",
                    spills,
                ),
                (
                    "sdd_storage_peak_resident",
                    "Peak resident shards.",
                    "gauge",
                    peak as u64,
                ),
            ] {
                let _ = writeln!(
                    out,
                    "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}"
                );
            }
        }

        if let Some((epoch, rows)) = engine.live_info() {
            // Latest *published* state, not any session's pin: the gap
            // between this gauge and a session's pinned epoch is exactly
            // the staleness the replay bench measures.
            for (name, help, value) in [
                (
                    "sdd_live_epoch",
                    "Latest published epoch of the live table (= appends accepted).",
                    epoch,
                ),
                (
                    "sdd_live_rows",
                    "Rows visible at the latest published epoch.",
                    rows as u64,
                ),
            ] {
                let _ = writeln!(
                    out,
                    "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}"
                );
            }
        }

        let tenants = engine.tenants();
        let _ = writeln!(
            out,
            "# HELP sdd_tenant_sessions Live sessions per tenant.\n\
             # TYPE sdd_tenant_sessions gauge"
        );
        for t in tenants.tenants() {
            let _ = writeln!(
                out,
                "sdd_tenant_sessions{{tenant=\"{}\"}} {}",
                t.name,
                t.live_sessions()
            );
        }
        let _ = writeln!(
            out,
            "# HELP sdd_tenant_cache_bytes Result-cache bytes charged per tenant.\n\
             # TYPE sdd_tenant_cache_bytes gauge"
        );
        for (id, t) in tenants.tenants().iter().enumerate() {
            let _ = writeln!(
                out,
                "sdd_tenant_cache_bytes{{tenant=\"{}\"}} {}",
                t.name,
                engine.tenant_cache_bytes(id as crate::registry::TenantId)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_percentiles_resolve() {
        let h = LatencyHistogram::default();
        assert!(h.percentile(0.5).is_nan());
        // 8 fast (≤ 0.0001), 1 medium (~0.01), 1 slow overflow (> 13.1 s).
        for _ in 0..8 {
            h.observe(Duration::from_micros(50));
        }
        h.observe(Duration::from_millis(10));
        h.observe(Duration::from_secs(20));
        let (cumulative, total) = h.cumulative();
        assert_eq!(total, 10);
        assert_eq!(cumulative[0], 8);
        assert_eq!(*cumulative.last().unwrap(), 9); // overflow excluded
        assert_eq!(h.percentile(0.5), 0.0001);
        // p90 lands on the 10th-percentile-wide medium bucket.
        assert_eq!(h.percentile(0.9), 0.0128);
        // p100 covers the overflow observation → clamps to the last bound.
        assert_eq!(h.percentile(1.0), LATENCY_BUCKETS_S[17]);
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn render_produces_prometheus_text() {
        use crate::{Engine, EngineConfig};
        use std::sync::Arc;
        let engine = Engine::new(Arc::new(sdd_datagen::retail(42)), EngineConfig::default());
        let m = Metrics::default();
        m.record(Transport::Http, Duration::from_micros(300), true);
        m.record(Transport::Tcp, Duration::from_micros(900), false);
        m.shed.fetch_add(3, Ordering::Relaxed);
        let text = m.render(&engine, 7);
        for needle in [
            "# TYPE sdd_request_latency_seconds histogram",
            "sdd_request_latency_seconds_bucket{transport=\"http\",le=\"+Inf\"} 1",
            "sdd_request_latency_seconds_count{transport=\"tcp\"} 1",
            "sdd_requests_total{transport=\"http\",outcome=\"ok\"} 1",
            "sdd_requests_total{transport=\"tcp\",outcome=\"error\"} 1",
            "sdd_requests_shed_total 3",
            "sdd_queue_depth 7",
            "sdd_sessions 0",
            "sdd_tenant_sessions{tenant=\"anonymous\"} 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The cache families track the engine's cache, absent under
        // SDD_NO_CACHE=1 (CI runs this suite both ways).
        if engine.cache_counters().is_some() {
            for needle in [
                "sdd_cache_hits_total 0",
                "sdd_tenant_cache_bytes{tenant=\"anonymous\"} 0",
            ] {
                assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
            }
        } else {
            assert!(!text.contains("sdd_cache_hits_total"), "{text}");
        }
        // Monolithic store: no storage family, no live gauges.
        assert!(!text.contains("sdd_storage_loads_total"), "{text}");
        assert!(!text.contains("sdd_live_epoch"), "{text}");
    }

    #[test]
    fn render_exports_live_gauges_for_an_appendable_store() {
        use crate::{Engine, EngineConfig};
        use sdd_table::{LiveTable, LiveTableConfig, Schema, TableStore};
        use std::sync::Arc;
        let schema = Schema::new(["Store", "Product"]).unwrap();
        let live =
            Arc::new(LiveTable::new(schema, vec![], &LiveTableConfig::in_memory(8)).unwrap());
        live.try_append(&[vec!["s0".to_owned(), "p0".to_owned()]], &[])
            .unwrap();
        let engine = Engine::with_store(TableStore::from(live), EngineConfig::default());
        let text = Metrics::default().render(&engine, 0);
        assert!(text.contains("sdd_live_epoch 1"), "{text}");
        assert!(text.contains("sdd_live_rows 1"), "{text}");
        // A live table is segmented storage: the storage family renders.
        assert!(text.contains("sdd_storage_spills_total"), "{text}");
    }
}
