//! # sdd-server
//!
//! A concurrent, multi-session smart drill-down server: many independent
//! analyst sessions over one shared table, served over a line-delimited
//! JSON protocol on TCP (see `PROTOCOL.md`), with §4.3 sample prefetch
//! running on a background worker so scans overlap analyst think-time.
//!
//! Built std-only (no tokio/serde — the build environment has no registry
//! access): `std::net::TcpListener`, a [`sdd_core::exec::TaskPool`] of
//! connection workers, a hand-rolled deterministic [`json`] module, and an
//! owned/`Arc`-backed session stack ([`sdd_explorer::Explorer`] over
//! `Arc<Table>`).
//!
//! ## Determinism contract
//!
//! For any fixed per-session request sequence, the response byte stream is
//! identical no matter how many clients run concurrently, how large the
//! worker pool is, or whether the background prefetch worker wins or loses
//! its race with the next request. The layers that make this true:
//!
//! * sessions share nothing but the immutable table ([`Engine`]);
//! * per-session operations serialize on the session's own lock
//!   ([`registry::Registry`] hands out `Arc<Mutex<Explorer>>`);
//! * deferred prefetch jobs always run between the expansion that created
//!   them and the next operation on that session
//!   ([`sdd_explorer::PrefetchMode::Deferred`]);
//! * sample draws are seeded per `(seed, rule)` and all kernel scans are
//!   bit-identical across thread counts (PR 1/2 groundwork);
//! * JSON objects serialize in construction order ([`json::Json`]).
//!
//! The workspace-level `tests/server_stress.rs` harness pins the whole
//! stack: N concurrent TCP clients replayed single-threaded through a
//! fresh [`Engine`] must produce byte-identical transcripts.

#![warn(missing_docs)]

pub mod auth;
pub mod cache;
pub mod engine;
pub mod http;
pub mod json;
pub mod metrics;
pub mod predict;
pub mod protocol;
pub mod registry;
pub mod server;

pub use auth::{Tenant, TenantQuota, TenantRegistry};
pub use cache::{cache_enabled, CacheCounters, EvictionMode, SearchCache, TenantCacheView};
pub use engine::{Engine, EngineConfig, TailConfig};
pub use http::{HttpClient, HttpReply};
pub use json::Json;
pub use metrics::{LatencyHistogram, Metrics, Transport};
pub use predict::{PredictCounters, TransitionModel};
pub use protocol::{OpenOptions, Request, Response, RuleInfo, StatsInfo};
pub use registry::{Registry, RegistryError, TenantId, ANONYMOUS_TENANT};
pub use server::{Client, Server, ServerConfig, ServerHandle};
