//! The TCP front-end: `std::net::TcpListener` + a [`TaskPool`] of
//! connection workers + one background prefetch worker.
//!
//! Each accepted connection is handed to the pool and served for its whole
//! lifetime (line in → [`Engine::handle_line`] → line out). After any
//! response that leaves a deferred prefetch job pending, the connection
//! pings the prefetch worker over an mpsc channel; the worker claims and
//! runs the job under the session lock during the client's think-time. If
//! the next request for that session wins the race instead, it drains the
//! job itself first — either way the observable results equal inline
//! execution (the determinism harness asserts exactly this).

use crate::engine::{Engine, EngineConfig};
use crate::protocol::{Request, Response};
use sdd_core::exec::TaskPool;
use sdd_table::{Table, TableStore};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// Server front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine (session) defaults.
    pub engine: EngineConfig,
    /// Connection-worker threads. Each concurrent client occupies one for
    /// the lifetime of its connection, so size this at or above the
    /// expected concurrent-client count.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    threads: usize,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and builds the
    /// engine over a monolithic `table`.
    pub fn bind(
        table: Arc<Table>,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Server> {
        Self::bind_store(TableStore::Whole(table), config, addr)
    }

    /// [`Server::bind`] over any [`TableStore`] — the entry point for
    /// serving a sharded table whose segments spill to disk (`sdd serve
    /// --shards N --resident M`), so the served dataset can exceed RAM.
    pub fn bind_store(
        store: TableStore,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine: Arc::new(Engine::with_store(store, config.engine)),
            threads: config.threads,
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared engine (for in-process inspection in tests/benches).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Runs the accept loop on the calling thread until [`ServerHandle`]
    /// shutdown (never returns when run without a handle, barring I/O
    /// errors on the listener).
    pub fn run(self) -> std::io::Result<()> {
        self.run_until(Arc::new(AtomicBool::new(false)))
    }

    fn run_until(self, stop: Arc<AtomicBool>) -> std::io::Result<()> {
        let pool = TaskPool::new(self.threads);
        // The prefetch worker: claims deferred jobs during think-time.
        let (prefetch_tx, prefetch_rx) = mpsc::channel::<String>();
        let prefetch_engine = Arc::clone(&self.engine);
        let prefetch_worker = std::thread::spawn(move || {
            while let Ok(session) = prefetch_rx.recv() {
                prefetch_engine.run_pending_prefetch(&session);
            }
        });
        // Clones of live connections so shutdown can unblock workers
        // parked in `read_line`, keyed by connection id so each worker can
        // drop its own entry when the client disconnects (otherwise a
        // long-lived server would leak one fd per past connection).
        let conns: Arc<std::sync::Mutex<Vec<(u64, TcpStream)>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut next_conn_id: u64 = 0;

        for stream in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // One small response per request line: Nagle + delayed ACK
            // would add ~40 ms to every exchange.
            stream.set_nodelay(true).ok();
            let conn_id = next_conn_id;
            next_conn_id += 1;
            if let Ok(clone) = stream.try_clone() {
                conns.lock().expect("conns poisoned").push((conn_id, clone));
            }
            let engine = Arc::clone(&self.engine);
            let prefetch_tx = prefetch_tx.clone();
            let conns_for_worker = Arc::clone(&conns);
            pool.submit(move || {
                let _ = serve_connection(&engine, stream, &prefetch_tx);
                conns_for_worker
                    .lock()
                    .expect("conns poisoned")
                    .retain(|(id, _)| *id != conn_id);
            });
        }
        // Force-close every still-live connection so pool workers blocked
        // on reads can exit, then join them.
        for (_, c) in conns.lock().expect("conns poisoned").drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        drop(pool); // join connection workers
        drop(prefetch_tx); // close the channel …
        let _ = prefetch_worker.join(); // … and join the worker
        Ok(())
    }

    /// Starts the accept loop on a background thread and returns a handle
    /// that can stop it.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let engine = Arc::clone(&self.engine);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_loop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let _ = self.run_until(stop_for_loop);
        });
        Ok(ServerHandle {
            addr,
            engine,
            stop,
            thread: Some(thread),
        })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops the accept loop and joins the server thread. Connections that
    /// are mid-request finish their current line first.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = t.join();
        }
    }
}

/// Caps a request line at 1 MiB — a malicious client must not balloon
/// server memory one byte at a time.
const MAX_LINE_BYTES: u64 = 1 << 20;

fn serve_connection(
    engine: &Engine,
    stream: TcpStream,
    prefetch_tx: &mpsc::Sender<String>,
) -> std::io::Result<()> {
    // Sessions are connection-scoped (PROTOCOL.md): whatever this client
    // opened and did not close must be reaped when the connection ends —
    // graceful EOF and abrupt drop alike — or a crashy client leaks
    // registry entries and their sample memory until the server restarts.
    let mut opened: Vec<String> = Vec::new();
    let result = serve_lines(engine, stream, prefetch_tx, &mut opened);
    for session in &opened {
        engine.close_session(session);
    }
    result
}

fn serve_lines(
    engine: &Engine,
    stream: TcpStream,
    prefetch_tx: &mpsc::Sender<String>,
    opened: &mut Vec<String>,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let n = (&mut reader).take(MAX_LINE_BYTES).read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // client closed
        }
        if n as u64 == MAX_LINE_BYTES && !line.ends_with('\n') {
            // Over-long request line: discard the rest of it so the
            // request/response streams stay in sync (handling the cut-off
            // fragments as requests would answer one request twice), then
            // answer the one oversized request with one error.
            loop {
                line.clear();
                let m = (&mut reader).take(MAX_LINE_BYTES).read_line(&mut line)?;
                if m == 0 || line.ends_with('\n') {
                    break;
                }
            }
            let response = Response::error(format!("request line exceeds {MAX_LINE_BYTES} bytes"))
                .to_json()
                .to_string();
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (response, prefetch_hint) = engine.handle_line_tracked(trimmed, opened);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if let Some(session) = prefetch_hint {
            // Best effort: if the worker is gone (shutdown), the next
            // request drains the job instead.
            let _ = prefetch_tx.send(session);
        }
    }
}

/// A minimal blocking client for the line protocol — used by the CLI
/// `connect` mode, the serve bench, and the stress harness.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line and returns the raw response line
    /// (both without trailing newline).
    pub fn call_line(&mut self, line: &str) -> std::io::Result<String> {
        debug_assert!(!line.contains('\n'), "one request per line");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Sends a typed request and parses the typed response.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        let line = self.call_line(&req.to_json().to_string())?;
        let v = crate::json::Json::parse(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Response::from_json(&v).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}
