//! The TCP front-end: `std::net::TcpListener` + a [`TaskPool`] of
//! connection workers + one background prefetch worker.
//!
//! Each accepted connection is handed to the pool and served for its whole
//! lifetime (line in → [`Engine::handle_line`] → line out). After any
//! response that leaves a deferred prefetch job pending, the connection
//! pings the prefetch worker over an mpsc channel; the worker claims and
//! runs the job under the session lock during the client's think-time. If
//! the next request for that session wins the race instead, it drains the
//! job itself first — either way the observable results equal inline
//! execution (the determinism harness asserts exactly this).

use crate::engine::{Engine, EngineConfig};
use crate::http::{self, LineRead};
use crate::metrics::{Metrics, Transport};
use crate::protocol::{Request, Response};
use sdd_core::exec::TaskPool;
use sdd_table::{Table, TableStore};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Server front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine (session) defaults.
    pub engine: EngineConfig,
    /// Connection-worker threads. Each concurrent client occupies one for
    /// the lifetime of its connection, so size this at or above the
    /// expected concurrent-client count.
    pub threads: usize,
    /// Socket read timeout applied to every connection (TCP and HTTP). A
    /// client silent past it is disconnected (and its connection-scoped
    /// sessions reaped), so a stalled or half-open client cannot pin a
    /// pool worker forever. `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// When set, also binds the HTTP front-end ([`crate::http`]) here.
    pub http_addr: Option<String>,
    /// Admission control: while more than this many accepted connections
    /// are queued for a pool worker, new HTTP connections are shed with
    /// `429` + `Retry-After` instead of queueing behind them.
    pub max_queue: usize,
    /// `Retry-After` seconds on shed (`429`) and draining (`503`) answers.
    pub retry_after_s: u32,
    /// Background sweep: evict sessions idle beyond this TTL — the
    /// lifecycle for HTTP sessions, which are not connection-scoped.
    /// `None` disables the sweep.
    pub session_ttl: Option<Duration>,
    /// Idle-sweep cadence.
    pub sweep_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4),
            read_timeout: None,
            http_addr: None,
            max_queue: 1024,
            retry_after_s: 1,
            session_ttl: None,
            sweep_interval: Duration::from_millis(1000),
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    engine: Arc<Engine>,
    metrics: Arc<Metrics>,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and builds the
    /// engine over a monolithic `table`.
    pub fn bind(
        table: Arc<Table>,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Server> {
        Self::bind_store(TableStore::Whole(table), config, addr)
    }

    /// [`Server::bind`] over any [`TableStore`] — the entry point for
    /// serving a sharded table whose segments spill to disk (`sdd serve
    /// --shards N --resident M`), so the served dataset can exceed RAM.
    pub fn bind_store(
        store: TableStore,
        config: ServerConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let http_listener = match config.http_addr.as_deref() {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        Ok(Server {
            listener,
            http_listener,
            engine: Arc::new(Engine::with_store(store, config.engine.clone())),
            metrics: Arc::new(Metrics::default()),
            config,
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The HTTP front-end's bound address, when one was configured.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The shared engine (for in-process inspection in tests/benches).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The shared metrics hub.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Runs the accept loop on the calling thread until [`ServerHandle`]
    /// shutdown (never returns when run without a handle, barring I/O
    /// errors on the listener).
    pub fn run(self) -> std::io::Result<()> {
        self.run_until(Arc::new(AtomicBool::new(false)))
    }

    fn run_until(self, stop: Arc<AtomicBool>) -> std::io::Result<()> {
        let pool = Arc::new(TaskPool::new(self.config.threads));
        let queue_gauge = pool.pending_gauge();
        // The prefetch worker: claims deferred jobs during think-time.
        let (prefetch_tx, prefetch_rx) = mpsc::channel::<String>();
        let prefetch_engine = Arc::clone(&self.engine);
        let prefetch_worker = std::thread::spawn(move || {
            while let Ok(session) = prefetch_rx.recv() {
                prefetch_engine.run_pending_prefetch(&session);
            }
        });
        // The idle sweep: reaps sessions untouched past the TTL. Short
        // poll ticks (not one long sleep) keep shutdown prompt.
        let sweeper = self.config.session_ttl.map(|ttl| {
            let engine = Arc::clone(&self.engine);
            let metrics = Arc::clone(&self.metrics);
            let stop = Arc::clone(&stop);
            let interval = self.config.sweep_interval;
            std::thread::spawn(move || {
                let mut last = Instant::now();
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(10));
                    if last.elapsed() >= interval {
                        let swept = engine.evict_idle_sessions(ttl);
                        if swept > 0 {
                            metrics
                                .sessions_swept
                                .fetch_add(swept as u64, Ordering::Relaxed);
                        }
                        last = Instant::now();
                    }
                }
            })
        });
        // Clones of live connections so shutdown can unblock workers
        // parked in `read_line`, keyed by connection id so each worker can
        // drop its own entry when the client disconnects (otherwise a
        // long-lived server would leak one fd per past connection).
        let conns: Arc<std::sync::Mutex<Vec<(u64, TcpStream)>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let next_conn_id = Arc::new(AtomicU64::new(0));

        // The HTTP accept loop, when configured: admission control on the
        // accept thread (shedding must not depend on a free pool worker),
        // everything else on the shared pool.
        let http_addr = self.http_addr();
        let http_thread = self.http_listener.map(|listener| {
            let engine = Arc::clone(&self.engine);
            let metrics = Arc::clone(&self.metrics);
            let pool = Arc::clone(&pool);
            let queue_gauge = Arc::clone(&queue_gauge);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let next_conn_id = Arc::clone(&next_conn_id);
            let prefetch_tx = prefetch_tx.clone();
            let read_timeout = self.config.read_timeout;
            let max_queue = self.config.max_queue;
            let retry_after_s = self.config.retry_after_s;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    stream.set_nodelay(true).ok();
                    if pool.pending() > max_queue {
                        metrics.shed.fetch_add(1, Ordering::Relaxed);
                        let _ = http::write_overload(
                            &mut stream,
                            429,
                            "Too Many Requests",
                            retry_after_s,
                        );
                        continue; // drop closes the shed connection
                    }
                    stream.set_read_timeout(read_timeout).ok();
                    let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        conns.lock().expect("conns poisoned").push((conn_id, clone));
                    }
                    metrics.http_connections.fetch_add(1, Ordering::Relaxed);
                    let engine = Arc::clone(&engine);
                    let metrics = Arc::clone(&metrics);
                    let queue_gauge = Arc::clone(&queue_gauge);
                    let stop = Arc::clone(&stop);
                    let prefetch_tx = prefetch_tx.clone();
                    let conns_for_worker = Arc::clone(&conns);
                    pool.submit(move || {
                        let _ = http::serve_http_connection(
                            &engine,
                            &metrics,
                            &queue_gauge,
                            &stop,
                            stream,
                            &prefetch_tx,
                            retry_after_s,
                        );
                        metrics.http_connections.fetch_sub(1, Ordering::Relaxed);
                        conns_for_worker
                            .lock()
                            .expect("conns poisoned")
                            .retain(|(id, _)| *id != conn_id);
                    });
                }
            })
        });

        for stream in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // One small response per request line: Nagle + delayed ACK
            // would add ~40 ms to every exchange.
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(self.config.read_timeout).ok();
            let conn_id = next_conn_id.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                conns.lock().expect("conns poisoned").push((conn_id, clone));
            }
            self.metrics.tcp_connections.fetch_add(1, Ordering::Relaxed);
            let engine = Arc::clone(&self.engine);
            let metrics = Arc::clone(&self.metrics);
            let prefetch_tx = prefetch_tx.clone();
            let conns_for_worker = Arc::clone(&conns);
            pool.submit(move || {
                let _ = serve_connection(&engine, &metrics, stream, &prefetch_tx);
                metrics.tcp_connections.fetch_sub(1, Ordering::Relaxed);
                conns_for_worker
                    .lock()
                    .expect("conns poisoned")
                    .retain(|(id, _)| *id != conn_id);
            });
        }
        // Unblock and join the HTTP accept loop first, so nothing submits
        // to the pool while it shuts down.
        if let Some(t) = http_thread {
            if let Some(addr) = http_addr {
                let _ = TcpStream::connect(addr);
            }
            let _ = t.join();
        }
        // Force-close every still-live connection so pool workers blocked
        // on reads can exit, then join them.
        for (_, c) in conns.lock().expect("conns poisoned").drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        drop(pool); // last handle: joins connection workers
        drop(prefetch_tx); // close the channel …
        let _ = prefetch_worker.join(); // … and join the worker
        if let Some(t) = sweeper {
            let _ = t.join();
        }
        Ok(())
    }

    /// Starts the accept loop on a background thread and returns a handle
    /// that can stop it.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let http_addr = self.http_addr();
        let engine = Arc::clone(&self.engine);
        let metrics = Arc::clone(&self.metrics);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_loop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let _ = self.run_until(stop_for_loop);
        });
        Ok(ServerHandle {
            addr,
            http_addr,
            engine,
            metrics,
            stop,
            thread: Some(thread),
        })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    http_addr: Option<std::net::SocketAddr>,
    engine: Arc<Engine>,
    metrics: Arc<Metrics>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The HTTP front-end's address, when one was configured.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_addr
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The shared metrics hub.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    fn unblock_accept_loops(&self) {
        // Unblock the accept calls so both loops observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(addr) = self.http_addr {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Stops the accept loop and joins the server thread. Connections that
    /// are mid-request finish their current line first.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.unblock_accept_loops();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(t) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            self.unblock_accept_loops();
            let _ = t.join();
        }
    }
}

/// Caps a request line at 1 MiB — a malicious client must not balloon
/// server memory one byte at a time.
const MAX_LINE_BYTES: usize = 1 << 20;

fn serve_connection(
    engine: &Engine,
    metrics: &Metrics,
    stream: TcpStream,
    prefetch_tx: &mpsc::Sender<String>,
) -> std::io::Result<()> {
    // Sessions are connection-scoped (PROTOCOL.md): whatever this client
    // opened and did not close must be reaped when the connection ends —
    // graceful EOF, abrupt drop, oversized-line refusal, and read-timeout
    // disconnect alike — or a crashy client leaks registry entries and
    // their sample memory until the server restarts.
    let mut opened: Vec<String> = Vec::new();
    let result = serve_lines(engine, metrics, stream, prefetch_tx, &mut opened);
    for session in &opened {
        engine.close_session(session);
    }
    result
}

fn serve_lines(
    engine: &Engine,
    metrics: &Metrics,
    stream: TcpStream,
    prefetch_tx: &mpsc::Sender<String>,
    opened: &mut Vec<String>,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        let mut last = false;
        match http::read_line_bounded(&mut reader, &mut line, MAX_LINE_BYTES)? {
            LineRead::Line => {}
            // A final unterminated line before EOF is still one request.
            LineRead::Eof if !line.is_empty() => last = true,
            LineRead::Eof => return Ok(()), // client closed
            // The configured read timeout fired: a stalled or half-open
            // client. Close (reaping its sessions) and free the worker.
            LineRead::TimedOut => return Ok(()),
            LineRead::Overflow => {
                // Over-long request line: one error, then close. (Keeping
                // the connection alive would mean discarding an
                // attacker-sized rest-of-line just to stay in sync — the
                // old behavior, which let a hostile client stream garbage
                // through the discard loop forever.)
                let response =
                    Response::error(format!("request line exceeds {MAX_LINE_BYTES} bytes"))
                        .to_json()
                        .to_string();
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                // Bounded drain so closing with unread bytes queued does
                // not reset the refusal away before the client reads it.
                http::drain_briefly(&mut reader);
                return Ok(());
            }
        }
        // The protocol is JSON, hence UTF-8; anything else cannot parse.
        let Ok(text) = std::str::from_utf8(&line) else {
            let response = Response::error("request line is not UTF-8")
                .to_json()
                .to_string();
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            http::drain_briefly(&mut reader);
            return Ok(());
        };
        let trimmed = text.trim();
        if trimmed.is_empty() {
            if last {
                return Ok(());
            }
            continue;
        }
        let started = Instant::now();
        let (response, prefetch_hint) = engine.handle_line_tracked(trimmed, opened);
        metrics.record(
            Transport::Tcp,
            started.elapsed(),
            response.starts_with("{\"ok\":true"),
        );
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if let Some(session) = prefetch_hint {
            // Best effort: if the worker is gone (shutdown), the next
            // request drains the job instead.
            let _ = prefetch_tx.send(session);
        }
        if last {
            return Ok(());
        }
    }
}

/// A minimal blocking client for the line protocol — used by the CLI
/// `connect` mode, the serve bench, and the stress harness.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line and returns the raw response line
    /// (both without trailing newline).
    pub fn call_line(&mut self, line: &str) -> std::io::Result<String> {
        debug_assert!(!line.contains('\n'), "one request per line");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Sends a typed request and parses the typed response.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        let line = self.call_line(&req.to_json().to_string())?;
        let v = crate::json::Json::parse(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Response::from_json(&v).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}
