//! The HTTP/1.1 front-end: bearer auth, admission control, and `/metrics`
//! over the same [`Engine`] the line-JSON TCP path drives.
//!
//! Hand-rolled over `std::net` (the build environment has no registry
//! access, so no hyper/axum): request-line + header parsing with hard
//! caps, `Content-Length` bodies only (no chunked encoding), HTTP/1.1
//! keep-alive.
//!
//! ## Routes
//!
//! | route | auth | behavior |
//! |---|---|---|
//! | `POST /v1/line` | bearer | body = one protocol request object; response body = the **exact** engine response line (transcript-transparent) |
//! | `GET /metrics` | bearer | Prometheus text exposition 0.0.4 |
//! | `GET /healthz` | none | `200 ok` liveness probe |
//!
//! ## Transcript transparency
//!
//! The `/v1/line` response body is byte-for-byte the line the TCP path
//! would have written (including the trailing newline). HTTP status codes
//! mirror the `"ok"` field (`200`/`400`) without touching the body, so a
//! transcript collected over HTTP equals a transcript collected over TCP —
//! `tests/http_parity.rs` pins this. Auth (`401`), admission control
//! (`429`/`503`), and parse errors answer *before* the engine runs: they
//! gate whether a request reaches the engine, never what it answers.
//!
//! Unlike the TCP path, HTTP sessions are **not** connection-scoped — a
//! session must survive across keep-alive connections from the same
//! client. Their lifecycle is the idle sweep: `open` without `close`
//! lives until it has been untouched for the server's session TTL.
//!
//! This file is panic-free outside tests (lint rule P001): it parses
//! attacker-controlled bytes on every request.

use crate::engine::Engine;
use crate::metrics::{Metrics, Transport};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Cap on one head line (request line or one header line), bytes.
pub const MAX_HEAD_LINE: usize = 8 << 10;
/// Cap on the number of header lines per request.
pub const MAX_HEADERS: usize = 64;
/// Cap on a request body — same bound as the TCP path's request line, so
/// no transport accepts a request the other would refuse for size.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One bounded line read. `buf` accumulates across [`LineRead::TimedOut`]
/// returns, so a slow-but-live client never loses partial data to a
/// timeout tick (std's `read_line` truncates on error; this keeps it).
pub(crate) enum LineRead {
    /// `buf` now ends with `\n`.
    Line,
    /// Clean close (no terminator arriving; `buf` may hold a fragment).
    Eof,
    /// The socket read timeout fired before the terminator.
    TimedOut,
    /// The line exceeded `max` bytes; the connection should be closed.
    Overflow,
}

/// Appends one `\n`-terminated line to `buf`, never exceeding `max`
/// bytes, surfacing read timeouts instead of failing.
pub(crate) fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    use std::io::ErrorKind;
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Ok(LineRead::TimedOut)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(LineRead::Eof);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if buf.len() + i + 1 > max {
                    reader.consume(i + 1);
                    return Ok(LineRead::Overflow);
                }
                buf.extend_from_slice(&available[..=i]);
                reader.consume(i + 1);
                return Ok(LineRead::Line);
            }
            None => {
                let n = available.len();
                if buf.len() + n > max {
                    reader.consume(n);
                    return Ok(LineRead::Overflow);
                }
                buf.extend_from_slice(available);
                reader.consume(n);
            }
        }
    }
}

/// Consumes and discards whatever the client already sent, bounded in
/// bytes and time, before a terminal close. Closing a socket with unread
/// data in its receive queue makes the kernel reset the connection,
/// destroying the queued error response the client deserves to read.
pub(crate) fn drain_briefly(reader: &mut BufReader<TcpStream>) {
    use std::io::ErrorKind;
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(std::time::Duration::from_millis(100)));
    let mut drained: usize = 0;
    while drained < (4 << 20) {
        match reader.fill_buf() {
            Ok([]) => break,
            Ok(b) => {
                let n = b.len();
                drained += n;
                reader.consume(n);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// A parsed request head (request line + headers; body not yet read).
pub(crate) struct RequestHead {
    pub method: String,
    pub target: String,
    headers: Vec<(String, String)>,
}

impl RequestHead {
    /// The first value of `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The parsed `Content-Length`, if present and numeric.
    pub fn content_length(&self) -> Option<usize> {
        self.header("content-length")?.trim().parse().ok()
    }

    /// True when the client asked to drop keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The bearer token from `Authorization`, if the scheme matches.
    pub fn bearer_token(&self) -> Option<&str> {
        let auth = self.header("authorization")?.trim();
        let (scheme, token) = auth.split_once(' ')?;
        if scheme.eq_ignore_ascii_case("bearer") {
            Some(token.trim())
        } else {
            None
        }
    }
}

/// Outcome of reading one request head off a keep-alive connection.
pub(crate) enum HeadRead {
    Head(RequestHead),
    /// Clean close between requests.
    Eof,
    /// Read timeout — the idle/stalled-client guard; close.
    TimedOut,
    /// Malformed head → `400` and close.
    Bad(&'static str),
    /// Request line or a header over [`MAX_HEAD_LINE`] → `431` and close.
    TooLarge,
}

fn trim_crlf(buf: &[u8]) -> &[u8] {
    let mut end = buf.len();
    while end > 0 && (buf[end - 1] == b'\n' || buf[end - 1] == b'\r') {
        end -= 1;
    }
    &buf[..end]
}

/// Reads and parses one request head.
pub(crate) fn read_head(reader: &mut BufReader<TcpStream>) -> std::io::Result<HeadRead> {
    let mut line = Vec::with_capacity(256);
    match read_line_bounded(reader, &mut line, MAX_HEAD_LINE)? {
        LineRead::Line => {}
        LineRead::Eof => return Ok(HeadRead::Eof),
        LineRead::TimedOut => return Ok(HeadRead::TimedOut),
        LineRead::Overflow => return Ok(HeadRead::TooLarge),
    }
    let Ok(request_line) = std::str::from_utf8(trim_crlf(&line)) else {
        return Ok(HeadRead::Bad("request line is not UTF-8"));
    };
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(HeadRead::Bad("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(HeadRead::Bad("unsupported HTTP version"));
    }
    let mut head = RequestHead {
        method: method.to_owned(),
        target: target.to_owned(),
        headers: Vec::new(),
    };
    loop {
        let mut hline = Vec::with_capacity(128);
        match read_line_bounded(reader, &mut hline, MAX_HEAD_LINE)? {
            LineRead::Line => {}
            // Mid-head EOF is a malformed request, not a clean close.
            LineRead::Eof => return Ok(HeadRead::Bad("connection closed mid-head")),
            LineRead::TimedOut => return Ok(HeadRead::TimedOut),
            LineRead::Overflow => return Ok(HeadRead::TooLarge),
        }
        let raw = trim_crlf(&hline);
        if raw.is_empty() {
            return Ok(HeadRead::Head(head)); // blank line ends the head
        }
        if head.headers.len() >= MAX_HEADERS {
            return Ok(HeadRead::TooLarge);
        }
        let Ok(text) = std::str::from_utf8(raw) else {
            return Ok(HeadRead::Bad("header line is not UTF-8"));
        };
        let Some((name, value)) = text.split_once(':') else {
            return Ok(HeadRead::Bad("header line without a colon"));
        };
        head.headers
            .push((name.trim().to_owned(), value.trim().to_owned()));
    }
}

/// Writes one response with `Content-Length` framing.
fn write_response(
    w: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut head = String::with_capacity(160);
    let _ = write!(head, "HTTP/1.1 {status} {reason}\r\n");
    let _ = write!(head, "Content-Type: {content_type}\r\n");
    let _ = write!(head, "Content-Length: {}\r\n", body.len());
    for (k, v) in extra_headers {
        let _ = write!(head, "{k}: {v}\r\n");
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Writes an admission-control shed response (`429`/`503` + `Retry-After`)
/// **without reading the request** — called from the accept loop, which
/// must never block on a client's bytes. Clients that already sent their
/// request simply find this answer waiting.
pub(crate) fn write_overload(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    retry_after_s: u32,
) -> std::io::Result<()> {
    write_response(
        stream,
        status,
        reason,
        "application/json",
        &[("Retry-After", retry_after_s.to_string())],
        format!(
            "{{\"ok\":false,\"error\":{:?}}}\n",
            reason.to_ascii_lowercase()
        )
        .as_bytes(),
        true,
    )
}

/// `"ok"` serializes first on every response, so raw bytes reveal the
/// outcome without re-parsing (and without ever altering the body).
fn response_is_ok(line: &str) -> bool {
    line.starts_with("{\"ok\":true")
}

/// Serves one HTTP connection for its lifetime (keep-alive loop). The
/// caller has already applied admission control and the socket read
/// timeout; sessions opened here are *not* reaped at connection end — the
/// idle sweep owns their lifecycle (see module docs).
pub(crate) fn serve_http_connection(
    engine: &Arc<Engine>,
    metrics: &Arc<Metrics>,
    queue_depth: &AtomicUsize,
    stopping: &AtomicBool,
    stream: TcpStream,
    prefetch_tx: &mpsc::Sender<String>,
    retry_after_s: u32,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let head = match read_head(&mut reader)? {
            HeadRead::Head(h) => h,
            HeadRead::Eof | HeadRead::TimedOut => return Ok(()),
            HeadRead::Bad(why) => {
                let r = write_response(
                    &mut writer,
                    400,
                    "Bad Request",
                    "application/json",
                    &[],
                    format!("{{\"ok\":false,\"error\":{why:?}}}\n").as_bytes(),
                    true,
                );
                drain_briefly(&mut reader);
                return r;
            }
            HeadRead::TooLarge => {
                let r = write_response(
                    &mut writer,
                    431,
                    "Request Header Fields Too Large",
                    "application/json",
                    &[],
                    b"{\"ok\":false,\"error\":\"request head too large\"}\n",
                    true,
                );
                drain_briefly(&mut reader);
                return r;
            }
        };
        // Draining: finish nothing new once shutdown has begun.
        if stopping.load(Ordering::SeqCst) {
            let r = write_overload(&mut writer, 503, "Service Unavailable", retry_after_s);
            drain_briefly(&mut reader);
            return r;
        }
        let close = head.wants_close();
        match (head.method.as_str(), head.target.as_str()) {
            ("GET", "/healthz") => {
                write_response(&mut writer, 200, "OK", "text/plain", &[], b"ok\n", close)?;
            }
            ("POST", "/v1/line") => {
                // Body before auth: a 401 must still consume the request
                // body, or the keep-alive stream desynchronizes (the body
                // would parse as the next request's head).
                let body = match read_body(&mut reader, &head) {
                    Ok(Ok(b)) => b,
                    Ok(Err((status, reason, msg))) => {
                        // Without the body consumed, the stream is out of
                        // sync — always close after a body-level refusal.
                        let r = write_response(
                            &mut writer,
                            status,
                            reason,
                            "application/json",
                            &[],
                            format!("{{\"ok\":false,\"error\":{msg:?}}}\n").as_bytes(),
                            true,
                        );
                        drain_briefly(&mut reader);
                        return r;
                    }
                    Err(e) => return Err(e),
                };
                let tenant = match authenticate(engine, metrics, &head) {
                    Ok(t) => t,
                    Err(()) => {
                        write_unauthorized(&mut writer, close)?;
                        if close {
                            return Ok(());
                        }
                        continue;
                    }
                };
                let Ok(text) = std::str::from_utf8(&body) else {
                    return write_response(
                        &mut writer,
                        400,
                        "Bad Request",
                        "application/json",
                        &[],
                        b"{\"ok\":false,\"error\":\"body is not UTF-8\"}\n",
                        true,
                    );
                };
                let started = Instant::now();
                let (response, prefetch_hint) = engine.handle_line_as(text.trim(), None, tenant);
                let ok = response_is_ok(&response);
                metrics.record(Transport::Http, started.elapsed(), ok);
                let (status, reason) = if ok {
                    (200, "OK")
                } else {
                    (400, "Bad Request")
                };
                // Transcript transparency: the body is the exact line the
                // TCP path would write, trailing newline included.
                let mut body = response.into_bytes();
                body.push(b'\n');
                write_response(
                    &mut writer,
                    status,
                    reason,
                    "application/json",
                    &[],
                    &body,
                    close,
                )?;
                if let Some(session) = prefetch_hint {
                    let _ = prefetch_tx.send(session);
                }
            }
            ("GET", "/metrics") => {
                if authenticate(engine, metrics, &head).is_err() {
                    write_unauthorized(&mut writer, close)?;
                    if close {
                        return Ok(());
                    }
                    continue;
                }
                let text = metrics.render(engine, queue_depth.load(Ordering::Relaxed));
                write_response(
                    &mut writer,
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    &[],
                    text.as_bytes(),
                    close,
                )?;
            }
            ("GET" | "POST", _) => {
                write_response(
                    &mut writer,
                    404,
                    "Not Found",
                    "application/json",
                    &[],
                    b"{\"ok\":false,\"error\":\"no such route\"}\n",
                    close,
                )?;
            }
            _ => {
                write_response(
                    &mut writer,
                    405,
                    "Method Not Allowed",
                    "application/json",
                    &[("Allow", "GET, POST".to_owned())],
                    b"{\"ok\":false,\"error\":\"method not allowed\"}\n",
                    close,
                )?;
            }
        }
        if close {
            return Ok(());
        }
    }
}

/// Resolves the request's tenant: the anonymous tenant when no token file
/// is configured, otherwise a valid bearer token or `Err` (= `401`).
fn authenticate(
    engine: &Engine,
    metrics: &Metrics,
    head: &RequestHead,
) -> Result<crate::registry::TenantId, ()> {
    let tenants = engine.tenants();
    if !tenants.auth_required() {
        return Ok(crate::registry::ANONYMOUS_TENANT);
    }
    match head.bearer_token().and_then(|t| tenants.authenticate(t)) {
        Some(id) => Ok(id),
        None => {
            metrics.auth_failures.fetch_add(1, Ordering::Relaxed);
            Err(())
        }
    }
}

fn write_unauthorized(writer: &mut TcpStream, close: bool) -> std::io::Result<()> {
    write_response(
        writer,
        401,
        "Unauthorized",
        "application/json",
        &[("WWW-Authenticate", "Bearer".to_owned())],
        b"{\"ok\":false,\"error\":\"missing or invalid bearer token\"}\n",
        close,
    )
}

/// Reads the request body per `Content-Length`. The inner `Err` carries a
/// ready-to-send refusal `(status, reason, message)`.
#[allow(clippy::type_complexity)]
fn read_body(
    reader: &mut BufReader<TcpStream>,
    head: &RequestHead,
) -> std::io::Result<Result<Vec<u8>, (u16, &'static str, &'static str)>> {
    if head
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(Err((
            501,
            "Not Implemented",
            "chunked transfer encoding is not supported",
        )));
    }
    let Some(len) = head.content_length() else {
        return Ok(Err((411, "Length Required", "Content-Length is required")));
    };
    if len > MAX_BODY_BYTES {
        return Ok(Err((
            413,
            "Content Too Large",
            "body exceeds the 1 MiB request cap",
        )));
    }
    let mut body = vec![0u8; len];
    match reader.read_exact(&mut body) {
        Ok(()) => Ok(Ok(body)),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
                || e.kind() == std::io::ErrorKind::UnexpectedEof =>
        {
            Ok(Err((
                400,
                "Bad Request",
                "body shorter than Content-Length",
            )))
        }
        Err(e) => Err(e),
    }
}

/// A minimal blocking HTTP/1.1 client for the front-end — used by the
/// parity/e2e suites, the serve bench, and CI smoke checks. Keep-alive:
/// one connection serves many [`HttpClient::request`] calls.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One parsed HTTP response.
pub struct HttpReply {
    /// Status code (`200`, `429`, …).
    pub status: u16,
    /// Response headers, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The first value of `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

impl HttpClient {
    /// Connects to a server's HTTP address.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(HttpClient {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads the full response. `token` becomes an
    /// `Authorization: Bearer` header; `body` implies `Content-Length`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        token: Option<&str>,
        body: Option<&str>,
    ) -> std::io::Result<HttpReply> {
        use std::fmt::Write as _;
        let mut head = String::with_capacity(160);
        let _ = write!(head, "{method} {path} HTTP/1.1\r\nHost: sdd\r\n");
        if let Some(t) = token {
            let _ = write!(head, "Authorization: Bearer {t}\r\n");
        }
        let _ = write!(head, "Content-Length: {}\r\n\r\n", body.map_or(0, str::len));
        self.writer.write_all(head.as_bytes())?;
        if let Some(b) = body {
            self.writer.write_all(b.as_bytes())?;
        }
        self.writer.flush()?;
        self.read_reply()
    }

    /// Convenience: `POST /v1/line` with one protocol request line,
    /// returning `(status, response line)` — the response line is exactly
    /// what a TCP [`crate::Client::call_line`] would have returned.
    pub fn call_line(&mut self, token: Option<&str>, line: &str) -> std::io::Result<(u16, String)> {
        let reply = self.request("POST", "/v1/line", token, Some(line))?;
        let mut text = reply.body_str().into_owned();
        while text.ends_with('\n') || text.ends_with('\r') {
            text.pop();
        }
        Ok((reply.status, text))
    }

    fn read_reply(&mut self) -> std::io::Result<HttpReply> {
        let bad = |why: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, why.to_owned());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut headers = Vec::new();
        loop {
            let mut hline = String::new();
            if self.reader.read_line(&mut hline)? == 0 {
                return Err(bad("connection closed mid-head"));
            }
            let trimmed = hline.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((k, v)) = trimmed.split_once(':') {
                headers.push((k.trim().to_owned(), v.trim().to_owned()));
            }
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("response without Content-Length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(HttpReply {
            status,
            headers,
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bearer_tokens_parse_case_insensitively() {
        let head = RequestHead {
            method: "GET".into(),
            target: "/".into(),
            headers: vec![("authorization".into(), "BEARER  tok-1 ".into())],
        };
        assert_eq!(head.bearer_token(), Some("tok-1"));
        let basic = RequestHead {
            method: "GET".into(),
            target: "/".into(),
            headers: vec![("Authorization".into(), "Basic dXNlcg==".into())],
        };
        assert_eq!(basic.bearer_token(), None);
    }

    #[test]
    fn head_helpers_are_case_insensitive() {
        let head = RequestHead {
            method: "POST".into(),
            target: "/v1/line".into(),
            headers: vec![
                ("Content-Length".into(), "42".into()),
                ("CONNECTION".into(), "Close".into()),
            ],
        };
        assert_eq!(head.content_length(), Some(42));
        assert!(head.wants_close());
        assert_eq!(head.header("content-length"), Some("42"));
    }

    #[test]
    fn ok_discriminator_reads_the_first_field() {
        assert!(response_is_ok("{\"ok\":true,\"op\":\"open\"}"));
        assert!(!response_is_ok(
            "{\"ok\":false,\"op\":\"open\",\"error\":\"x\"}"
        ));
        assert!(!response_is_ok("garbage"));
    }

    #[test]
    fn trim_crlf_strips_all_terminators() {
        assert_eq!(trim_crlf(b"abc\r\n"), b"abc");
        assert_eq!(trim_crlf(b"abc\n"), b"abc");
        assert_eq!(trim_crlf(b"abc"), b"abc");
        assert_eq!(trim_crlf(b"\r\n"), b"");
    }
}
