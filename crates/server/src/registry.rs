//! A lock-striped session registry.
//!
//! Sessions are keyed by client-chosen names. The map is split into `N`
//! stripes, each behind its own mutex, so concurrent requests for sessions
//! on different stripes never contend on registry locks; the values are
//! `Arc<Mutex<T>>` so per-session work holds only its own session lock,
//! never a stripe lock.
//!
//! Striping affects contention only — never results: every lookup for a key
//! lands on one fixed stripe, and per-session ordering is enforced by the
//! session's own mutex.

use rustc_hash::FxHashMap;
use std::sync::{Arc, Mutex};

/// The lock-striped map. See module docs.
pub struct Registry<T> {
    stripes: Vec<Mutex<FxHashMap<String, Arc<Mutex<T>>>>>,
}

impl<T> Registry<T> {
    /// Creates a registry with `stripes.max(1)` stripes.
    pub fn new(stripes: usize) -> Self {
        Self {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    fn stripe(&self, key: &str) -> &Mutex<FxHashMap<String, Arc<Mutex<T>>>> {
        // FxHash of the key bytes; stable within a process, which is all
        // stripe selection needs.
        use std::hash::{BuildHasher, Hasher};
        let mut h = rustc_hash::FxBuildHasher::default().build_hasher();
        h.write(key.as_bytes());
        let idx = (h.finish() as usize) % self.stripes.len();
        &self.stripes[idx]
    }

    /// Inserts a new session. Errors if the key is already registered.
    pub fn insert(&self, key: &str, value: T) -> Result<(), RegistryError> {
        let mut map = self.stripe(key).lock().expect("stripe poisoned");
        if map.contains_key(key) {
            return Err(RegistryError::Exists(key.to_owned()));
        }
        map.insert(key.to_owned(), Arc::new(Mutex::new(value)));
        Ok(())
    }

    /// The session handle for `key`, if registered. The stripe lock is
    /// released before returning; callers lock the session itself.
    pub fn get(&self, key: &str) -> Option<Arc<Mutex<T>>> {
        self.stripe(key)
            .lock()
            .expect("stripe poisoned")
            .get(key)
            .cloned()
    }

    /// Removes and returns the session handle for `key`.
    pub fn remove(&self, key: &str) -> Option<Arc<Mutex<T>>> {
        self.stripe(key)
            .lock()
            .expect("stripe poisoned")
            .remove(key)
    }

    /// Number of registered sessions (sums stripe sizes; a snapshot, not a
    /// linearizable count).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").len())
            .sum()
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Registry failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The session name is already taken.
    Exists(String),
    /// The session name is not registered.
    NotFound(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Exists(k) => write!(f, "session {k:?} already exists"),
            RegistryError::NotFound(k) => write!(f, "no session named {k:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_cycle() {
        let r: Registry<u32> = Registry::new(8);
        assert!(r.is_empty());
        r.insert("a", 1).unwrap();
        r.insert("b", 2).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(*r.get("a").unwrap().lock().unwrap(), 1);
        assert!(r.get("missing").is_none());
        assert_eq!(r.insert("a", 9), Err(RegistryError::Exists("a".to_owned())));
        let removed = r.remove("a").unwrap();
        assert_eq!(*removed.lock().unwrap(), 1);
        assert!(r.get("a").is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn concurrent_inserts_land_exactly_once() {
        let r: Arc<Registry<usize>> = Arc::new(Registry::new(4));
        let handles: Vec<_> = (0..8)
            .map(|tid| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut wins = 0;
                    for i in 0..100 {
                        if r.insert(&format!("s{i}"), tid).is_ok() {
                            wins += 1;
                        }
                    }
                    wins
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "every key must be won by exactly one thread");
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn single_stripe_still_works() {
        let r: Registry<&'static str> = Registry::new(0); // clamped to 1
        r.insert("x", "v").unwrap();
        assert_eq!(*r.get("x").unwrap().lock().unwrap(), "v");
    }
}
