//! A lock-striped session registry with idle tracking and tenant tags.
//!
//! Sessions are keyed by client-chosen names. The map is split into `N`
//! stripes, each behind its own mutex, so concurrent requests for sessions
//! on different stripes never contend on registry locks; the values are
//! `Arc<Mutex<T>>` so per-session work holds only its own session lock,
//! never a stripe lock.
//!
//! Striping affects contention only — never results: every lookup for a key
//! lands on one fixed stripe, and per-session ordering is enforced by the
//! session's own mutex.
//!
//! Each entry additionally carries:
//!
//! * a **touch stamp** (milliseconds since the registry was created),
//!   refreshed by every [`Registry::get`], which the server's background
//!   sweep uses to evict sessions idle beyond a TTL — the lifecycle story
//!   for HTTP clients, whose sessions are not connection-scoped;
//! * a **tenant tag** (from the auth layer), so every removal path — an
//!   explicit `close`, connection-scoped reaping, the idle sweep — can
//!   release the owning tenant's session quota.
//!
//! Neither field ever influences a response byte: stamps and tags gate
//! *when* a session dies, not what it answers while alive.

use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The tenant tag attached to each session (index into the auth layer's
/// tenant table; `0` is the anonymous tenant).
pub type TenantId = u16;

/// The anonymous tenant: unauthenticated transports (the lab line-JSON
/// TCP path, in-process callers) and servers running without a token file.
pub const ANONYMOUS_TENANT: TenantId = 0;

struct Entry<T> {
    value: Arc<Mutex<T>>,
    /// Milliseconds since registry creation at the last touch.
    touched: AtomicU64,
    tenant: TenantId,
}

/// The lock-striped map. See module docs.
pub struct Registry<T> {
    stripes: Vec<Mutex<FxHashMap<String, Entry<T>>>>,
    epoch: Instant,
}

impl<T> Registry<T> {
    /// Creates a registry with `stripes.max(1)` stripes.
    pub fn new(stripes: usize) -> Self {
        Self {
            stripes: (0..stripes.max(1))
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            epoch: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn stripe(&self, key: &str) -> &Mutex<FxHashMap<String, Entry<T>>> {
        // FxHash of the key bytes; stable within a process, which is all
        // stripe selection needs.
        use std::hash::{BuildHasher, Hasher};
        let mut h = rustc_hash::FxBuildHasher::default().build_hasher();
        h.write(key.as_bytes());
        let idx = (h.finish() as usize) % self.stripes.len();
        &self.stripes[idx]
    }

    /// Inserts a new session owned by the anonymous tenant. Errors if the
    /// key is already registered.
    pub fn insert(&self, key: &str, value: T) -> Result<(), RegistryError> {
        self.insert_tagged(key, value, ANONYMOUS_TENANT)
    }

    /// Inserts a new session tagged with its owning tenant. Errors if the
    /// key is already registered.
    pub fn insert_tagged(
        &self,
        key: &str,
        value: T,
        tenant: TenantId,
    ) -> Result<(), RegistryError> {
        let now = self.now_ms();
        let mut map = self.stripe(key).lock().expect("stripe poisoned");
        if map.contains_key(key) {
            return Err(RegistryError::Exists(key.to_owned()));
        }
        map.insert(
            key.to_owned(),
            Entry {
                value: Arc::new(Mutex::new(value)),
                touched: AtomicU64::new(now),
                tenant,
            },
        );
        Ok(())
    }

    /// The session handle for `key`, if registered, refreshing its idle
    /// stamp. The stripe lock is released before returning; callers lock
    /// the session itself.
    pub fn get(&self, key: &str) -> Option<Arc<Mutex<T>>> {
        let now = self.now_ms();
        self.stripe(key)
            .lock()
            .expect("stripe poisoned")
            .get(key)
            .map(|e| {
                e.touched.store(now, Ordering::Relaxed);
                Arc::clone(&e.value)
            })
    }

    /// The owning tenant of `key`, if registered.
    pub fn tenant_of(&self, key: &str) -> Option<TenantId> {
        self.stripe(key)
            .lock()
            .expect("stripe poisoned")
            .get(key)
            .map(|e| e.tenant)
    }

    /// Removes and returns the session handle for `key`.
    pub fn remove(&self, key: &str) -> Option<Arc<Mutex<T>>> {
        self.remove_tagged(key).map(|(v, _)| v)
    }

    /// Removes the session for `key`, returning the handle and its tenant
    /// tag (so the caller can release the tenant's quota).
    pub fn remove_tagged(&self, key: &str) -> Option<(Arc<Mutex<T>>, TenantId)> {
        self.stripe(key)
            .lock()
            .expect("stripe poisoned")
            .remove(key)
            .map(|e| (e.value, e.tenant))
    }

    /// Removes every session whose idle time exceeds `ttl_ms`, returning
    /// the reaped `(name, tenant)` pairs. Stripes are swept one at a time
    /// (never more than one stripe lock held), so the sweep cannot
    /// deadlock with concurrent requests; a session touched between the
    /// stamp read and the removal is simply kept until the next sweep.
    pub fn sweep_idle(&self, ttl_ms: u64) -> Vec<(String, TenantId)> {
        let now = self.now_ms();
        let mut reaped = Vec::new();
        for stripe in &self.stripes {
            let mut map = stripe.lock().expect("stripe poisoned");
            let expired: Vec<String> = map
                .iter()
                .filter(|(_, e)| now.saturating_sub(e.touched.load(Ordering::Relaxed)) > ttl_ms)
                .map(|(k, _)| k.clone())
                .collect();
            for key in expired {
                if let Some(e) = map.remove(&key) {
                    reaped.push((key, e.tenant));
                }
            }
        }
        reaped
    }

    /// Number of registered sessions (sums stripe sizes; a snapshot, not a
    /// linearizable count).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").len())
            .sum()
    }

    /// True when no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Registry failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The session name is already taken.
    Exists(String),
    /// The session name is not registered.
    NotFound(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Exists(k) => write!(f, "session {k:?} already exists"),
            RegistryError::NotFound(k) => write!(f, "no session named {k:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_cycle() {
        let r: Registry<u32> = Registry::new(8);
        assert!(r.is_empty());
        r.insert("a", 1).unwrap();
        r.insert("b", 2).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(*r.get("a").unwrap().lock().unwrap(), 1);
        assert!(r.get("missing").is_none());
        assert_eq!(r.insert("a", 9), Err(RegistryError::Exists("a".to_owned())));
        let removed = r.remove("a").unwrap();
        assert_eq!(*removed.lock().unwrap(), 1);
        assert!(r.get("a").is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn concurrent_inserts_land_exactly_once() {
        let r: Arc<Registry<usize>> = Arc::new(Registry::new(4));
        let handles: Vec<_> = (0..8)
            .map(|tid| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut wins = 0;
                    for i in 0..100 {
                        if r.insert(&format!("s{i}"), tid).is_ok() {
                            wins += 1;
                        }
                    }
                    wins
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "every key must be won by exactly one thread");
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn single_stripe_still_works() {
        let r: Registry<&'static str> = Registry::new(0); // clamped to 1
        r.insert("x", "v").unwrap();
        assert_eq!(*r.get("x").unwrap().lock().unwrap(), "v");
    }

    #[test]
    fn tenant_tags_survive_the_lifecycle() {
        let r: Registry<u32> = Registry::new(4);
        r.insert_tagged("t1-a", 1, 1).unwrap();
        r.insert("anon", 2).unwrap();
        assert_eq!(r.tenant_of("t1-a"), Some(1));
        assert_eq!(r.tenant_of("anon"), Some(ANONYMOUS_TENANT));
        assert_eq!(r.tenant_of("missing"), None);
        let (_, tenant) = r.remove_tagged("t1-a").unwrap();
        assert_eq!(tenant, 1);
    }

    #[test]
    fn sweep_reaps_only_idle_entries() {
        let r: Registry<u32> = Registry::new(2);
        r.insert_tagged("old", 1, 3).unwrap();
        r.insert("fresh", 2).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Touch "fresh" after the sleep; "old" stays stale.
        let _ = r.get("fresh");
        let mut reaped = r.sweep_idle(20);
        reaped.sort();
        assert_eq!(reaped, vec![("old".to_owned(), 3)]);
        assert_eq!(r.len(), 1);
        assert!(r.get("fresh").is_some());
        // A zero TTL reaps everything not touched in the same instant.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(r.sweep_idle(0), vec![("fresh".to_owned(), 0)]);
        assert!(r.is_empty());
    }
}
