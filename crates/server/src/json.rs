//! A minimal JSON value type with parser and serializer.
//!
//! The build environment has no registry access, so `serde`/`serde_json`
//! are unavailable; the protocol needs only a small, fully deterministic
//! subset. Design points:
//!
//! * Objects preserve **insertion order** (a `Vec` of pairs, no hash map),
//!   so serialization is a pure function of construction order — the
//!   foundation of the server's byte-identical-response guarantee.
//! * Numbers are `f64`, printed with Rust's shortest-round-trip formatting
//!   (integers print without a fractional part), so `parse(print(x)) == x`
//!   exactly for every finite value.
//! * The parser is a recursive-descent reader over bytes with a depth
//!   limit; errors carry the byte offset.

use std::fmt;

/// Maximum nesting depth accepted by the parser (stack-overflow guard for
/// adversarial input on the open TCP port).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (order preserved).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Member lookup on objects (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions
    /// and values beyond 2^53, where `f64` stops being exact).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one JSON value from `text` (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's float Display is shortest-round-trip; integers
                    // come out bare ("1000", not "1000.0").
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; degrade to null rather than emit
                    // an unparseable token.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number run");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1", "3.25", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let printed = v.to_string();
            assert_eq!(Json::parse(&printed).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            6000.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            -0.007,
            123456789.123456,
        ] {
            let printed = Json::Num(x).to_string();
            let back = Json::parse(&printed).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} printed as {printed}");
        }
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v = Json::obj([
            ("z", Json::num(1.0)),
            ("a", Json::num(2.0)),
            ("m", Json::num(3.0)),
        ]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2,"m":3}"#);
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\t\"quoted\" \\slash\\ \u{1F600} nul:\u{01}";
        let printed = Json::str(original).to_string();
        assert_eq!(Json::parse(&printed).unwrap().as_str(), Some(original));
        let parsed = Json::parse(r#""A\u00e9\ud83d\ude00\u0007""#).unwrap();
        assert_eq!(parsed.as_str(), Some("A\u{e9}\u{1F600}\u{07}"));
    }

    #[test]
    fn nested_structures_parse() {
        let v = Json::parse(r#" {"a":[1,2,{"b":null}],"c":{"d":[true,false]}} "#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].get("b"),
            Some(&Json::Null)
        );
        assert_eq!(
            v.to_string(),
            r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]}}"#
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "[1]extra",
            "\"bad \\x escape\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_blocks_stack_abuse() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::num(5.0).as_usize(), Some(5));
        assert_eq!(Json::num(5.5).as_usize(), None);
        assert_eq!(Json::num(-1.0).as_usize(), None);
        assert_eq!(Json::str("5").as_usize(), None);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
    }
}
