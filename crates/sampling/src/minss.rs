//! Guidance for setting `minSS` (paper §4.2, "Setting minSS").
//!
//! For a rule covering an `x` fraction of tuples, a good count estimate
//! needs `minSS ≫ ρ(1−x)/x`. For the Size weighting the paper lower-bounds
//! the top rule's fraction: the column `c` with the fewest distinct values
//! has some value occurring `≥ |T|/|c|` times, and the highest-scoring rule
//! has weight ≤ |C|, so its count is ≥ `|T|/(|C|·|c|)` — giving the rule of
//! thumb `minSS ≫ ρ·|C|·|c|`.

use sdd_table::{stats, Table};

/// The paper's `ρ(1−x)/x` bound: sample size needed to estimate the count
/// of a rule covering fraction `x`, with accuracy knob `ρ`.
///
/// # Panics
/// If `x` is not in `(0, 1]` or `rho` is non-positive.
pub fn min_ss_for_fraction(x: f64, rho: f64) -> usize {
    assert!(x > 0.0 && x <= 1.0, "fraction must be in (0,1]");
    assert!(rho > 0.0, "rho must be positive");
    (rho * (1.0 - x) / x).ceil() as usize
}

/// The Size-weighting rule of thumb: `ρ · |C| · |c_min|`, where `c_min` is
/// the column with the fewest distinct values.
///
/// Returns at least `rho.ceil()` for degenerate tables.
pub fn recommended_min_ss(table: &Table, rho: f64) -> usize {
    assert!(rho > 0.0, "rho must be positive");
    match stats::min_cardinality_column(table) {
        Some((_, card)) if card > 0 => {
            let bound = rho * table.n_columns() as f64 * card as f64;
            bound.ceil() as usize
        }
        _ => rho.ceil() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_table::Schema;

    #[test]
    fn fraction_bound_matches_formula() {
        // x = 0.1, ρ = 10 → 10·0.9/0.1 = 90.
        assert_eq!(min_ss_for_fraction(0.1, 10.0), 90);
        // Full-coverage rules need nothing.
        assert_eq!(min_ss_for_fraction(1.0, 10.0), 0);
    }

    #[test]
    fn paper_worked_example() {
        // Paper: an Education-like column with 5 values in a 10-column table
        // → minSS ≫ |C|·|c| = 50 (illustrated with ρ = 1).
        let rows: Vec<Vec<String>> = (0..100)
            .map(|i| {
                let mut row = vec![format!("edu{}", i % 5)];
                // Other 9 columns each carry 7 distinct values.
                row.extend((1..10).map(|c| format!("c{}v{}", c, (i + c) % 7)));
                row
            })
            .collect();
        let t = Table::from_rows(
            Schema::new((0..10).map(|i| format!("col{i}"))).unwrap(),
            &rows,
        )
        .unwrap();
        // min cardinality = 5 (col0), |C| = 10.
        assert_eq!(recommended_min_ss(&t, 1.0), 50);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn zero_fraction_panics() {
        let _ = min_ss_for_fraction(0.0, 1.0);
    }

    #[test]
    fn empty_table_gets_floor() {
        let t = Table::from_rows(Schema::new(["a"]).unwrap(), &[] as &[&[&str]]).unwrap();
        assert_eq!(recommended_min_ss(&t, 3.0), 3);
    }
}
