//! Convex-relaxation solver for the allocation problem (paper §4.2,
//! Problem 6).
//!
//! Two relaxations make Problem 5 convex: the step objective becomes a
//! hinge (`min(1, ess/minSS)`), and sample sizes become reals. The
//! feasible set `{n ≥ 0, Σn ≤ M}` is a scaled simplex; we run projected
//! subgradient **ascent** from `n = 0` (the paper's initialization) and
//! round down at the end.
//!
//! The paper's caveat applies and is tested: the hinge rewards partial
//! samples, so the rounded solution may leave leaves just *below* `minSS`
//! and lose to the DP on the true step objective.

use crate::alloc::{Allocation, AllocationProblem};

/// Configuration for the projected subgradient ascent.
#[derive(Debug, Clone, Copy)]
pub struct ConvexConfig {
    /// Number of iterations.
    pub iterations: usize,
    /// Base step size, scaled by `M` and diminished as `1/√t`.
    pub step: f64,
}

impl Default for ConvexConfig {
    fn default() -> Self {
        Self {
            iterations: 500,
            step: 0.5,
        }
    }
}

/// Solves the hinge relaxation (Problem 6) and rounds to integers.
pub fn solve_convex(problem: &AllocationProblem) -> Allocation {
    solve_convex_with(problem, ConvexConfig::default())
}

/// [`solve_convex`] with explicit optimizer settings.
pub fn solve_convex_with(problem: &AllocationProblem, cfg: ConvexConfig) -> Allocation {
    problem.validate().expect("invalid allocation problem");
    let n = problem.parent.len();
    let m = problem.capacity as f64;
    let min_ss = problem.min_ss as f64;
    let leaves = problem.leaves();

    let mut x = vec![0.0f64; n];
    let mut best_x = x.clone();
    let mut best_val = problem.hinge_value(&x);

    for t in 0..cfg.iterations {
        // Subgradient of Σ p·min(1, ess/minSS).
        let mut g = vec![0.0f64; n];
        for &l in &leaves {
            let ess = x[l]
                + problem.parent[l]
                    .map(|p| x[p] * problem.selectivity[l])
                    .unwrap_or(0.0);
            if ess < min_ss {
                g[l] += problem.prob[l] / min_ss;
                if let Some(p) = problem.parent[l] {
                    g[p] += problem.prob[l] * problem.selectivity[l] / min_ss;
                }
            }
        }
        // Normalize the direction: raw hinge gradients are O(p/minSS) while
        // sample sizes are O(minSS..M), so an unnormalized step would crawl.
        let norm = g.iter().fold(0.0f64, |a, &b| a.max(b));
        if norm <= 0.0 {
            break; // every leaf saturated — optimum of the relaxation
        }
        let step = cfg.step * m.min(min_ss * leaves.len() as f64) / (1.0 + (t as f64).sqrt());
        for i in 0..n {
            x[i] += step * g[i] / norm;
        }
        project_capped_simplex(&mut x, m);

        let v = problem.hinge_value(&x);
        if v > best_val {
            best_val = v;
            best_x = x.clone();
        }
    }

    let sizes: Vec<usize> = best_x
        .iter()
        .map(|&v| v.max(0.0).floor() as usize)
        .collect();
    let value = problem.step_value(&sizes);
    Allocation { sizes, value }
}

/// Euclidean projection onto `{x ≥ 0, Σx ≤ cap}`.
///
/// If clamping negatives already satisfies the budget, done; otherwise
/// project onto the simplex `{x ≥ 0, Σx = cap}` with the standard
/// sort-and-threshold algorithm.
pub fn project_capped_simplex(x: &mut [f64], cap: f64) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    let sum: f64 = x.iter().sum();
    if sum <= cap {
        return;
    }
    // Simplex projection (Duchi et al.): find threshold θ.
    let mut sorted: Vec<f64> = x.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let mut cum = 0.0f64;
    let mut theta = 0.0f64;
    for (i, &v) in sorted.iter().enumerate() {
        cum += v;
        let t = (cum - cap) / (i as f64 + 1.0);
        if v - t > 0.0 {
            theta = t;
        } else {
            break;
        }
    }
    for v in x.iter_mut() {
        *v = (*v - theta).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_dp::solve_dp;

    fn two_leaf(capacity: usize) -> AllocationProblem {
        AllocationProblem {
            parent: vec![None, Some(0), Some(0)],
            prob: vec![0.0, 0.6, 0.4],
            selectivity: vec![1.0, 0.5, 0.25],
            capacity,
            min_ss: 1000,
        }
    }

    #[test]
    fn projection_no_op_inside_feasible_set() {
        let mut x = vec![1.0, 2.0, 3.0];
        project_capped_simplex(&mut x, 10.0);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn projection_clamps_negatives() {
        let mut x = vec![-5.0, 2.0];
        project_capped_simplex(&mut x, 10.0);
        assert_eq!(x, vec![0.0, 2.0]);
    }

    #[test]
    fn projection_lands_on_budget_when_over() {
        let mut x = vec![8.0, 6.0, 4.0];
        project_capped_simplex(&mut x, 9.0);
        let sum: f64 = x.iter().sum();
        assert!((sum - 9.0).abs() < 1e-9, "{x:?}");
        assert!(x.iter().all(|&v| v >= 0.0));
        // Order is preserved.
        assert!(x[0] >= x[1] && x[1] >= x[2]);
    }

    #[test]
    fn projection_extreme_overage() {
        let mut x = vec![1000.0, 0.0];
        project_capped_simplex(&mut x, 1.0);
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert_eq!(x[1], 0.0);
    }

    #[test]
    fn convex_respects_capacity() {
        let p = two_leaf(2500);
        let a = solve_convex(&p);
        assert!(p.used(&a.sizes) <= p.capacity, "{a:?}");
    }

    #[test]
    fn convex_near_dp_hinge_quality() {
        let p = two_leaf(4000);
        let dp = solve_dp(&p);
        let cx = solve_convex(&p);
        let dp_hinge = p.hinge_value(&dp.sizes.iter().map(|&s| s as f64).collect::<Vec<_>>());
        let cx_hinge = p.hinge_value(&cx.sizes.iter().map(|&s| s as f64).collect::<Vec<_>>());
        // The convex optimum of the relaxation is ≥ the DP point's hinge
        // value; allow small slack for finite iterations + rounding.
        assert!(
            cx_hinge >= dp_hinge - 0.05,
            "convex hinge {cx_hinge} far below dp hinge {dp_hinge}"
        );
    }

    #[test]
    fn convex_serves_everything_with_slack_budget() {
        let p = two_leaf(20_000);
        let a = solve_convex(&p);
        assert!(a.value > 0.9, "{a:?}");
    }

    #[test]
    fn hinge_weakness_documented_by_paper_can_occur() {
        // Tight budget: hinge spreads mass, step objective may drop below
        // DP. We only assert the DP is never worse — the paper's point.
        for cap in [900, 1100, 1500, 2100] {
            let p = two_leaf(cap);
            let dp = solve_dp(&p);
            let cx = solve_convex(&p);
            assert!(
                dp.value + 1e-9 >= cx.value,
                "cap {cap}: dp {} < convex {}",
                dp.value,
                cx.value
            );
        }
    }

    #[test]
    fn deterministic() {
        let p = two_leaf(2500);
        assert_eq!(solve_convex(&p).sizes, solve_convex(&p).sizes);
    }
}
