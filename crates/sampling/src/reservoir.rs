//! Reservoir sampling (Vitter's Algorithm R; paper §4.3 cites refs 26 and 35).
//!
//! "We can use reservoir sampling to get a uniformly random sample of given
//! size in a single pass through the table."
//!
//! Two offer flavors exist:
//!
//! * [`Reservoir::offer`] draws from a caller-supplied sequential RNG — the
//!   textbook form.
//! * [`Reservoir::offer_keyed`] derives each draw from `(key, seen)` with a
//!   stateless SplitMix64 mix. The reservoir's contents then depend only on
//!   the key and the offered stream — **not** on how the stream was split
//!   across calls or sessions. This is what makes the live-table sample
//!   maintenance incremental-equals-rebuild: continuing a stored reservoir
//!   over appended rows (via [`Reservoir::from_parts`]) lands in exactly
//!   the state a from-scratch pass over the grown stream produces, which in
//!   turn equals a scan of a pre-grown frozen table — bit-identical, with
//!   no epoch bookkeeping inside the reservoir at all.

use rand::Rng;

/// One round of the SplitMix64 mixing function — the crate's stateless
/// deterministic mixer (also used for per-rule seeds in the handler).
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-capacity uniform reservoir over a stream of items.
///
/// After observing `n ≥ capacity` items, the reservoir holds a uniformly
/// random `capacity`-subset of them.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Creates an empty reservoir of the given capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Reassembles a reservoir from stored state: `items` drawn so far,
    /// the stream count `seen` they were drawn from, and the original
    /// `capacity`. Continuing to offer the rest of a stream to the result
    /// is bit-identical to having offered the whole stream to one fresh
    /// reservoir (with [`Reservoir::offer_keyed`] and the same key) — the
    /// incremental half of live-table sample maintenance.
    pub fn from_parts(items: Vec<T>, seen: u64, capacity: usize) -> Self {
        debug_assert!(items.len() <= capacity);
        debug_assert!(items.len() as u64 <= seen);
        Self {
            capacity,
            seen,
            items,
        }
    }

    /// Offers one item from the stream.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else if self.capacity > 0 {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Offers one item with the draw derived statelessly from
    /// `(key, seen)`: Algorithm R with `j = mix(key, t) mod t` at stream
    /// position `t`. Equally-keyed reservoirs fed the same stream hold the
    /// same items no matter how the stream is split across calls — see the
    /// module docs. (The modulo bias is ≤ `t / 2^64` per draw —
    /// statistically irrelevant, and determinism is exact.)
    pub fn offer_keyed(&mut self, item: T, key: u64) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else if self.capacity > 0 {
            let j = splitmix64(key ^ self.seen) % self.seen;
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of stream items observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sampled items (length ≤ capacity).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning `(items, seen)`.
    pub fn into_parts(self) -> (Vec<T>, u64) {
        (self.items, self.seen)
    }

    /// The scale factor `N_s = seen / |items|` translating sample counts to
    /// stream-level estimates (`1.0` when the whole stream fit, including
    /// the empty stream).
    ///
    /// A drained zero-capacity reservoir (`capacity == 0`, `seen > 0`)
    /// returns the honest ratio `+∞`: it observed tuples but can represent
    /// none of them, so no finite per-item weight reconstructs the stream.
    /// Callers holding such a reservoir have an empty item list, so the
    /// infinity never multiplies a real tuple weight.
    pub fn scale(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else if self.items.is_empty() {
            f64::INFINITY
        } else {
            self.seen as f64 / self.items.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn keeps_everything_when_under_capacity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Reservoir::new(10);
        for i in 0..5 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
        assert_eq!(r.seen(), 5);
        assert_eq!(r.scale(), 1.0);
    }

    #[test]
    fn holds_exactly_capacity_after_overflow() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = Reservoir::new(8);
        for i in 0..1000 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items().len(), 8);
        assert_eq!(r.seen(), 1000);
        assert!((r.scale() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // Each of 100 items should land in a 10-slot reservoir ~10% of runs.
        let mut hits = vec![0u32; 100];
        for seed in 0..2000u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = Reservoir::new(10);
            for i in 0..100 {
                r.offer(i, &mut rng);
            }
            for &i in r.items() {
                hits[i as usize] += 1;
            }
        }
        // Expected 200 hits each; allow generous tolerance.
        for (i, &h) in hits.iter().enumerate() {
            assert!((120..=280).contains(&h), "item {i} selected {h} times");
        }
    }

    #[test]
    fn zero_capacity_reservoir_is_legal() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = Reservoir::new(0);
        assert_eq!(r.scale(), 1.0, "empty stream scales by 1");
        for i in 0..10 {
            r.offer(i, &mut rng);
        }
        assert!(r.items().is_empty());
        assert_eq!(r.seen(), 10);
        // Drained but saw tuples: the honest ratio is infinite, not 1.0.
        assert_eq!(r.scale(), f64::INFINITY);
    }

    #[test]
    fn keyed_offers_are_split_invariant() {
        // The property live-table maintenance rests on: offering a stream
        // in any number of installments (resuming via from_parts) lands in
        // the same state as one continuous pass.
        let key = 0xABCD_1234_u64;
        let stream: Vec<u32> = (0..500).collect();
        let mut whole = Reservoir::new(16);
        for &i in &stream {
            whole.offer_keyed(i, key);
        }
        for split in [0usize, 1, 17, 250, 499, 500] {
            let mut a = Reservoir::new(16);
            for &i in &stream[..split] {
                a.offer_keyed(i, key);
            }
            let (items, seen) = a.into_parts();
            let mut b = Reservoir::from_parts(items, seen, 16);
            for &i in &stream[split..] {
                b.offer_keyed(i, key);
            }
            assert_eq!(b.items(), whole.items(), "split at {split}");
            assert_eq!(b.seen(), whole.seen());
        }
    }

    #[test]
    fn keyed_sampling_is_approximately_uniform() {
        let mut hits = vec![0u32; 100];
        for key in 0..2000u64 {
            let mut r = Reservoir::new(10);
            for i in 0..100 {
                r.offer_keyed(i, splitmix64(key));
            }
            for &i in r.items() {
                hits[i as usize] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((120..=280).contains(&h), "item {i} selected {h} times");
        }
    }

    #[test]
    fn into_parts_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = Reservoir::new(3);
        for i in 0..3 {
            r.offer(i, &mut rng);
        }
        let (items, seen) = r.into_parts();
        assert_eq!(items.len(), 3);
        assert_eq!(seen, 3);
    }
}
