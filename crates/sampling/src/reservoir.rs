//! Reservoir sampling (Vitter's Algorithm R; paper §4.3 cites refs 26 and 35).
//!
//! "We can use reservoir sampling to get a uniformly random sample of given
//! size in a single pass through the table."

use rand::Rng;

/// A fixed-capacity uniform reservoir over a stream of items.
///
/// After observing `n ≥ capacity` items, the reservoir holds a uniformly
/// random `capacity`-subset of them.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// Creates an empty reservoir of the given capacity.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offers one item from the stream.
    pub fn offer<R: Rng + ?Sized>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else if self.capacity > 0 {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of stream items observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sampled items (length ≤ capacity).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning `(items, seen)`.
    pub fn into_parts(self) -> (Vec<T>, u64) {
        (self.items, self.seen)
    }

    /// The scale factor `N_s = seen / |items|` translating sample counts to
    /// stream-level estimates (`1.0` when the whole stream fit, including
    /// the empty stream).
    ///
    /// A drained zero-capacity reservoir (`capacity == 0`, `seen > 0`)
    /// returns the honest ratio `+∞`: it observed tuples but can represent
    /// none of them, so no finite per-item weight reconstructs the stream.
    /// Callers holding such a reservoir have an empty item list, so the
    /// infinity never multiplies a real tuple weight.
    pub fn scale(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else if self.items.is_empty() {
            f64::INFINITY
        } else {
            self.seen as f64 / self.items.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn keeps_everything_when_under_capacity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = Reservoir::new(10);
        for i in 0..5 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
        assert_eq!(r.seen(), 5);
        assert_eq!(r.scale(), 1.0);
    }

    #[test]
    fn holds_exactly_capacity_after_overflow() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = Reservoir::new(8);
        for i in 0..1000 {
            r.offer(i, &mut rng);
        }
        assert_eq!(r.items().len(), 8);
        assert_eq!(r.seen(), 1000);
        assert!((r.scale() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // Each of 100 items should land in a 10-slot reservoir ~10% of runs.
        let mut hits = vec![0u32; 100];
        for seed in 0..2000u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut r = Reservoir::new(10);
            for i in 0..100 {
                r.offer(i, &mut rng);
            }
            for &i in r.items() {
                hits[i as usize] += 1;
            }
        }
        // Expected 200 hits each; allow generous tolerance.
        for (i, &h) in hits.iter().enumerate() {
            assert!((120..=280).contains(&h), "item {i} selected {h} times");
        }
    }

    #[test]
    fn zero_capacity_reservoir_is_legal() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = Reservoir::new(0);
        assert_eq!(r.scale(), 1.0, "empty stream scales by 1");
        for i in 0..10 {
            r.offer(i, &mut rng);
        }
        assert!(r.items().is_empty());
        assert_eq!(r.seen(), 10);
        // Drained but saw tuples: the honest ratio is infinite, not 1.0.
        assert_eq!(r.scale(), f64::INFINITY);
    }

    #[test]
    fn into_parts_roundtrip() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = Reservoir::new(3);
        for i in 0..3 {
            r.offer(i, &mut rng);
        }
        let (items, seen) = r.into_parts();
        assert_eq!(items.len(), 3);
        assert_eq!(seen, 3);
    }
}
