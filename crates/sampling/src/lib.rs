//! # sdd-sampling
//!
//! Dynamic sample maintenance for smart drill-down on large tables
//! (paper §4).
//!
//! BRS makes multiple passes over the data; on large tables it runs on an
//! in-memory sample instead, trading accuracy for response time. This crate
//! implements the paper's full sampling stack:
//!
//! * [`reservoir`] — single-pass uniform sampling (Vitter),
//! * [`alloc`] — the sample-memory allocation problem (Problem 5) and the
//!   uniform baseline,
//! * [`alloc_dp`] — the paper's approximate DP solver (§4.1),
//! * [`alloc_convex`] — the hinge-loss convex relaxation (§4.2, Problem 6),
//! * [`knapsack`] — Lemma 4's NP-hardness reduction, executable,
//! * [`handler`] — the SampleHandler: Find / Combine / Create mechanisms,
//!   LRU eviction, and one-scan pre-fetching (§4.3); the create/prefetch
//!   scan runs task-per-rule on `sdd_core::exec` with per-reservoir seeds
//!   derived from `(config.seed, rule)`, so stored samples are identical
//!   on any thread count,
//! * [`estimate`] — count estimates with confidence intervals,
//! * [`minss`] — guidance for choosing `minSS` (§4.2).

#![warn(missing_docs)]

pub mod alloc;
pub mod alloc_convex;
pub mod alloc_dp;
pub mod estimate;
pub mod handler;
pub mod knapsack;
pub mod minss;
pub mod reservoir;

pub use alloc::{solve_uniform, Allocation, AllocationProblem, AllocationStrategy};
pub use alloc_convex::{project_capped_simplex, solve_convex, solve_convex_with, ConvexConfig};
pub use alloc_dp::solve_dp;
pub use estimate::{count_estimate, percent_error, CountEstimate};
pub use handler::{
    FetchMechanism, HandlerStats, PrefetchEntry, PrefetchJob, SampleHandler, SampleHandlerConfig,
    SampleView, StoredSampleInfo,
};
pub use knapsack::{lemma4_reduction, Knapsack, Lemma4Instance};
pub use minss::{min_ss_for_fraction, recommended_min_ss};
pub use reservoir::Reservoir;
