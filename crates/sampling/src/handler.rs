//! The SampleHandler (paper §4.3): creates, maintains, retrieves, and
//! evicts in-memory samples in response to drill-down requests.
//!
//! Given a rule `r` the handler returns a uniform sample of `T_r` with at
//! least `minSS` tuples, via the cheapest applicable mechanism:
//!
//! 1. **Find** — an existing sample whose filter is exactly `r` and which is
//!    large enough.
//! 2. **Combine** — pool the `r`-covered tuples of every sample whose filter
//!    is a *sub-rule* of `r`. Each pooled tuple carries the weight
//!    `1 / Σ_s (1/N_s)` so estimates remain unbiased even when the sources
//!    were drawn at different rates (each covered tuple appears in source
//!    `s` with probability `1/N_s` independently).
//! 3. **Create** — a full pass over the table (the expensive case the
//!    allocator tries to avoid), using reservoir sampling.
//!
//! [`SampleHandler::prefetch`] implements §4.3's background pre-fetching:
//! given the rules the analyst may drill into next and their probabilities,
//! it solves the allocation problem (§4.1/§4.2) and materializes all
//! planned samples in a single scan.
//!
//! **Parallel, reproducible scans.** The create/prefetch scan runs
//! task-per-rule on [`sdd_core::exec::parallel_map`]: each requested rule
//! gets its own reservoir, with every draw derived statelessly from the
//! rule's key and the offer index ([`Reservoir::offer_keyed`], keyed by a
//! SplitMix64 fold of `(config.seed, rule)`) — there is no shared
//! sequential RNG, so the stored samples are identical on any thread count
//! (and each rule's columnar [`sdd_core::covered_rows`] scan is itself
//! row-sliced). A batch is stored atomically: same-filter replacement and
//! LRU eviction happen *before* any new sample is pushed, so freshly
//! stored batch members are never evicted by their own batch and the
//! returned store indices stay valid.
//!
//! **Live tables.** A handler over a [`TableStore::Live`] store is pinned
//! to one epoch's snapshot; [`SampleHandler::try_sync_to_snapshot`]
//! advances it, maintaining every stored reservoir **incrementally**: only
//! the appended row range is scanned
//! ([`sdd_core::try_covered_rows_sharded_range`]) and offered into the
//! stored reservoir resumed via [`Reservoir::from_parts`]. Because draws
//! are keyed by offer index, the maintained sample is bit-identical to a
//! full re-scan at the new epoch — and to a scan of a frozen table
//! pre-grown to the same rows (the parity tests pin both).

use crate::alloc::{solve_uniform, Allocation, AllocationProblem, AllocationStrategy};
use crate::alloc_convex::solve_convex;
use crate::alloc_dp::solve_dp;
use crate::reservoir::{splitmix64, Reservoir};
use sdd_core::Rule;
use sdd_table::{LiveSnapshot, OwnedTableView, RowId, Table, TableError, TableStore};
use std::sync::Arc;

/// Configuration of a [`SampleHandler`].
#[derive(Debug, Clone)]
pub struct SampleHandlerConfig {
    /// Memory capacity `M`: total tuples across all stored samples.
    pub capacity: usize,
    /// `minSS`: minimum tuples required to run BRS without a disk pass.
    pub min_sample_size: usize,
    /// RNG seed (sampling is deterministic per seed).
    pub seed: u64,
    /// Which allocation solver [`SampleHandler::prefetch`] uses.
    pub strategy: AllocationStrategy,
}

impl Default for SampleHandlerConfig {
    /// The paper's experimental settings: `M = 50000`, `minSS = 5000`.
    fn default() -> Self {
        Self {
            capacity: 50_000,
            min_sample_size: 5_000,
            seed: 0xD2_11,
            strategy: AllocationStrategy::Dp,
        }
    }
}

/// How a requested sample was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchMechanism {
    /// Served verbatim from a stored sample with the same filter.
    Find,
    /// Pooled from stored samples with sub-rule filters.
    Combine,
    /// Required a full table scan.
    Create,
}

/// A sample returned to the caller, ready to feed into BRS.
///
/// The view is **owned** ([`OwnedTableView`]): it shares the table by `Arc`
/// and can outlive the handler borrow that produced it, cross threads, or
/// seed an owned `Session` directly.
#[derive(Debug, Clone)]
pub struct SampleView {
    /// The tuples, weighted so that BRS counts are full-table estimates.
    pub view: OwnedTableView,
    /// Which mechanism produced it.
    pub mechanism: FetchMechanism,
    /// The effective scale factor (for confidence intervals).
    pub scale: f64,
}

/// Work counters (exposed for the experiments of §5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandlerStats {
    /// Requests served by Find.
    pub finds: usize,
    /// Requests served by Combine.
    pub combines: usize,
    /// Requests served by Create.
    pub creates: usize,
    /// Full passes over the table (Create + prefetch scans).
    pub full_scans: usize,
    /// Samples evicted to respect the memory cap.
    pub evictions: usize,
}

#[derive(Debug, Clone)]
struct StoredSample {
    filter: Rule,
    rows: Vec<RowId>,
    /// Segmented (sharded or live) stores materialize each sample's rows
    /// into a small table in the **global** code space at store time (same
    /// dictionaries and cardinalities as the full table, rows in sample
    /// order), so serving and combining samples never touches the shard
    /// tier. `None` for monolithic stores, which serve views over the
    /// shared table directly.
    local: Option<Arc<Table>>,
    /// `N_s`: covered-population count / sample size.
    scale: f64,
    /// True when the sample holds *every* covered tuple (the rule covers
    /// fewer tuples than the reservoir's capacity) — exact, no `minSS`
    /// requirement applies.
    exact: bool,
    /// Covered tuples the reservoir has observed (`seen`), and the
    /// reservoir's capacity (`target`) — the state needed to *resume* the
    /// reservoir over appended rows ([`Reservoir::from_parts`]).
    seen: u64,
    target: usize,
    last_used: u64,
}

/// One next-drill-down candidate for [`SampleHandler::prefetch`].
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchEntry {
    /// The rule the analyst may drill into.
    pub rule: Rule,
    /// Probability of that drill-down (uniform or learned, §4.1).
    pub probability: f64,
    /// `S(parent, rule)`: fraction of parent-covered tuples this rule
    /// covers. Estimated from displayed counts.
    pub selectivity: f64,
}

/// A prefetch request handed off to a background worker (§4.3's
/// "pre-fetching ... while the analyst is still examining the display"):
/// the parent rule plus the likely next drill-downs. Produced by the
/// session layer after an expansion, consumed by
/// [`SampleHandler::run_prefetch_job`] on whichever thread gets there first
/// — the result is identical either way because the scan's reservoirs are
/// seeded per `(config.seed, rule)`, never from scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchJob {
    /// The rule whose expansion the analyst is looking at.
    pub parent: Rule,
    /// The candidate next drill-downs with probabilities/selectivities.
    pub entries: Vec<PrefetchEntry>,
}

/// A read-only snapshot of one stored sample — determinism harnesses
/// compare these across thread counts and prefetch scheduling modes.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSampleInfo {
    /// The filter rule the sample was drawn for.
    pub filter: Rule,
    /// The sampled row ids, in reservoir order.
    pub rows: Vec<RowId>,
    /// `N_s`: covered-population count / sample size.
    pub scale: f64,
    /// True when the sample holds every covered tuple.
    pub exact: bool,
}

/// The sample manager. See module docs.
///
/// Owns its table by `Arc`, so a handler is `Send` and can live inside
/// long-lived, thread-hopping session state (the concurrent server's
/// registry) rather than being pinned to a table borrow.
pub struct SampleHandler {
    store: TableStore,
    config: SampleHandlerConfig,
    samples: Vec<StoredSample>,
    clock: u64,
    /// Work counters.
    pub stats: HandlerStats,
}

/// The per-rule reservoir key: a SplitMix64 fold of the handler seed and
/// the rule's codes. Stable across platforms and independent of scan
/// order, so parallel prefetch draws the same sample for a rule no matter
/// how many rules share the batch or how many threads run it. Each draw of
/// the rule's reservoir then mixes this key with the offer index
/// ([`Reservoir::offer_keyed`]), making the stored sample a pure function
/// of `(seed, rule, covered-row stream)` — the determinism the live-table
/// epoch invariant rests on.
fn sample_seed(seed: u64, rule: &Rule) -> u64 {
    let mut h = splitmix64(seed);
    for &code in rule.codes() {
        h = splitmix64(h ^ (code as u64).wrapping_add(1));
    }
    h
}

impl SampleHandler {
    /// Creates a handler over a monolithic in-memory `table`.
    pub fn new(table: Arc<Table>, config: SampleHandlerConfig) -> Self {
        Self::with_store(TableStore::Whole(table), config)
    }

    /// Creates a handler over any [`TableStore`] — monolithic or sharded.
    /// Sharded stores run their scans shard-by-shard (the covered-row
    /// stream is identical to the monolithic scan, so the drawn samples
    /// are bit-identical) and materialize each stored sample's rows into a
    /// small in-memory table, so everything downstream of the scan is
    /// storage-agnostic.
    pub fn with_store(store: TableStore, config: SampleHandlerConfig) -> Self {
        assert!(config.min_sample_size > 0, "minSS must be positive");
        assert!(
            config.capacity >= config.min_sample_size,
            "capacity must hold at least one minimum-size sample"
        );
        Self {
            store,
            config,
            samples: Vec::new(),
            clock: 0,
            stats: HandlerStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SampleHandlerConfig {
        &self.config
    }

    /// The metadata table of the underlying store: the shared table itself
    /// for monolithic stores, the zero-row dictionary header for sharded
    /// ones (schema/dictionary/cardinality access only — never scan it).
    pub fn table(&self) -> &Arc<Table> {
        self.store.header()
    }

    /// The storage this handler samples from.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// The weighted [`OwnedTableView`] serving a stored sample: over the
    /// shared table (global row ids) for monolithic stores, over the
    /// sample's materialized table (positional rows, same global codes —
    /// identical scan sequences) for sharded ones.
    fn stored_view(store: &TableStore, s: &StoredSample) -> OwnedTableView {
        let weights = vec![s.scale; s.rows.len()];
        match (&s.local, store) {
            (Some(mini), _) => OwnedTableView::with_rows_and_weights(
                mini.clone(),
                (0..s.rows.len() as RowId).collect(),
                weights,
            ),
            (None, TableStore::Whole(t)) => {
                OwnedTableView::with_rows_and_weights(t.clone(), s.rows.clone(), weights)
            }
            (None, TableStore::Sharded(_) | TableStore::Live(_)) => {
                unreachable!("segmented stores materialize every stored sample")
            }
        }
    }

    /// Snapshots every stored sample (store order). Intended for the
    /// determinism test harness and server-side introspection; cloning is
    /// bounded by the configured memory capacity.
    pub fn stored_samples(&self) -> Vec<StoredSampleInfo> {
        self.samples
            .iter()
            .map(|s| StoredSampleInfo {
                filter: s.filter.clone(),
                rows: s.rows.clone(),
                scale: s.scale,
                exact: s.exact,
            })
            .collect()
    }

    /// Total tuples currently stored.
    pub fn memory_used(&self) -> usize {
        self.samples.iter().map(|s| s.rows.len()).sum()
    }

    /// Number of stored samples.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }

    /// A **read-only** Find: the stored sample that would serve `rule`
    /// verbatim, exactly as [`SampleHandler::try_get_sample`]'s Find arm
    /// would serve it — but without touching the LRU clock, `last_used`,
    /// or any counter. Background speculation peeks with this so a
    /// speculative computation can never perturb session-observable state
    /// (including future eviction order). Returns `None` when no stored
    /// sample matches the filter at `minSS` (Combine/Create are
    /// deliberately not attempted: speculation must stay free).
    pub fn peek_stored(&self, rule: &Rule) -> Option<SampleView> {
        let min_ss = self.config.min_sample_size;
        let s = self
            .samples
            .iter()
            .find(|s| s.filter == *rule && (s.rows.len() >= min_ss || s.exact))?;
        Some(SampleView {
            view: Self::stored_view(&self.store, s),
            mechanism: FetchMechanism::Find,
            scale: s.scale,
        })
    }

    /// Returns a (weighted) sample of the tuples covered by `rule`, at least
    /// `minSS` tuples when the data allows, trying Find → Combine → Create.
    /// Infallible wrapper over [`SampleHandler::try_get_sample`]: panicking
    /// on a damaged spill file is this method's documented contract, for
    /// lab callers without an error path — serve paths use the `try_` twin.
    pub fn get_sample(&mut self, rule: &Rule) -> SampleView {
        self.try_get_sample(rule)
            // sdd-lint: allow(P001) the infallible wrapper's contract is to panic; serve paths use try_get_sample
            .expect("shard spill file must decode (written by this table)")
    }

    /// Fallible [`SampleHandler::get_sample`]: a Create that has to scan a
    /// sharded store surfaces a damaged spill file as the error instead of
    /// panicking (Find and Combine never touch the shard tier — stored
    /// samples are materialized in memory at store time).
    pub fn try_get_sample(&mut self, rule: &Rule) -> Result<SampleView, TableError> {
        self.clock += 1;
        let min_ss = self.config.min_sample_size;

        // --- Find --- (an exact sample serves any request regardless of
        // minSS: it already holds every covered tuple).
        if let Some(idx) = self
            .samples
            .iter()
            .position(|s| s.filter == *rule && (s.rows.len() >= min_ss || s.exact))
        {
            self.samples[idx].last_used = self.clock;
            let s = &self.samples[idx];
            self.stats.finds += 1;
            return Ok(SampleView {
                view: Self::stored_view(&self.store, s),
                mechanism: FetchMechanism::Find,
                scale: s.scale,
            });
        }

        // --- Combine ---
        if let Some(sv) = self.try_combine(rule) {
            self.stats.combines += 1;
            return Ok(sv);
        }

        // --- Create ---
        self.stats.creates += 1;
        let target = min_ss;
        let stored = self.create_sample(rule, target)?;
        let s = &self.samples[stored];
        Ok(SampleView {
            view: Self::stored_view(&self.store, s),
            mechanism: FetchMechanism::Create,
            scale: s.scale,
        })
    }

    fn try_combine(&mut self, rule: &Rule) -> Option<SampleView> {
        let min_ss = self.config.min_sample_size;
        let mut rows: Vec<RowId> = Vec::new();
        // Sharded stores pool tuples out of the contributing samples'
        // materialized tables: (source, local rows) parts in pool order.
        let mut parts: Vec<(Arc<Table>, Vec<RowId>)> = Vec::new();
        let mut rate_sum = 0.0f64; // Σ 1/N_s over contributing samples
        let mut used: Vec<usize> = Vec::new();
        for (i, s) in self.samples.iter().enumerate() {
            if !s.filter.is_sub_rule_of(rule) {
                continue;
            }
            // A drained sample (zero-capacity reservoir that still saw
            // tuples, scale = +∞) represents its population at rate
            // `1/N_s = 0`: it contributes no rows and no rate. Skipping it
            // keeps `rate_sum` finite and means a sample evicted and later
            // re-created ("rehydrated") can never double-count its rate —
            // the regression tests pin both properties.
            if !(s.scale.is_finite() && s.scale > 0.0) {
                continue;
            }
            match (&s.local, &self.store) {
                (Some(mini), _) => {
                    let locals: Vec<RowId> = (0..s.rows.len() as RowId)
                        .filter(|&li| rule.covers_row(mini, li))
                        .collect();
                    rows.extend(locals.iter().map(|&li| s.rows[li as usize]));
                    if !locals.is_empty() {
                        parts.push((mini.clone(), locals));
                    }
                }
                (None, TableStore::Whole(t)) => {
                    rows.extend(s.rows.iter().copied().filter(|&r| rule.covers_row(t, r)));
                }
                (None, TableStore::Sharded(_) | TableStore::Live(_)) => {
                    unreachable!("segmented stores materialize every stored sample")
                }
            }
            // Every qualifying sub-rule sample contributes its rate, even
            // when it happens to hold zero `rule`-covered rows: each covered
            // tuple of the table appeared in sample `s` with probability
            // `1/N_s` regardless of the draw's outcome, so dropping empty
            // contributors would shrink `rate_sum` and bias the pooled
            // estimate upward.
            rate_sum += 1.0 / s.scale;
            used.push(i);
        }
        if rows.len() < min_ss || rate_sum <= 0.0 {
            return None;
        }
        for &i in &used {
            self.samples[i].last_used = self.clock;
        }
        let scale = 1.0 / rate_sum;
        let weights = vec![scale; rows.len()];
        let view = match &self.store {
            TableStore::Whole(t) => OwnedTableView::with_rows_and_weights(t.clone(), rows, weights),
            TableStore::Sharded(_) | TableStore::Live(_) => {
                // Gather the pooled tuples (in pool order) into one table
                // sharing the global code space — the same codes the
                // monolithic view would scan, in the same order. (Live
                // stores re-gather every stored sample at each sync, so
                // all sources share the pinned epoch's dictionaries.)
                let borrowed: Vec<(&Table, &[RowId])> = parts
                    .iter()
                    .map(|(t, locals)| (&**t, locals.as_slice()))
                    .collect();
                let pooled = Arc::new(Table::gather_multi(&borrowed));
                let n = pooled.n_rows() as RowId;
                OwnedTableView::with_rows_and_weights(pooled, (0..n).collect(), weights)
            }
        };
        Some(SampleView {
            view,
            mechanism: FetchMechanism::Combine,
            scale,
        })
    }

    /// Creates (and stores) a reservoir sample for `rule` with the given
    /// target size, scanning the full table once. Returns the store index.
    fn create_sample(&mut self, rule: &Rule, target: usize) -> Result<usize, TableError> {
        self.stats.full_scans += 1;
        let idx = self.scan_and_store(&[(rule.clone(), target)])?;
        Ok(idx[0])
    }

    /// The Create phase (§4.3: "it creates a sample of size n_r for each
    /// displayed r"). Rule matching runs column-at-a-time over the
    /// dictionary-encoded column slices ([`sdd_core::covered_rows`], itself
    /// row-sliced on large tables): one columnar scan per requested rule,
    /// with the rules of a batch scanned **task-per-rule in parallel** —
    /// each reservoir draws from its own `StdRng` seeded by
    /// `(config.seed, rule)` ([`sample_seed`]), so the result is identical
    /// on any thread count. Counted as one logical full scan in
    /// [`HandlerStats`].
    ///
    /// Storage is batch-atomic: same-filter replacement and LRU eviction
    /// run *before* any push, so (a) a batch never evicts its own freshly
    /// stored members, and (b) the returned store indices are valid when
    /// this method returns — the historical per-push interleaving could
    /// evict an earlier batch member and leave stale indices behind.
    fn scan_and_store(&mut self, requests: &[(Rule, usize)]) -> Result<Vec<usize>, TableError> {
        // Deduplicate same-filter requests, last target size winning — the
        // store holds at most one sample per filter, and the historical
        // per-push replacement gave later requests precedence. `slot[i]`
        // maps original request `i` to its deduplicated position.
        let mut dedup: Vec<(Rule, usize)> = Vec::with_capacity(requests.len());
        let mut slot: Vec<usize> = Vec::with_capacity(requests.len());
        for (rule, n) in requests {
            match dedup.iter().position(|(r, _)| r == rule) {
                Some(pos) => {
                    dedup[pos].1 = *n;
                    slot.push(pos);
                }
                None => {
                    dedup.push((rule.clone(), *n));
                    slot.push(dedup.len() - 1);
                }
            }
        }

        let store = self.store.clone();
        let seed = self.config.seed;
        let threads = sdd_core::exec::worker_threads().min(dedup.len());
        // When the batch itself fans out task-per-rule, each rule's
        // coverage scan runs serially — otherwise the nested row-sliced
        // scan would oversubscribe the machine (threads × chunks workers).
        let scan_threads = if threads > 1 {
            1
        } else {
            sdd_core::exec::worker_threads()
        };
        let drawn: Vec<(Vec<RowId>, u64, f64)> =
            sdd_core::exec::parallel_map(threads, dedup.clone(), |(rule, n)| {
                let key = sample_seed(seed, &rule);
                let mut res = Reservoir::new(n);
                // Sharded and monolithic scans emit the identical ascending
                // covered-row stream, so the reservoir draws the identical
                // sample either way; a live store scans its pinned epoch's
                // frozen snapshot, whose stream equals a frozen table grown
                // to the same rows.
                let covered = match &store {
                    TableStore::Whole(t) => {
                        sdd_core::covered_rows_with_threads(t, &rule, scan_threads)
                    }
                    TableStore::Sharded(_) | TableStore::Live(_) => {
                        // Unreachable given the arm — both variants expose
                        // segments — but routed through the error path
                        // rather than a panic (P001).
                        let Some(st) = store.as_sharded() else {
                            debug_assert!(false, "sharded/live store must expose segments");
                            return Err(TableError::Io(
                                "store lost its segment view mid-scan".to_owned(),
                            ));
                        };
                        sdd_core::try_covered_rows_sharded(st, &rule)?
                    }
                };
                for row in covered {
                    res.offer_keyed(row, key);
                }
                let scale = res.scale();
                let (rows, seen) = res.into_parts();
                Ok::<_, TableError>((rows, seen, scale))
            })
            .into_iter()
            .collect::<Result<_, _>>()?;

        // Replace any existing sample whose filter is re-requested, then
        // make room for the whole batch against the *pre-existing* store
        // only. Pushes come last, so indices recorded here stay stable.
        self.samples
            .retain(|s| !dedup.iter().any(|(rule, _)| s.filter == *rule));
        let incoming: usize = drawn.iter().map(|(rows, _, _)| rows.len()).sum();
        self.ensure_room(incoming);

        let base = self.samples.len();
        for ((rule, target), (rows, seen, scale)) in dedup.iter().zip(drawn) {
            let exact = seen as usize == rows.len();
            let local = match self.store.as_sharded() {
                None => None,
                Some(st) => Some(Arc::new(st.try_gather_rows(&rows)?)),
            };
            self.samples.push(StoredSample {
                filter: rule.clone(),
                rows,
                local,
                scale,
                exact,
                seen,
                target: *target,
                last_used: self.clock,
            });
        }
        Ok(slot.into_iter().map(|s| base + s).collect())
    }

    /// Evicts least-recently-used samples until `incoming` more tuples fit.
    /// Called before a batch's pushes (see [`SampleHandler::scan_and_store`]),
    /// so only samples predating the batch are ever candidates.
    fn ensure_room(&mut self, incoming: usize) {
        while self.memory_used() + incoming > self.config.capacity && !self.samples.is_empty() {
            // The loop guard keeps `samples` non-empty, so a victim always
            // exists; `break` instead of panicking if that ever broke (P001).
            let Some(lru) = self
                .samples
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            self.samples.remove(lru);
            self.stats.evictions += 1;
        }
    }

    /// Builds the §4.1 allocation problem for a parent rule and its likely
    /// next drill-downs.
    pub fn plan(&self, entries: &[PrefetchEntry]) -> AllocationProblem {
        let mut parent = vec![None];
        let mut prob = vec![0.0];
        let mut selectivity = vec![1.0];
        parent.extend(std::iter::repeat_n(Some(0), entries.len()));
        prob.extend(entries.iter().map(|e| e.probability));
        selectivity.extend(entries.iter().map(|e| e.selectivity));
        AllocationProblem {
            parent,
            prob,
            selectivity,
            capacity: self.config.capacity,
            min_ss: self.config.min_sample_size,
        }
    }

    /// Solves an allocation problem with the configured strategy.
    pub fn solve_allocation(&self, problem: &AllocationProblem) -> Allocation {
        match self.config.strategy {
            AllocationStrategy::Dp => solve_dp(problem),
            AllocationStrategy::Convex => solve_convex(problem),
            AllocationStrategy::Uniform => solve_uniform(problem),
        }
    }

    /// Pre-fetches samples for the likely next drill-downs under `parent`
    /// (paper §4.3, "Pre-fetching"): solves the allocation problem, then
    /// materializes every planned sample in **one** scan.
    ///
    /// Returns the hit probability the allocator expects for the next
    /// drill-down. Infallible wrapper over [`SampleHandler::try_prefetch`].
    pub fn prefetch(&mut self, parent: &Rule, entries: &[PrefetchEntry]) -> f64 {
        self.try_prefetch(parent, entries)
            // sdd-lint: allow(P001) the infallible wrapper's contract is to panic; serve paths use try_prefetch
            .expect("shard spill file must decode (written by this table)")
    }

    /// Fallible [`SampleHandler::prefetch`].
    pub fn try_prefetch(
        &mut self,
        parent: &Rule,
        entries: &[PrefetchEntry],
    ) -> Result<f64, TableError> {
        self.clock += 1;
        let problem = self.plan(entries);
        let alloc = self.solve_allocation(&problem);

        let mut requests: Vec<(Rule, usize)> = Vec::new();
        if alloc.sizes[0] > 0 {
            requests.push((parent.clone(), alloc.sizes[0]));
        }
        for (e, &size) in entries.iter().zip(&alloc.sizes[1..]) {
            if size > 0 {
                requests.push((e.rule.clone(), size));
            }
        }
        if !requests.is_empty() {
            self.stats.full_scans += 1;
            self.scan_and_store(&requests)?;
        }
        Ok(alloc.value)
    }

    /// Runs a handed-off [`PrefetchJob`] — the background half of §4.3's
    /// pre-fetching. Equivalent to calling [`SampleHandler::prefetch`] with
    /// the job's fields: which thread executes the job does not change the
    /// stored samples, only *when* the work happens relative to the
    /// analyst's think-time.
    pub fn run_prefetch_job(&mut self, job: &PrefetchJob) -> f64 {
        self.prefetch(&job.parent, &job.entries)
    }

    /// Fallible [`SampleHandler::run_prefetch_job`].
    pub fn try_run_prefetch_job(&mut self, job: &PrefetchJob) -> Result<f64, TableError> {
        self.try_prefetch(&job.parent, &job.entries)
    }

    /// The epoch this handler's store is pinned to (`0` for frozen stores).
    pub fn pinned_epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// Advances a live handler to `snap`'s epoch — §4.3's dynamic
    /// maintenance extended across **data** changes. Every stored reservoir
    /// is maintained *incrementally*: only the appended row range
    /// (`old epoch's rows .. snap's rows`) is scanned
    /// ([`sdd_core::try_covered_rows_sharded_range`]) and offered into the
    /// reservoir resumed from its stored `(items, seen, target)`. Draws are
    /// keyed by offer index ([`Reservoir::offer_keyed`]), so the result is
    /// bit-identical to discarding the sample and re-scanning the whole
    /// table at the new epoch. Every sample's materialized local table is
    /// re-gathered against the new epoch's dictionaries (Combine's pooling
    /// requires all sources to share dictionary lengths).
    ///
    /// No-op for frozen stores and for snapshots at or behind the pinned
    /// epoch (pins never move backwards). On error (spill fault mid-scan)
    /// nothing is committed: samples and pin stay at the old epoch, so a
    /// retry after the fault clears is safe.
    pub fn try_sync_to_snapshot(&mut self, snap: &LiveSnapshot) -> Result<(), TableError> {
        let Some(ls) = self.store.as_live() else {
            return Ok(());
        };
        if snap.epoch <= ls.epoch() {
            return Ok(());
        }
        // `epoch_rows` always carries entry 0 (the empty epoch), so a
        // missing tail can only mean "no rows yet" — exactly what 0 says.
        let old_rows = ls.pinned().epoch_rows.last().copied().unwrap_or(0);
        let new_rows = snap.epoch_rows.last().copied().unwrap_or(0);
        let st = Arc::clone(&snap.table);
        let seed = self.config.seed;

        // Stage every update, then commit atomically: a fault mid-sync
        // must not leave some reservoirs advanced past the pinned epoch
        // (a retry would then offer the same rows twice).
        let mut updated: Vec<StoredSample> = Vec::with_capacity(self.samples.len());
        for s in &self.samples {
            let mut ns = s.clone();
            if new_rows > old_rows {
                let covered =
                    sdd_core::try_covered_rows_sharded_range(&st, &ns.filter, old_rows..new_rows)?;
                if !covered.is_empty() {
                    let key = sample_seed(seed, &ns.filter);
                    let mut res =
                        Reservoir::from_parts(std::mem::take(&mut ns.rows), ns.seen, ns.target);
                    for row in covered {
                        res.offer_keyed(row, key);
                    }
                    ns.scale = res.scale();
                    let (rows, seen) = res.into_parts();
                    ns.exact = seen as usize == rows.len();
                    ns.rows = rows;
                    ns.seen = seen;
                }
            }
            // Re-gather at the new epoch unconditionally — the old local
            // shares the old header's (shorter) dictionaries.
            ns.local = Some(Arc::new(st.try_gather_rows(&ns.rows)?));
            updated.push(ns);
        }
        self.samples = updated;
        // The entry guard already proved the store is live; route the
        // impossible miss through debug_assert instead of a panic (P001).
        let Some(ls) = self.store.as_live_mut() else {
            debug_assert!(false, "live store checked at entry");
            return Ok(());
        };
        ls.pin(snap.clone());
        Ok(())
    }

    /// Drops every stored sample (used by experiments to reset state).
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::rule_count;
    use sdd_datagen::retail;

    fn handler(table: &Arc<Table>) -> SampleHandler {
        SampleHandler::new(
            table.clone(),
            SampleHandlerConfig {
                capacity: 5_000,
                min_sample_size: 500,
                seed: 7,
                strategy: AllocationStrategy::Dp,
            },
        )
    }

    #[test]
    fn first_request_creates_then_finds() {
        let t = Arc::new(retail(1));
        let mut h = handler(&t);
        let trivial = Rule::trivial(3);
        let a = h.get_sample(&trivial);
        assert_eq!(a.mechanism, FetchMechanism::Create);
        assert_eq!(a.view.len(), 500);
        let b = h.get_sample(&trivial);
        assert_eq!(b.mechanism, FetchMechanism::Find);
        assert_eq!(h.stats.full_scans, 1);
    }

    #[test]
    fn sample_counts_estimate_true_counts() {
        let t = Arc::new(retail(1));
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 20_000,
                min_sample_size: 2_000,
                seed: 3,
                strategy: AllocationStrategy::Dp,
            },
        );
        let trivial = Rule::trivial(3);
        let s = h.get_sample(&trivial);
        // Estimated total = Σ weights ≈ 6000.
        let est = s.view.total_weight();
        assert!((est - 6000.0).abs() < 1.0, "total estimate {est}");
        // Estimated Walmart count within 20% of 1000.
        let walmart = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
        let est_w: f64 = s
            .view
            .iter()
            .filter(|wr| walmart.covers_row(&t, wr.row))
            .map(|wr| wr.weight)
            .sum();
        let truth = rule_count(&t.view(), &walmart);
        assert!(
            (est_w - truth).abs() / truth < 0.2,
            "estimate {est_w} vs truth {truth}"
        );
    }

    #[test]
    fn combine_pools_sub_rule_samples() {
        let t = Arc::new(retail(1));
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 50_000,
                min_sample_size: 200,
                seed: 11,
                strategy: AllocationStrategy::Dp,
            },
        );
        // Seed a big sample of the trivial rule directly in the store.
        let trivial = Rule::trivial(3);
        h.scan_and_store(&[(trivial.clone(), 4000)]).unwrap();
        // Now a Walmart request should combine from the trivial sample:
        // 4000 of 6000 rows → ~666 Walmart rows ≥ minSS 200.
        let walmart = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
        let s = h.get_sample(&walmart);
        assert_eq!(s.mechanism, FetchMechanism::Combine);
        assert_eq!(h.stats.creates, 0); // no disk pass triggered by the request
                                        // Unbiased: estimated Walmart count ≈ 1000.
        let est = s.view.total_weight();
        assert!((est - 1000.0).abs() < 200.0, "estimate {est}");
    }

    #[test]
    fn combine_falls_back_to_create_when_starved() {
        let t = Arc::new(retail(1));
        let mut h = handler(&t); // minSS 500
                                 // Seed a small trivial sample (600): Walmart-covered portion ≈ 100
                                 // < minSS → must Create.
        h.scan_and_store(&[(Rule::trivial(3), 600)]).unwrap();
        let walmart = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
        let s = h.get_sample(&walmart);
        assert_eq!(s.mechanism, FetchMechanism::Create);
        assert_eq!(s.view.len(), 500);
    }

    #[test]
    fn create_on_rare_rule_returns_all_covered_tuples() {
        let t = Arc::new(retail(1));
        let mut h = handler(&t);
        // (Walmart, cookies) covers only 200 < minSS 500: Create returns all
        // of them at scale 1.
        let r = Rule::from_pairs(&t, &[("Store", "Walmart"), ("Product", "cookies")]).unwrap();
        let s = h.get_sample(&r);
        assert_eq!(s.mechanism, FetchMechanism::Create);
        assert_eq!(s.view.len(), 200);
        assert!((s.scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_respected_with_eviction() {
        let t = Arc::new(retail(1));
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 1_200,
                min_sample_size: 500,
                seed: 5,
                strategy: AllocationStrategy::Dp,
            },
        );
        let rules = [
            Rule::trivial(3),
            Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap(),
            Rule::from_pairs(&t, &[("Region", "MA-3")]).unwrap(),
        ];
        for r in &rules {
            let _ = h.get_sample(r);
        }
        assert!(h.memory_used() <= 1_200);
        assert!(h.stats.evictions > 0);
    }

    #[test]
    fn prefetch_enables_later_find_or_combine() {
        let t = Arc::new(retail(1));
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 20_000,
                min_sample_size: 500,
                seed: 13,
                strategy: AllocationStrategy::Dp,
            },
        );
        let walmart = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
        let target = Rule::from_pairs(&t, &[("Store", "Target")]).unwrap();
        let hit = h.prefetch(
            &Rule::trivial(3),
            &[
                PrefetchEntry {
                    rule: walmart.clone(),
                    probability: 0.5,
                    selectivity: 1000.0 / 6000.0,
                },
                PrefetchEntry {
                    rule: target.clone(),
                    probability: 0.5,
                    selectivity: 200.0 / 6000.0,
                },
            ],
        );
        assert!(hit > 0.99, "allocator should serve both: {hit}");
        let scans_after_prefetch = h.stats.full_scans;
        let s1 = h.get_sample(&walmart);
        let s2 = h.get_sample(&target);
        assert_ne!(s1.mechanism, FetchMechanism::Create);
        assert_ne!(s2.mechanism, FetchMechanism::Create);
        assert_eq!(h.stats.full_scans, scans_after_prefetch);
    }

    /// 10×(w, ...) rows of which `n_wc` are (w, c), then 20×(t, x) rows.
    fn wc_table(n_wc: usize) -> Arc<Table> {
        let mut rows: Vec<[&str; 2]> = Vec::new();
        for i in 0..10 {
            rows.push(["w", if i < n_wc { "c" } else { "d" }]);
        }
        rows.extend(std::iter::repeat_n(["t", "x"], 20));
        Arc::new(
            Table::from_rows(sdd_table::Schema::new(["Store", "Product"]).unwrap(), &rows).unwrap(),
        )
    }

    #[test]
    fn combine_counts_zero_row_contributors_in_rate_sum() {
        // Regression for the biased-Combine bug: a qualifying sub-rule
        // sample with zero rule-covered rows must still contribute `1/N_s`
        // to the pooled rate, else the scale (and every estimate) inflates.
        let t = wc_table(1);
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 100,
                min_sample_size: 1,
                seed: 1,
                strategy: AllocationStrategy::Dp,
            },
        );
        let target = Rule::from_pairs(&t, &[("Store", "w"), ("Product", "c")]).unwrap();
        // A: trivial-filter sample holding the one (w, c) row, rate 1/2.
        h.samples.push(StoredSample {
            filter: Rule::trivial(2),
            rows: vec![0, 10, 11],
            local: None,
            scale: 2.0,
            exact: false,
            seen: 6,
            target: 3,
            last_used: 0,
        });
        // B: (Store = w) is a sub-rule of the target but this draw caught
        // only non-c rows — its rate 1/4 must still count.
        h.samples.push(StoredSample {
            filter: Rule::from_pairs(&t, &[("Store", "w")]).unwrap(),
            rows: vec![1, 2],
            local: None,
            scale: 4.0,
            exact: false,
            seen: 8,
            target: 2,
            last_used: 0,
        });
        let s = h.get_sample(&target);
        assert_eq!(s.mechanism, FetchMechanism::Combine);
        // rate_sum = 1/2 + 1/4 → scale 4/3 (the buggy code returned 2).
        assert!((s.scale - 4.0 / 3.0).abs() < 1e-12, "scale {}", s.scale);
        assert_eq!(s.view.len(), 1);
        assert!((s.view.total_weight() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn combine_estimate_is_unbiased_over_seeds() {
        // Statistical check: with an exact (w) sample and a varying trivial
        // half-sample, the Combine estimate of count(w, c) must average to
        // the truth (2). The pre-fix code dropped the trivial sample's rate
        // whenever its draw held no (w, c) row (~24% of seeds), biasing the
        // mean up to ≈ 2.16.
        let t = wc_table(2);
        let w = Rule::from_pairs(&t, &[("Store", "w")]).unwrap();
        let target = Rule::from_pairs(&t, &[("Store", "w"), ("Product", "c")]).unwrap();
        let trials = 2000u64;
        let mut sum = 0.0f64;
        for seed in 0..trials {
            let mut h = SampleHandler::new(
                t.clone(),
                SampleHandlerConfig {
                    capacity: 100,
                    min_sample_size: 1,
                    seed,
                    strategy: AllocationStrategy::Dp,
                },
            );
            h.scan_and_store(&[(w.clone(), 10)]).unwrap(); // exact, rate 1
            h.scan_and_store(&[(Rule::trivial(2), 15)]).unwrap(); // rate 1/2
            let s = h.get_sample(&target);
            assert_eq!(s.mechanism, FetchMechanism::Combine, "seed {seed}");
            sum += s.view.total_weight();
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - 2.0).abs() < 0.08,
            "Combine estimate biased: mean {mean} vs truth 2"
        );
    }

    /// 2000×(a) + 2000×(b) rows, one column.
    fn ab_table() -> Arc<Table> {
        let mut rows: Vec<[&str; 1]> = Vec::new();
        rows.extend(std::iter::repeat_n(["a"], 2000));
        rows.extend(std::iter::repeat_n(["b"], 2000));
        Arc::new(Table::from_rows(sdd_table::Schema::new(["A"]).unwrap(), &rows).unwrap())
    }

    #[test]
    fn drained_sample_contributes_no_rate_to_combine() {
        // Edge path surfaced by the randomized sharded runs: a stored
        // sample with an infinite scale (a drained zero-capacity reservoir
        // — it saw tuples but can represent none) must contribute neither
        // rows nor rate to a Combine. Before the explicit guard this relied
        // on `1/∞ == 0`; the guard also keeps a NaN out of `rate_sum` for
        // any future degenerate scale and skips the bogus `last_used` bump.
        let t = wc_table(2);
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 100,
                min_sample_size: 1,
                seed: 3,
                strategy: AllocationStrategy::Dp,
            },
        );
        let w = Rule::from_pairs(&t, &[("Store", "w")]).unwrap();
        h.scan_and_store(&[(w.clone(), 10)]).unwrap(); // exact (w) sample, rate 1
        h.samples.push(StoredSample {
            filter: Rule::trivial(2),
            rows: vec![],
            local: None,
            scale: f64::INFINITY,
            exact: false,
            seen: 5,
            target: 0,
            last_used: 0,
        });
        let target = Rule::from_pairs(&t, &[("Store", "w"), ("Product", "c")]).unwrap();
        let s = h.get_sample(&target);
        assert_eq!(s.mechanism, FetchMechanism::Combine);
        // Only the exact (w) sample contributes: rate_sum = 1 → scale 1,
        // and the estimate equals the true count 2.
        assert!((s.scale - 1.0).abs() < 1e-12, "scale {}", s.scale);
        assert!((s.view.total_weight() - 2.0).abs() < 1e-12);
        assert!(s.scale.is_finite() && !s.scale.is_nan());
    }

    #[test]
    fn rehydrated_sample_after_eviction_never_double_counts_rates() {
        // A sample evicted under memory pressure and later re-created
        // ("rehydrated") must appear in the store exactly once, so a
        // Combine counts its rate exactly once. The store invariant is one
        // sample per filter (same-filter replacement before push), so the
        // rate sum after evict → re-create equals the fresh-store rate sum.
        let t = ab_table();
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 2_000,
                min_sample_size: 100,
                seed: 21,
                strategy: AllocationStrategy::Dp,
            },
        );
        let trivial = Rule::trivial(1);
        let ra = Rule::from_pairs(&t, &[("A", "a")]).unwrap();
        h.scan_and_store(&[(trivial.clone(), 1_000)]).unwrap(); // rate 1/4
                                                                // Evict the trivial sample by filling the store past capacity …
        h.scan_and_store(&[(ra.clone(), 1_200)]).unwrap();
        assert!(h.samples.iter().all(|s| s.filter != trivial));
        // … then rehydrate it (twice — the second must replace, not stack).
        h.scan_and_store(&[(trivial.clone(), 1_000)]).unwrap();
        h.scan_and_store(&[(trivial.clone(), 1_000)]).unwrap();
        assert_eq!(
            h.samples.iter().filter(|s| s.filter == trivial).count(),
            1,
            "rehydration must not duplicate the sample"
        );
        let s = h.get_sample(&ra);
        assert_eq!(s.mechanism, FetchMechanism::Combine);
        // Contributors: the exact-ish (a) sample isn't stored any more
        // (evicted by the rehydrations? capacity 2000 holds 1000 + 1200 is
        // over — LRU evicted the (a) sample), so compute the expected rate
        // from the store directly and check the served scale matches it.
        let expected_rate: f64 = h
            .samples
            .iter()
            .filter(|st| st.filter.is_sub_rule_of(&ra))
            .map(|st| 1.0 / st.scale)
            .sum();
        assert!((s.scale - 1.0 / expected_rate).abs() < 1e-12);
        // And the estimate is in the right ballpark of the truth (2000).
        assert!((s.view.total_weight() - 2000.0).abs() < 400.0);
    }

    #[test]
    fn scan_and_store_indices_survive_mid_batch_eviction() {
        // Regression for the stale-index bug: storing a batch while LRU
        // eviction removes a pre-existing sample must not invalidate the
        // indices of batch members stored before the eviction fired.
        let t = ab_table();
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 1_500,
                min_sample_size: 500,
                seed: 9,
                strategy: AllocationStrategy::Dp,
            },
        );
        let trivial = Rule::trivial(1);
        let ra = Rule::from_pairs(&t, &[("A", "a")]).unwrap();
        let rb = Rule::from_pairs(&t, &[("A", "b")]).unwrap();
        h.scan_and_store(&[(trivial.clone(), 500)]).unwrap(); // pre-existing LRU victim
        let batch = [(ra.clone(), 600), (rb.clone(), 600)];
        let indices = h.scan_and_store(&batch).unwrap();
        // 500 + 1200 > 1500: the trivial sample must be evicted — and every
        // returned index must still point at its own request's sample.
        assert!(h.stats.evictions > 0);
        assert!(h.memory_used() <= 1_500);
        for ((rule, size), &idx) in batch.iter().zip(&indices) {
            assert_eq!(
                h.samples[idx].filter, *rule,
                "stale store index after mid-batch eviction"
            );
            assert_eq!(h.samples[idx].rows.len(), *size);
        }
        assert!(h.samples.iter().all(|s| s.filter != trivial));
    }

    #[test]
    fn batch_members_are_never_evicted_by_their_own_batch() {
        // Three 600-tuple samples against capacity 1500: the historical
        // per-push eviction would evict the first batch member to admit the
        // third. A batch is stored atomically instead (the prefetch
        // allocator never plans past capacity; a direct oversized batch
        // overshoots transiently rather than silently dropping members).
        let t = ab_table();
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 1_500,
                min_sample_size: 500,
                seed: 9,
                strategy: AllocationStrategy::Dp,
            },
        );
        let trivial = Rule::trivial(1);
        let ra = Rule::from_pairs(&t, &[("A", "a")]).unwrap();
        let rb = Rule::from_pairs(&t, &[("A", "b")]).unwrap();
        let batch = [(ra, 600), (rb, 600), (trivial, 600)];
        let indices = h.scan_and_store(&batch).unwrap();
        assert_eq!(h.n_samples(), 3, "a batch must not evict its own members");
        for ((rule, _), &idx) in batch.iter().zip(&indices) {
            assert_eq!(h.samples[idx].filter, *rule);
        }
    }

    #[test]
    fn duplicate_filter_requests_in_one_batch_store_once() {
        // The store invariant is one sample per filter: a batch repeating a
        // rule must store a single sample (last target size wins, matching
        // the historical per-push replacement) and point both returned
        // indices at it.
        let t = ab_table();
        let mut h = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 4_000,
                min_sample_size: 500,
                seed: 9,
                strategy: AllocationStrategy::Dp,
            },
        );
        let ra = Rule::from_pairs(&t, &[("A", "a")]).unwrap();
        let indices = h
            .scan_and_store(&[(ra.clone(), 600), (ra.clone(), 800)])
            .unwrap();
        assert_eq!(h.n_samples(), 1, "duplicate filters must collapse");
        assert_eq!(indices, vec![0, 0]);
        assert_eq!(h.samples[0].rows.len(), 800);
        assert_eq!(h.memory_used(), 800);
    }

    #[test]
    fn create_is_reproducible_across_thread_counts() {
        // The per-rule derived seed makes stored samples a function of
        // (config.seed, rule) only — never of scan scheduling.
        let t = Arc::new(retail(1));
        let walmart = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
        let draw = |threads: &str| {
            std::env::set_var("SDD_THREADS", threads);
            let mut h = handler(&t);
            let s = h.get_sample(&walmart);
            std::env::remove_var("SDD_THREADS");
            s.view.row_ids().unwrap().to_vec()
        };
        assert_eq!(draw("1"), draw("7"));
    }

    /// Rows `lo..hi` of the deterministic stream used by the live tests.
    fn live_test_rows(lo: usize, hi: usize) -> Vec<[String; 2]> {
        (lo..hi)
            .map(|i| [format!("s{}", i % 4), format!("p{}", i % 7)])
            .collect()
    }

    fn live_handler(store: TableStore, seed: u64) -> SampleHandler {
        SampleHandler::with_store(
            store,
            SampleHandlerConfig {
                capacity: 400,
                min_sample_size: 40,
                seed,
                strategy: AllocationStrategy::Dp,
            },
        )
    }

    /// The tentpole parity pin: maintaining stored reservoirs incrementally
    /// across appends is bit-identical to (a) a full re-create at the final
    /// epoch and (b) a create against a frozen table pre-grown to the same
    /// rows — samples, scales, exactness, and materialized locals all agree.
    #[test]
    fn incremental_maintenance_matches_full_rebuild_and_frozen_pregrown() {
        use sdd_table::{LiveTable, LiveTableConfig};
        let schema = || sdd_table::Schema::new(["Store", "Product"]).unwrap();
        let total = 600usize;
        let rules = |t: &Arc<Table>| {
            vec![
                Rule::trivial(2),
                Rule::from_pairs(t, &[("Store", "s1")]).unwrap(),
                Rule::from_pairs(t, &[("Store", "s2"), ("Product", "p3")]).unwrap(),
            ]
        };

        for seed in [7u64, 21] {
            // Incrementally grown + incrementally maintained handler.
            let live = Arc::new(
                LiveTable::new(schema(), vec![], &LiveTableConfig::in_memory(64)).unwrap(),
            );
            live.try_append(&live_test_rows(0, 150), &[]).unwrap();
            let mut inc = live_handler(TableStore::from(Arc::clone(&live)), seed);
            let header = inc.table().clone();
            for r in rules(&header) {
                let _ = inc.try_get_sample(&r).unwrap();
            }
            for (lo, hi) in [(150, 151), (151, 400), (400, 400), (400, total)] {
                let snap = live.try_append(&live_test_rows(lo, hi), &[]).unwrap();
                inc.try_sync_to_snapshot(&snap).unwrap();
            }
            assert_eq!(inc.pinned_epoch(), 5);

            // Full rebuild at the final epoch: a fresh handler, same rules.
            let mut rebuilt = live_handler(TableStore::from(Arc::clone(&live)), seed);
            for r in rules(&header) {
                let _ = rebuilt.try_get_sample(&r).unwrap();
            }

            // Frozen pre-grown table with the same rows.
            let frozen = Arc::new(Table::from_rows(schema(), &live_test_rows(0, total)).unwrap());
            let mut cold = live_handler(TableStore::Whole(Arc::clone(&frozen)), seed);
            for r in rules(&header) {
                let _ = cold.try_get_sample(&r).unwrap();
            }

            let a = inc.stored_samples();
            let b = rebuilt.stored_samples();
            let c = cold.stored_samples();
            assert_eq!(a, b, "incremental vs full rebuild (seed {seed})");
            assert_eq!(a, c, "incremental vs frozen pre-grown (seed {seed})");
            // The maintained locals serve the same tuples the frozen store
            // serves (global codes agree because intern order agrees).
            for (s, f) in a.iter().zip(&c) {
                assert_eq!(s.rows, f.rows);
                assert!(s.scale.to_bits() == f.scale.to_bits());
            }
        }
    }

    #[test]
    fn sync_is_monotonic_and_frozen_stores_ignore_it() {
        use sdd_table::{LiveTable, LiveTableConfig};
        let schema = sdd_table::Schema::new(["Store", "Product"]).unwrap();
        let live =
            Arc::new(LiveTable::new(schema, vec![], &LiveTableConfig::in_memory(16)).unwrap());
        let old = live.try_append(&live_test_rows(0, 100), &[]).unwrap();
        let mut h = live_handler(TableStore::from(Arc::clone(&live)), 3);
        let trivial = Rule::trivial(2);
        let _ = h.try_get_sample(&trivial).unwrap();
        let newer = live.try_append(&live_test_rows(100, 130), &[]).unwrap();
        h.try_sync_to_snapshot(&newer).unwrap();
        let after = h.stored_samples();
        // Re-syncing to the same or an older snapshot changes nothing.
        h.try_sync_to_snapshot(&newer).unwrap();
        h.try_sync_to_snapshot(&old).unwrap();
        assert_eq!(h.stored_samples(), after);
        assert_eq!(h.pinned_epoch(), 2);

        // Frozen handlers ignore syncs entirely.
        let frozen = Arc::new(
            Table::from_rows(
                sdd_table::Schema::new(["Store", "Product"]).unwrap(),
                &live_test_rows(0, 50),
            )
            .unwrap(),
        );
        let mut fh = live_handler(TableStore::Whole(frozen), 3);
        let _ = fh.try_get_sample(&trivial).unwrap();
        let before = fh.stored_samples();
        fh.try_sync_to_snapshot(&newer).unwrap();
        assert_eq!(fh.stored_samples(), before);
        assert_eq!(fh.pinned_epoch(), 0);
    }

    #[test]
    fn combine_works_across_epochs_after_sync() {
        // The re-gather-on-sync invariant: after appends introduce new
        // dictionary values, pooling stored samples (gather_multi) must not
        // trip its dictionary-length assertion, and estimates stay sane.
        use sdd_table::{LiveTable, LiveTableConfig};
        let schema = sdd_table::Schema::new(["Store", "Product"]).unwrap();
        let live =
            Arc::new(LiveTable::new(schema, vec![], &LiveTableConfig::in_memory(32)).unwrap());
        live.try_append(&live_test_rows(0, 200), &[]).unwrap();
        let mut h = SampleHandler::with_store(
            TableStore::from(Arc::clone(&live)),
            SampleHandlerConfig {
                capacity: 1_000,
                min_sample_size: 10,
                seed: 5,
                strategy: AllocationStrategy::Dp,
            },
        );
        let header = h.table().clone();
        let trivial = Rule::trivial(2);
        h.scan_and_store(&[(trivial.clone(), 160)]).unwrap();
        // Appended rows use a brand-new Store value, growing the dicts.
        let extra: Vec<[String; 2]> = (0..40)
            .map(|i| ["sNEW".to_owned(), format!("p{}", i % 7)])
            .collect();
        let snap = live.try_append(&extra, &[]).unwrap();
        h.try_sync_to_snapshot(&snap).unwrap();
        let s1 = Rule::from_pairs(&header, &[("Store", "s1")]).unwrap();
        let s = h.try_get_sample(&s1).unwrap();
        assert_eq!(s.mechanism, FetchMechanism::Combine);
        // True count of s1 rows: 50 in the first 200 (i % 4 == 1).
        let est = s.view.total_weight();
        assert!((est - 50.0).abs() < 25.0, "estimate {est}");
    }

    #[test]
    fn clear_resets_store() {
        let t = Arc::new(retail(1));
        let mut h = handler(&t);
        let _ = h.get_sample(&Rule::trivial(3));
        assert!(h.n_samples() > 0);
        h.clear();
        assert_eq!(h.n_samples(), 0);
        assert_eq!(h.memory_used(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must hold")]
    fn capacity_below_minss_rejected() {
        let t = Arc::new(retail(1));
        let _ = SampleHandler::new(
            t.clone(),
            SampleHandlerConfig {
                capacity: 100,
                min_sample_size: 500,
                seed: 1,
                strategy: AllocationStrategy::Dp,
            },
        );
    }
}
