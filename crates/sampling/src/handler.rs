//! The SampleHandler (paper §4.3): creates, maintains, retrieves, and
//! evicts in-memory samples in response to drill-down requests.
//!
//! Given a rule `r` the handler returns a uniform sample of `T_r` with at
//! least `minSS` tuples, via the cheapest applicable mechanism:
//!
//! 1. **Find** — an existing sample whose filter is exactly `r` and which is
//!    large enough.
//! 2. **Combine** — pool the `r`-covered tuples of every sample whose filter
//!    is a *sub-rule* of `r`. Each pooled tuple carries the weight
//!    `1 / Σ_s (1/N_s)` so estimates remain unbiased even when the sources
//!    were drawn at different rates (each covered tuple appears in source
//!    `s` with probability `1/N_s` independently).
//! 3. **Create** — a full pass over the table (the expensive case the
//!    allocator tries to avoid), using reservoir sampling.
//!
//! [`SampleHandler::prefetch`] implements §4.3's background pre-fetching:
//! given the rules the analyst may drill into next and their probabilities,
//! it solves the allocation problem (§4.1/§4.2) and materializes all
//! planned samples in a single scan.

use crate::alloc::{solve_uniform, Allocation, AllocationProblem, AllocationStrategy};
use crate::alloc_convex::solve_convex;
use crate::alloc_dp::solve_dp;
use crate::reservoir::Reservoir;
use rand::{rngs::StdRng, SeedableRng};
use sdd_core::Rule;
use sdd_table::{RowId, Table, TableView};

/// Configuration of a [`SampleHandler`].
#[derive(Debug, Clone)]
pub struct SampleHandlerConfig {
    /// Memory capacity `M`: total tuples across all stored samples.
    pub capacity: usize,
    /// `minSS`: minimum tuples required to run BRS without a disk pass.
    pub min_sample_size: usize,
    /// RNG seed (sampling is deterministic per seed).
    pub seed: u64,
    /// Which allocation solver [`SampleHandler::prefetch`] uses.
    pub strategy: AllocationStrategy,
}

impl Default for SampleHandlerConfig {
    /// The paper's experimental settings: `M = 50000`, `minSS = 5000`.
    fn default() -> Self {
        Self {
            capacity: 50_000,
            min_sample_size: 5_000,
            seed: 0xD2_11,
            strategy: AllocationStrategy::Dp,
        }
    }
}

/// How a requested sample was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchMechanism {
    /// Served verbatim from a stored sample with the same filter.
    Find,
    /// Pooled from stored samples with sub-rule filters.
    Combine,
    /// Required a full table scan.
    Create,
}

/// A sample returned to the caller, ready to feed into BRS.
#[derive(Debug, Clone)]
pub struct SampleView<'t> {
    /// The tuples, weighted so that BRS counts are full-table estimates.
    pub view: TableView<'t>,
    /// Which mechanism produced it.
    pub mechanism: FetchMechanism,
    /// The effective scale factor (for confidence intervals).
    pub scale: f64,
}

/// Work counters (exposed for the experiments of §5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandlerStats {
    /// Requests served by Find.
    pub finds: usize,
    /// Requests served by Combine.
    pub combines: usize,
    /// Requests served by Create.
    pub creates: usize,
    /// Full passes over the table (Create + prefetch scans).
    pub full_scans: usize,
    /// Samples evicted to respect the memory cap.
    pub evictions: usize,
}

#[derive(Debug, Clone)]
struct StoredSample {
    filter: Rule,
    rows: Vec<RowId>,
    /// `N_s`: covered-population count / sample size.
    scale: f64,
    /// True when the sample holds *every* covered tuple (the rule covers
    /// fewer tuples than the reservoir's capacity) — exact, no `minSS`
    /// requirement applies.
    exact: bool,
    last_used: u64,
}

/// One next-drill-down candidate for [`SampleHandler::prefetch`].
#[derive(Debug, Clone)]
pub struct PrefetchEntry {
    /// The rule the analyst may drill into.
    pub rule: Rule,
    /// Probability of that drill-down (uniform or learned, §4.1).
    pub probability: f64,
    /// `S(parent, rule)`: fraction of parent-covered tuples this rule
    /// covers. Estimated from displayed counts.
    pub selectivity: f64,
}

/// The sample manager. See module docs.
pub struct SampleHandler<'t> {
    table: &'t Table,
    config: SampleHandlerConfig,
    samples: Vec<StoredSample>,
    clock: u64,
    rng: StdRng,
    /// Work counters.
    pub stats: HandlerStats,
}

impl<'t> SampleHandler<'t> {
    /// Creates a handler over `table`.
    pub fn new(table: &'t Table, config: SampleHandlerConfig) -> Self {
        assert!(config.min_sample_size > 0, "minSS must be positive");
        assert!(
            config.capacity >= config.min_sample_size,
            "capacity must hold at least one minimum-size sample"
        );
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            table,
            config,
            samples: Vec::new(),
            clock: 0,
            rng,
            stats: HandlerStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SampleHandlerConfig {
        &self.config
    }

    /// Total tuples currently stored.
    pub fn memory_used(&self) -> usize {
        self.samples.iter().map(|s| s.rows.len()).sum()
    }

    /// Number of stored samples.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }

    /// Returns a (weighted) sample of the tuples covered by `rule`, at least
    /// `minSS` tuples when the data allows, trying Find → Combine → Create.
    pub fn get_sample(&mut self, rule: &Rule) -> SampleView<'t> {
        self.clock += 1;
        let min_ss = self.config.min_sample_size;

        // --- Find --- (an exact sample serves any request regardless of
        // minSS: it already holds every covered tuple).
        if let Some(idx) = self
            .samples
            .iter()
            .position(|s| s.filter == *rule && (s.rows.len() >= min_ss || s.exact))
        {
            self.samples[idx].last_used = self.clock;
            let s = &self.samples[idx];
            self.stats.finds += 1;
            let weights = vec![s.scale; s.rows.len()];
            return SampleView {
                view: TableView::with_rows_and_weights(self.table, s.rows.clone(), weights),
                mechanism: FetchMechanism::Find,
                scale: s.scale,
            };
        }

        // --- Combine ---
        if let Some(sv) = self.try_combine(rule) {
            self.stats.combines += 1;
            return sv;
        }

        // --- Create ---
        self.stats.creates += 1;
        let target = min_ss;
        let stored = self.create_sample(rule, target);
        let s = &self.samples[stored];
        let weights = vec![s.scale; s.rows.len()];
        SampleView {
            view: TableView::with_rows_and_weights(self.table, s.rows.clone(), weights),
            mechanism: FetchMechanism::Create,
            scale: s.scale,
        }
    }

    fn try_combine(&mut self, rule: &Rule) -> Option<SampleView<'t>> {
        let min_ss = self.config.min_sample_size;
        let mut rows: Vec<RowId> = Vec::new();
        let mut rate_sum = 0.0f64; // Σ 1/N_s over contributing samples
        let mut used: Vec<usize> = Vec::new();
        for (i, s) in self.samples.iter().enumerate() {
            if !s.filter.is_sub_rule_of(rule) {
                continue;
            }
            let before = rows.len();
            rows.extend(
                s.rows
                    .iter()
                    .copied()
                    .filter(|&r| rule.covers_row(self.table, r)),
            );
            if rows.len() > before || s.filter == *rule {
                rate_sum += 1.0 / s.scale;
                used.push(i);
            }
        }
        if rows.len() < min_ss || rate_sum <= 0.0 {
            return None;
        }
        for &i in &used {
            self.samples[i].last_used = self.clock;
        }
        let scale = 1.0 / rate_sum;
        let weights = vec![scale; rows.len()];
        Some(SampleView {
            view: TableView::with_rows_and_weights(self.table, rows, weights),
            mechanism: FetchMechanism::Combine,
            scale,
        })
    }

    /// Creates (and stores) a reservoir sample for `rule` with the given
    /// target size, scanning the full table once. Returns the store index.
    fn create_sample(&mut self, rule: &Rule, target: usize) -> usize {
        self.stats.full_scans += 1;
        let idx = self.scan_and_store(&[(rule.clone(), target)]);
        idx[0]
    }

    /// The Create phase (§4.3: "it creates a sample of size n_r for each
    /// displayed r"). Rule matching runs column-at-a-time over the
    /// dictionary-encoded column slices ([`sdd_core::covered_rows`]): one
    /// columnar scan per requested rule (materializing that rule's covered
    /// row ids) rather than the historical single row-at-a-time pass
    /// probing every rule against every row — fewer total code compares
    /// for the usual small request batches, at the cost of a transient
    /// `Vec<RowId>` per rule. Counted as one logical full scan in
    /// [`HandlerStats`].
    fn scan_and_store(&mut self, requests: &[(Rule, usize)]) -> Vec<usize> {
        let mut reservoirs: Vec<Reservoir<RowId>> =
            requests.iter().map(|(_, n)| Reservoir::new(*n)).collect();
        for ((rule, _), res) in requests.iter().zip(&mut reservoirs) {
            for row in sdd_core::covered_rows(self.table, rule) {
                res.offer(row, &mut self.rng);
            }
        }
        let mut indices = Vec::with_capacity(requests.len());
        for ((rule, _), res) in requests.iter().zip(reservoirs) {
            let scale = res.scale();
            let (rows, seen) = res.into_parts();
            let exact = seen as usize == rows.len();
            // Replace any existing sample with the same filter.
            self.samples.retain(|s| s.filter != *rule);
            self.ensure_room(rows.len());
            self.samples.push(StoredSample {
                filter: rule.clone(),
                rows,
                scale,
                exact,
                last_used: self.clock,
            });
            indices.push(self.samples.len() - 1);
        }
        indices
    }

    /// Evicts least-recently-used samples until `incoming` more tuples fit.
    fn ensure_room(&mut self, incoming: usize) {
        while self.memory_used() + incoming > self.config.capacity && !self.samples.is_empty() {
            let lru = self
                .samples
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.samples.remove(lru);
            self.stats.evictions += 1;
        }
    }

    /// Builds the §4.1 allocation problem for a parent rule and its likely
    /// next drill-downs.
    pub fn plan(&self, entries: &[PrefetchEntry]) -> AllocationProblem {
        let n = 1 + entries.len();
        let mut parent = vec![None];
        let mut prob = vec![0.0];
        let mut selectivity = vec![1.0];
        parent.extend(std::iter::repeat_n(Some(0), entries.len()));
        prob.extend(entries.iter().map(|e| e.probability));
        selectivity.extend(entries.iter().map(|e| e.selectivity));
        let _ = n;
        AllocationProblem {
            parent,
            prob,
            selectivity,
            capacity: self.config.capacity,
            min_ss: self.config.min_sample_size,
        }
    }

    /// Solves an allocation problem with the configured strategy.
    pub fn solve_allocation(&self, problem: &AllocationProblem) -> Allocation {
        match self.config.strategy {
            AllocationStrategy::Dp => solve_dp(problem),
            AllocationStrategy::Convex => solve_convex(problem),
            AllocationStrategy::Uniform => solve_uniform(problem),
        }
    }

    /// Pre-fetches samples for the likely next drill-downs under `parent`
    /// (paper §4.3, "Pre-fetching"): solves the allocation problem, then
    /// materializes every planned sample in **one** scan.
    ///
    /// Returns the hit probability the allocator expects for the next
    /// drill-down.
    pub fn prefetch(&mut self, parent: &Rule, entries: &[PrefetchEntry]) -> f64 {
        self.clock += 1;
        let problem = self.plan(entries);
        let alloc = self.solve_allocation(&problem);

        let mut requests: Vec<(Rule, usize)> = Vec::new();
        if alloc.sizes[0] > 0 {
            requests.push((parent.clone(), alloc.sizes[0]));
        }
        for (e, &size) in entries.iter().zip(&alloc.sizes[1..]) {
            if size > 0 {
                requests.push((e.rule.clone(), size));
            }
        }
        if !requests.is_empty() {
            self.stats.full_scans += 1;
            self.scan_and_store(&requests);
        }
        alloc.value
    }

    /// Drops every stored sample (used by experiments to reset state).
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::rule_count;
    use sdd_datagen::retail;

    fn handler(table: &Table) -> SampleHandler<'_> {
        SampleHandler::new(
            table,
            SampleHandlerConfig {
                capacity: 5_000,
                min_sample_size: 500,
                seed: 7,
                strategy: AllocationStrategy::Dp,
            },
        )
    }

    #[test]
    fn first_request_creates_then_finds() {
        let t = retail(1);
        let mut h = handler(&t);
        let trivial = Rule::trivial(3);
        let a = h.get_sample(&trivial);
        assert_eq!(a.mechanism, FetchMechanism::Create);
        assert_eq!(a.view.len(), 500);
        let b = h.get_sample(&trivial);
        assert_eq!(b.mechanism, FetchMechanism::Find);
        assert_eq!(h.stats.full_scans, 1);
    }

    #[test]
    fn sample_counts_estimate_true_counts() {
        let t = retail(1);
        let mut h = SampleHandler::new(
            &t,
            SampleHandlerConfig {
                capacity: 20_000,
                min_sample_size: 2_000,
                seed: 3,
                strategy: AllocationStrategy::Dp,
            },
        );
        let trivial = Rule::trivial(3);
        let s = h.get_sample(&trivial);
        // Estimated total = Σ weights ≈ 6000.
        let est = s.view.total_weight();
        assert!((est - 6000.0).abs() < 1.0, "total estimate {est}");
        // Estimated Walmart count within 20% of 1000.
        let walmart = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
        let est_w: f64 = s
            .view
            .iter()
            .filter(|wr| walmart.covers_row(&t, wr.row))
            .map(|wr| wr.weight)
            .sum();
        let truth = rule_count(&t.view(), &walmart);
        assert!(
            (est_w - truth).abs() / truth < 0.2,
            "estimate {est_w} vs truth {truth}"
        );
    }

    #[test]
    fn combine_pools_sub_rule_samples() {
        let t = retail(1);
        let mut h = SampleHandler::new(
            &t,
            SampleHandlerConfig {
                capacity: 50_000,
                min_sample_size: 200,
                seed: 11,
                strategy: AllocationStrategy::Dp,
            },
        );
        // Seed a big sample of the trivial rule directly in the store.
        let trivial = Rule::trivial(3);
        h.scan_and_store(&[(trivial.clone(), 4000)]);
        // Now a Walmart request should combine from the trivial sample:
        // 4000 of 6000 rows → ~666 Walmart rows ≥ minSS 200.
        let walmart = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
        let s = h.get_sample(&walmart);
        assert_eq!(s.mechanism, FetchMechanism::Combine);
        assert_eq!(h.stats.creates, 0); // no disk pass triggered by the request
                                        // Unbiased: estimated Walmart count ≈ 1000.
        let est = s.view.total_weight();
        assert!((est - 1000.0).abs() < 200.0, "estimate {est}");
    }

    #[test]
    fn combine_falls_back_to_create_when_starved() {
        let t = retail(1);
        let mut h = handler(&t); // minSS 500
                                 // Seed a small trivial sample (600): Walmart-covered portion ≈ 100
                                 // < minSS → must Create.
        h.scan_and_store(&[(Rule::trivial(3), 600)]);
        let walmart = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
        let s = h.get_sample(&walmart);
        assert_eq!(s.mechanism, FetchMechanism::Create);
        assert_eq!(s.view.len(), 500);
    }

    #[test]
    fn create_on_rare_rule_returns_all_covered_tuples() {
        let t = retail(1);
        let mut h = handler(&t);
        // (Walmart, cookies) covers only 200 < minSS 500: Create returns all
        // of them at scale 1.
        let r = Rule::from_pairs(&t, &[("Store", "Walmart"), ("Product", "cookies")]).unwrap();
        let s = h.get_sample(&r);
        assert_eq!(s.mechanism, FetchMechanism::Create);
        assert_eq!(s.view.len(), 200);
        assert!((s.scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_respected_with_eviction() {
        let t = retail(1);
        let mut h = SampleHandler::new(
            &t,
            SampleHandlerConfig {
                capacity: 1_200,
                min_sample_size: 500,
                seed: 5,
                strategy: AllocationStrategy::Dp,
            },
        );
        let rules = [
            Rule::trivial(3),
            Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap(),
            Rule::from_pairs(&t, &[("Region", "MA-3")]).unwrap(),
        ];
        for r in &rules {
            let _ = h.get_sample(r);
        }
        assert!(h.memory_used() <= 1_200);
        assert!(h.stats.evictions > 0);
    }

    #[test]
    fn prefetch_enables_later_find_or_combine() {
        let t = retail(1);
        let mut h = SampleHandler::new(
            &t,
            SampleHandlerConfig {
                capacity: 20_000,
                min_sample_size: 500,
                seed: 13,
                strategy: AllocationStrategy::Dp,
            },
        );
        let walmart = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
        let target = Rule::from_pairs(&t, &[("Store", "Target")]).unwrap();
        let hit = h.prefetch(
            &Rule::trivial(3),
            &[
                PrefetchEntry {
                    rule: walmart.clone(),
                    probability: 0.5,
                    selectivity: 1000.0 / 6000.0,
                },
                PrefetchEntry {
                    rule: target.clone(),
                    probability: 0.5,
                    selectivity: 200.0 / 6000.0,
                },
            ],
        );
        assert!(hit > 0.99, "allocator should serve both: {hit}");
        let scans_after_prefetch = h.stats.full_scans;
        let s1 = h.get_sample(&walmart);
        let s2 = h.get_sample(&target);
        assert_ne!(s1.mechanism, FetchMechanism::Create);
        assert_ne!(s2.mechanism, FetchMechanism::Create);
        assert_eq!(h.stats.full_scans, scans_after_prefetch);
    }

    #[test]
    fn clear_resets_store() {
        let t = retail(1);
        let mut h = handler(&t);
        let _ = h.get_sample(&Rule::trivial(3));
        assert!(h.n_samples() > 0);
        h.clear();
        assert_eq!(h.n_samples(), 0);
        assert_eq!(h.memory_used(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must hold")]
    fn capacity_below_minss_rejected() {
        let t = retail(1);
        let _ = SampleHandler::new(
            &t,
            SampleHandlerConfig {
                capacity: 100,
                min_sample_size: 500,
                seed: 1,
                strategy: AllocationStrategy::Dp,
            },
        );
    }
}
