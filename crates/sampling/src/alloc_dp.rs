//! The paper's approximate DP solution to the allocation problem (§4.1).
//!
//! Under the simplifying assumption that a leaf's `ess` draws only on its
//! own sample and its parent's, the problem decomposes into independent
//! *groups* — an internal node `r0` plus its leaf children `M_{r0}`. Within
//! a group, every locally-optimal assignment puts each child in one of three
//! categories (paper §4.1):
//!
//! 1. served purely by the parent sample (`n_child = 0`,
//!    `n_{r0} · S(r0, child) ≥ minSS`),
//! 2. unserved (`n_child = 0`),
//! 3. topped up exactly to the threshold
//!    (`n_child = minSS − n_{r0} · S(r0, child)`).
//!
//! Enumerating the ≤ `3^d` category assignments yields each group's
//! (cost, value) menu; a knapsack-style DP over the memory budget combines
//! the menus (`A[i+1][j] = max(A[i][j], max_e A[i][j − S(e)] + P(e))`).

use crate::alloc::{Allocation, AllocationProblem};

/// Maximum leaf children per group the exhaustive 3^d enumeration accepts.
/// The paper notes `d` is usually ≤ `k` (a handful).
pub const MAX_GROUP_CHILDREN: usize = 12;

#[derive(Debug, Clone)]
struct GroupConfig {
    cost: usize,
    value: f64,
    /// Sample size for the group's parent node.
    parent_size: usize,
    /// Sample size per leaf child (aligned with the group's child list).
    child_sizes: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Group {
    parent: usize,
    children: Vec<usize>,
    configs: Vec<GroupConfig>,
}

/// Solves Problem 5 with the paper's DP (§4.1).
///
/// # Panics
/// If the problem fails [`AllocationProblem::validate`] or a group has more
/// than [`MAX_GROUP_CHILDREN`] leaf children.
pub fn solve_dp(problem: &AllocationProblem) -> Allocation {
    problem.validate().expect("invalid allocation problem");
    let groups = build_groups(problem);
    let n_nodes = problem.parent.len();
    let m = problem.capacity;

    // Multiple-choice knapsack over groups.
    // value[j] = best value with budget j; choice[g][j] = config index used.
    let mut value = vec![0.0f64; m + 1];
    let mut choices: Vec<Vec<usize>> = Vec::with_capacity(groups.len());
    for group in &groups {
        let mut next = value.clone();
        let mut choice = vec![usize::MAX; m + 1]; // MAX = "skip" (config cost 0 value 0 implicit)
        for (ci, cfg) in group.configs.iter().enumerate() {
            if cfg.cost > m {
                continue;
            }
            for j in cfg.cost..=m {
                let cand = value[j - cfg.cost] + cfg.value;
                if cand > next[j] + 1e-12 {
                    next[j] = cand;
                    choice[j] = ci;
                }
            }
        }
        // Make `next` monotone in j (standard knapsack invariant); carry the
        // choice marker along so walk-back stays consistent.
        for j in 1..=m {
            if next[j - 1] > next[j] {
                next[j] = next[j - 1];
                choice[j] = choice[j - 1];
            }
        }
        value = next;
        choices.push(choice);
    }

    // Reconstruct: walk groups backwards. Because of the monotone fill above
    // we re-derive the budget split by replaying choices greedily.
    let mut sizes = vec![0usize; n_nodes];
    let mut budget = m;
    // Recompute DP tables per prefix is wasteful; instead store them: we
    // already have `choices[g]` keyed by the budget *after* processing group
    // g. Walk back using recorded choice at the current budget.
    for (g, group) in groups.iter().enumerate().rev() {
        // Find the choice made at this budget level. The monotone fill can
        // leave stale markers; walk down to the first budget where the value
        // is achieved.
        let choice = choices[g][budget];
        if choice != usize::MAX && choice < group.configs.len() {
            let cfg = &group.configs[choice];
            if cfg.cost <= budget {
                sizes[group.parent] = sizes[group.parent].max(cfg.parent_size);
                for (child, &cs) in group.children.iter().zip(&cfg.child_sizes) {
                    sizes[*child] = cs;
                }
                budget -= cfg.cost;
            }
        }
    }

    let achieved = problem.step_value(&sizes);
    Allocation {
        sizes,
        value: achieved,
    }
}

fn build_groups(problem: &AllocationProblem) -> Vec<Group> {
    let children = problem.children();
    let n = problem.parent.len();
    let mut groups = Vec::new();

    for r0 in 0..n {
        let leaf_children: Vec<usize> = children[r0]
            .iter()
            .copied()
            .filter(|&c| children[c].is_empty())
            .collect();
        if leaf_children.is_empty() {
            continue;
        }
        assert!(
            leaf_children.len() <= MAX_GROUP_CHILDREN,
            "group under node {r0} has {} leaf children (> {MAX_GROUP_CHILDREN})",
            leaf_children.len()
        );
        groups.push(Group {
            parent: r0,
            children: leaf_children.clone(),
            configs: enumerate_configs(problem, r0, &leaf_children),
        });
    }

    // A root that is itself a leaf: a degenerate one-node group.
    if children[0].is_empty() && problem.prob[0] > 0.0 {
        let min_ss = problem.min_ss;
        groups.push(Group {
            parent: 0,
            children: vec![],
            configs: vec![GroupConfig {
                cost: min_ss,
                value: problem.prob[0],
                parent_size: min_ss,
                child_sizes: vec![],
            }],
        });
    }
    groups
}

/// Ceiling with a small tolerance: quantities like `minSS·(1 − w/minSS)`
/// carry floating-point dust that would otherwise round a sample one tuple
/// too large and push an exactly-affordable configuration over budget.
/// `AllocationProblem::step_value` carries the matching `1e-9` slack when
/// checking `ess ≥ minSS`.
fn ceil_eps(x: f64) -> usize {
    (x - 1e-9).ceil().max(0.0) as usize
}

/// Enumerates the ≤ 3^d locally-optimal configurations of one group and
/// dominance-filters them.
fn enumerate_configs(
    problem: &AllocationProblem,
    _r0: usize,
    children: &[usize],
) -> Vec<GroupConfig> {
    let d = children.len();
    let min_ss = problem.min_ss as f64;
    let mut configs: Vec<GroupConfig> = Vec::new();

    // Category per child: 0 = parent-served, 1 = unserved, 2 = topped-up.
    let mut cats = vec![0u8; d];
    'outer: loop {
        // Determine the parent sample size required by category-0 children.
        let mut parent_size = 0usize;
        let mut feasible = true;
        for (i, &cat) in cats.iter().enumerate() {
            if cat == 0 {
                let s = problem.selectivity[children[i]];
                if s <= 0.0 {
                    feasible = false;
                    break;
                }
                parent_size = parent_size.max(ceil_eps(min_ss / s));
            }
        }
        if feasible {
            let mut cost = parent_size;
            let mut val = 0.0;
            let mut child_sizes = vec![0usize; d];
            for (i, &cat) in cats.iter().enumerate() {
                let child = children[i];
                match cat {
                    0 => val += problem.prob[child],
                    1 => {}
                    _ => {
                        let from_parent = parent_size as f64 * problem.selectivity[child];
                        let need = ceil_eps((min_ss - from_parent).max(0.0));
                        child_sizes[i] = need;
                        cost += need;
                        val += problem.prob[child];
                    }
                }
            }
            if cost <= problem.capacity {
                configs.push(GroupConfig {
                    cost,
                    value: val,
                    parent_size,
                    child_sizes,
                });
            }
        }

        // Advance the ternary counter.
        #[allow(clippy::needless_range_loop)] // advances a ternary counter in place
        for i in 0..d {
            if cats[i] < 2 {
                cats[i] += 1;
                continue 'outer;
            }
            cats[i] = 0;
        }
        break;
    }

    // Dominance filter: sort by (cost asc, value desc); keep strictly
    // increasing value.
    configs.sort_by(|a, b| {
        a.cost
            .cmp(&b.cost)
            .then(b.value.partial_cmp(&a.value).expect("finite"))
    });
    let mut kept: Vec<GroupConfig> = Vec::with_capacity(configs.len());
    let mut best = 0.0f64;
    for c in configs {
        if c.value > best + 1e-12 {
            best = c.value;
            kept.push(c);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::solve_uniform;

    fn two_leaf(capacity: usize) -> AllocationProblem {
        AllocationProblem {
            parent: vec![None, Some(0), Some(0)],
            prob: vec![0.0, 0.6, 0.4],
            selectivity: vec![1.0, 0.5, 0.25],
            capacity,
            min_ss: 1000,
        }
    }

    #[test]
    fn serves_both_leaves_when_budget_allows() {
        let p = two_leaf(10_000);
        let a = solve_dp(&p);
        assert!((a.value - 1.0).abs() < 1e-9, "{a:?}");
        assert!(p.used(&a.sizes) <= p.capacity);
    }

    #[test]
    fn prefers_high_probability_leaf_under_tight_budget() {
        let p = two_leaf(1000);
        let a = solve_dp(&p);
        // Budget fits exactly one direct sample: pick the 0.6 leaf.
        assert!((a.value - 0.6).abs() < 1e-9, "{a:?}");
    }

    #[test]
    fn exploits_parent_sharing() {
        // Two leaves each with selectivity 0.5: a parent sample of 2000
        // serves both for cost 2000 < 2×1000? No — 2000 == 2000. Make
        // selectivity 0.8: parent of 1250 serves both, cheaper than 2000.
        let p = AllocationProblem {
            parent: vec![None, Some(0), Some(0)],
            prob: vec![0.0, 0.5, 0.5],
            selectivity: vec![1.0, 0.8, 0.8],
            capacity: 1300,
            min_ss: 1000,
        };
        let a = solve_dp(&p);
        assert!((a.value - 1.0).abs() < 1e-9, "{a:?}");
        assert!(a.sizes[0] >= 1250);
        // Uniform baseline can't do this: 650 per leaf < minSS.
        assert_eq!(solve_uniform(&p).value, 0.0);
    }

    #[test]
    fn topping_up_mixes_parent_and_own_sample() {
        // Parent sample required for leaf 1 (S=1.0 → 1000), leaf 2 has
        // S=0.4 so it gets 400 free and needs 600 of its own.
        let p = AllocationProblem {
            parent: vec![None, Some(0), Some(0)],
            prob: vec![0.0, 0.5, 0.5],
            selectivity: vec![1.0, 1.0, 0.4],
            capacity: 1600,
            min_ss: 1000,
        };
        let a = solve_dp(&p);
        assert!((a.value - 1.0).abs() < 1e-9, "{a:?}");
        assert_eq!(a.sizes[0], 1000);
        assert_eq!(a.sizes[2], 600);
    }

    #[test]
    fn multiple_groups_share_the_budget() {
        // Root with two internal children, each with one leaf.
        let p = AllocationProblem {
            parent: vec![None, Some(0), Some(0), Some(1), Some(2)],
            prob: vec![0.0, 0.0, 0.0, 0.7, 0.3],
            selectivity: vec![1.0, 0.5, 0.5, 1.0, 1.0],
            capacity: 1000,
            min_ss: 1000,
        };
        let a = solve_dp(&p);
        // Only one leaf affordable; take the 0.7 one (served either by its
        // own sample or its parent's — both cost 1000).
        assert!((a.value - 0.7).abs() < 1e-9, "{a:?}");
        let ess = p.ess(&a.sizes);
        assert!(ess[3] + 1e-9 >= 1000.0);
        assert!(ess[4] < 1000.0);
    }

    #[test]
    fn root_leaf_degenerate_tree() {
        let p = AllocationProblem {
            parent: vec![None],
            prob: vec![1.0],
            selectivity: vec![1.0],
            capacity: 500,
            min_ss: 400,
        };
        let a = solve_dp(&p);
        assert!((a.value - 1.0).abs() < 1e-9);
        assert_eq!(a.sizes[0], 400);
    }

    #[test]
    fn zero_capacity_serves_nothing() {
        let p = two_leaf(0);
        let a = solve_dp(&p);
        assert_eq!(a.value, 0.0);
        assert!(a.sizes.iter().all(|&s| s == 0));
    }

    #[test]
    fn zero_selectivity_child_needs_own_sample() {
        let p = AllocationProblem {
            parent: vec![None, Some(0)],
            prob: vec![0.0, 1.0],
            selectivity: vec![1.0, 0.0],
            capacity: 1000,
            min_ss: 1000,
        };
        let a = solve_dp(&p);
        assert!((a.value - 1.0).abs() < 1e-9);
        assert_eq!(a.sizes[1], 1000);
    }

    #[test]
    fn float_dust_does_not_break_exact_budgets() {
        // Regression (found by proptest): selectivity 1 − 55/100 evaluates
        // to 0.4499999999999999, and without tolerant ceilings the optimal
        // configuration costs one phantom tuple too much and is dropped.
        let p = AllocationProblem {
            parent: vec![None, Some(0), Some(0), Some(0)],
            prob: vec![0.0, 0.4, 0.18, 0.42],
            selectivity: vec![1.0, 1.0, 1.0 - 55.0 / 100.0, 0.0],
            capacity: 255,
            min_ss: 100,
        };
        let a = solve_dp(&p);
        // Affordable optimum: parent 100 (serves leaf 1), leaf 2 top-up 55,
        // leaf 3 own 100 → cost 255, value 1.0.
        assert!((a.value - 1.0).abs() < 1e-9, "{a:?}");
        assert!(p.used(&a.sizes) <= p.capacity);
    }

    #[test]
    fn dp_beats_or_matches_uniform_on_random_trees() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..25 {
            // Random 2-level tree.
            let n_leaves = rng.gen_range(1..6);
            let mut parent = vec![None];
            let mut prob = vec![0.0];
            let mut sel = vec![1.0];
            let mut rest = 1.0f64;
            for i in 0..n_leaves {
                parent.push(Some(0));
                let p = if i + 1 == n_leaves {
                    rest
                } else {
                    rng.gen_range(0.0..rest)
                };
                rest -= p;
                prob.push(p);
                sel.push(rng.gen_range(0.1..1.0));
            }
            let problem = AllocationProblem {
                parent,
                prob,
                selectivity: sel,
                capacity: rng.gen_range(500..4000),
                min_ss: 800,
            };
            let dp = solve_dp(&problem);
            let uni = solve_uniform(&problem);
            assert!(
                dp.value + 1e-9 >= uni.value,
                "dp {} < uniform {} on {problem:?}",
                dp.value,
                uni.value
            );
            assert!(problem.used(&dp.sizes) <= problem.capacity);
        }
    }
}
