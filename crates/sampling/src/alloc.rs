//! The sample-memory allocation problem (paper §4.1, Problem 5).
//!
//! Given the display tree `U`, a probability that each leaf is the next
//! drill-down target, per-edge selectivity ratios `S(parent, leaf)`, a
//! memory budget `M` (total tuples across samples), and `minSS`, choose a
//! sample size `n_r` for every node maximizing the probability that the
//! next drill-down is served from memory:
//!
//! ```text
//! maximize  Σ_{leaves r'} p_{r'} · 1[ess(r') ≥ minSS]     s.t. Σ n_r ≤ M
//! ```
//!
//! with `ess(r') = n_{r'} + n_parent · S(parent, r')` under the paper's
//! simplifying assumption that a leaf draws tuples only from itself and its
//! parent. Problem 5 is NP-hard (Lemma 4 — reduction in
//! [`crate::knapsack`]); solvers live in [`crate::alloc_dp`] (approximate
//! DP) and [`crate::alloc_convex`] (hinge-loss relaxation).

/// An instance of the allocation problem over an abstract tree. Node `0` is
/// the root; nodes are addressed by index.
#[derive(Debug, Clone)]
pub struct AllocationProblem {
    /// Parent of each node (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Probability each node is the next drill-down target. Must sum to ≤ 1;
    /// internal nodes typically carry 0.
    pub prob: Vec<f64>,
    /// `S(parent(r), r)`: the fraction of a parent-sample tuple usable for
    /// `r` (ratio of selectivities, §4.1). Ignored for the root.
    pub selectivity: Vec<f64>,
    /// Memory budget `M` in tuples.
    pub capacity: usize,
    /// Minimum sample size to run BRS without touching disk.
    pub min_ss: usize,
}

impl AllocationProblem {
    /// Validates structural invariants; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.parent.len();
        if self.prob.len() != n || self.selectivity.len() != n {
            return Err("parent/prob/selectivity length mismatch".into());
        }
        if n == 0 {
            return Err("empty tree".into());
        }
        if self.parent[0].is_some() {
            return Err("node 0 must be the root".into());
        }
        for (i, &p) in self.parent.iter().enumerate().skip(1) {
            match p {
                None => return Err(format!("node {i} has no parent but is not the root")),
                Some(j) if j >= n => return Err(format!("node {i} has out-of-range parent {j}")),
                Some(j) if j >= i => {
                    return Err(format!(
                        "node {i}'s parent {j} must precede it (topological order)"
                    ))
                }
                _ => {}
            }
        }
        if self.prob.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err("probabilities must be in [0,1]".into());
        }
        if self.selectivity.iter().any(|&s| !(0.0..=1.0).contains(&s)) {
            return Err("selectivities must be in [0,1]".into());
        }
        if self.min_ss == 0 {
            return Err("minSS must be positive".into());
        }
        Ok(())
    }

    /// Child lists, derived from `parent`.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (i, &p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[p].push(i);
            }
        }
        ch
    }

    /// Leaves of the tree.
    pub fn leaves(&self) -> Vec<usize> {
        let ch = self.children();
        (0..self.parent.len())
            .filter(|&i| ch[i].is_empty())
            .collect()
    }

    /// `ess(r)` for every node under allocation `sizes`.
    pub fn ess(&self, sizes: &[usize]) -> Vec<f64> {
        assert_eq!(sizes.len(), self.parent.len());
        (0..self.parent.len())
            .map(|i| {
                let own = sizes[i] as f64;
                match self.parent[i] {
                    Some(p) => own + sizes[p] as f64 * self.selectivity[i],
                    None => own,
                }
            })
            .collect()
    }

    /// The step objective of Problem 5: probability mass of leaves whose
    /// `ess` clears `minSS`.
    pub fn step_value(&self, sizes: &[usize]) -> f64 {
        let ess = self.ess(sizes);
        self.leaves()
            .into_iter()
            .filter(|&l| ess[l] + 1e-9 >= self.min_ss as f64)
            .map(|l| self.prob[l])
            .sum()
    }

    /// The hinge objective of Problem 6: `Σ p·min(1, ess/minSS)`.
    pub fn hinge_value(&self, sizes: &[f64]) -> f64 {
        assert_eq!(sizes.len(), self.parent.len());
        self.leaves()
            .into_iter()
            .map(|l| {
                let own = sizes[l];
                let ess = match self.parent[l] {
                    Some(p) => own + sizes[p] * self.selectivity[l],
                    None => own,
                };
                self.prob[l] * (ess / self.min_ss as f64).min(1.0)
            })
            .sum()
    }

    /// Total memory used by an allocation.
    pub fn used(&self, sizes: &[usize]) -> usize {
        sizes.iter().sum()
    }
}

/// An allocation: per-node sample sizes plus the achieved step objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Chosen sample size per node.
    pub sizes: Vec<usize>,
    /// `Σ p` over leaves served from memory (step objective).
    pub value: f64,
}

/// Which allocation solver the [`crate::SampleHandler`] should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocationStrategy {
    /// The paper's DP over locally-optimal per-node configurations (§4.1).
    #[default]
    Dp,
    /// The convex hinge-loss relaxation with projected subgradient (§4.2).
    Convex,
    /// Naïve baseline: split `M` equally across leaves (ablation A3).
    Uniform,
}

/// Uniform baseline: split the budget equally among leaves (no parent
/// samples). Ablation A3's straw man.
pub fn solve_uniform(problem: &AllocationProblem) -> Allocation {
    let leaves = problem.leaves();
    let mut sizes = vec![0usize; problem.parent.len()];
    if !leaves.is_empty() {
        let per = problem.capacity / leaves.len();
        for &l in &leaves {
            sizes[l] = per;
        }
    }
    let value = problem.step_value(&sizes);
    Allocation { sizes, value }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Root with two leaf children, generous selectivities.
    pub(crate) fn two_leaf() -> AllocationProblem {
        AllocationProblem {
            parent: vec![None, Some(0), Some(0)],
            prob: vec![0.0, 0.6, 0.4],
            selectivity: vec![1.0, 0.5, 0.25],
            capacity: 3000,
            min_ss: 1000,
        }
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert!(two_leaf().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut p = two_leaf();
        p.prob = vec![0.5];
        assert!(p.validate().is_err());

        let mut p = two_leaf();
        p.selectivity[1] = 1.5;
        assert!(p.validate().is_err());

        let mut p = two_leaf();
        p.min_ss = 0;
        assert!(p.validate().is_err());

        let p = AllocationProblem {
            parent: vec![Some(1), None],
            prob: vec![0.0, 0.0],
            selectivity: vec![1.0, 1.0],
            capacity: 10,
            min_ss: 1,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn ess_combines_own_and_parent_sample() {
        let p = two_leaf();
        let ess = p.ess(&[1000, 500, 0]);
        assert_eq!(ess[1], 500.0 + 1000.0 * 0.5);
        assert_eq!(ess[2], 1000.0 * 0.25);
    }

    #[test]
    fn step_value_counts_served_leaves() {
        let p = two_leaf();
        // Leaf 1: 500 + 0.5·1000 = 1000 ✓; leaf 2: 250 ✗.
        assert!((p.step_value(&[1000, 500, 0]) - 0.6).abs() < 1e-12);
        // Give leaf 2 its own 750: 250+750 = 1000 ✓.
        assert!((p.step_value(&[1000, 500, 750]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hinge_value_rewards_partial_samples() {
        let p = two_leaf();
        let v = p.hinge_value(&[0.0, 500.0, 0.0]);
        assert!((v - 0.6 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_baseline_spends_only_on_leaves() {
        let p = two_leaf();
        let a = solve_uniform(&p);
        assert_eq!(a.sizes[0], 0);
        assert_eq!(a.sizes[1], 1500);
        assert_eq!(a.sizes[2], 1500);
        assert!((a.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leaves_of_deeper_tree() {
        let p = AllocationProblem {
            parent: vec![None, Some(0), Some(1), Some(1)],
            prob: vec![0.0, 0.0, 0.5, 0.5],
            selectivity: vec![1.0, 0.5, 0.5, 0.5],
            capacity: 100,
            min_ss: 10,
        };
        assert_eq!(p.leaves(), vec![2, 3]);
    }
}
