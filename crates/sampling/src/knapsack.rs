//! The knapsack → allocation reduction (paper Lemma 4), executable.
//!
//! Lemma 4 proves Problem 5 NP-hard by encoding a 0/1 knapsack instance as
//! a sample-allocation tree: item `i` becomes a node `r_i` with two leaf
//! children; serving the first child is always worth it, and serving the
//! second child costs `w_i · minSS` extra memory and yields probability
//! proportional to `v_i` — exactly the knapsack trade-off.
//!
//! This module materializes the reduction and ships an exact knapsack
//! solver so tests can check that optima map to optima.

use crate::alloc::AllocationProblem;

/// A 0/1 knapsack instance with integer weights.
#[derive(Debug, Clone)]
pub struct Knapsack {
    /// Item weights (positive).
    pub weights: Vec<usize>,
    /// Item values (non-negative).
    pub values: Vec<f64>,
    /// Weight budget.
    pub capacity: usize,
}

impl Knapsack {
    /// Exact DP solver. Returns `(best_value, chosen_items)`.
    pub fn solve_exact(&self) -> (f64, Vec<usize>) {
        let n = self.weights.len();
        assert_eq!(n, self.values.len(), "weights/values length mismatch");
        let cap = self.capacity;
        // best[j] = max value with weight ≤ j; take[i][j] = item i taken.
        let mut best = vec![0.0f64; cap + 1];
        let mut take = vec![vec![false; cap + 1]; n];
        #[allow(clippy::needless_range_loop)] // indexes weights, values, and take together
        for i in 0..n {
            let w = self.weights[i];
            if w > cap {
                continue;
            }
            for j in (w..=cap).rev() {
                let cand = best[j - w] + self.values[i];
                if cand > best[j] + 1e-12 {
                    best[j] = cand;
                    take[i][j] = true;
                }
            }
        }
        // Reconstruct.
        let mut chosen = Vec::new();
        let mut j = cap;
        for i in (0..n).rev() {
            if take[i][j] {
                chosen.push(i);
                j -= self.weights[i];
            }
        }
        chosen.reverse();
        (best[cap], chosen)
    }
}

/// Output of [`lemma4_reduction`]: the allocation problem plus index maps.
#[derive(Debug, Clone)]
pub struct Lemma4Instance {
    /// The reduced allocation problem.
    pub problem: AllocationProblem,
    /// For item `i`: node index of its *second* leaf child (`r_{i,2}` in the
    /// proof) — the leaf whose service means "item i chosen".
    pub item_leaf: Vec<usize>,
    /// Probability granted per always-served first child.
    pub base_prob: f64,
    /// `v_i`'s normalizer: `(2m+1) · Σ v_j`.
    pub value_scale: f64,
}

/// Builds the Lemma-4 allocation instance from a knapsack whose weights are
/// expressed as fractions of `min_ss` (so `weights[i] < min_ss`, mirroring
/// the proof's scaling of all `w_i < 1`).
///
/// # Panics
/// If any weight is `0` or `≥ min_ss`, or the value sum is `0`.
pub fn lemma4_reduction(knapsack: &Knapsack, min_ss: usize) -> Lemma4Instance {
    let m = knapsack.weights.len();
    assert!(m > 0, "empty knapsack");
    assert!(
        knapsack.weights.iter().all(|&w| w > 0 && w < min_ss),
        "weights must be in (0, minSS) — scale them first"
    );
    let value_sum: f64 = knapsack.values.iter().sum();
    assert!(value_sum > 0.0, "need positive total value");

    // Node layout: 0 = root; for item i: node 1+3i = r_i, 2+3i = r_{i,1},
    // 3+3i = r_{i,2}.
    let n_nodes = 1 + 3 * m;
    let mut parent = vec![None; n_nodes];
    let mut prob = vec![0.0f64; n_nodes];
    let mut selectivity = vec![0.0f64; n_nodes];
    selectivity[0] = 1.0;

    let denom = (2 * m + 1) as f64;
    for i in 0..m {
        let ri = 1 + 3 * i;
        let ri1 = ri + 1;
        let ri2 = ri + 2;
        parent[ri] = Some(0);
        parent[ri1] = Some(ri);
        parent[ri2] = Some(ri);
        selectivity[ri] = 0.0; // root sample is useless for the r_i (proof: S ≈ 0)
        selectivity[ri1] = 1.0;
        selectivity[ri2] = 1.0 - knapsack.weights[i] as f64 / min_ss as f64;
        prob[ri1] = 2.0 / denom;
        prob[ri2] = knapsack.values[i] / (denom * value_sum);
    }

    let capacity = (m * min_ss) + knapsack.capacity;
    let problem = AllocationProblem {
        parent,
        prob,
        selectivity,
        capacity,
        min_ss,
    };
    Lemma4Instance {
        item_leaf: (0..m).map(|i| 3 + 3 * i).collect(),
        base_prob: 2.0 * m as f64 / denom,
        value_scale: denom * value_sum,
        problem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc_dp::solve_dp;

    fn sack() -> Knapsack {
        Knapsack {
            weights: vec![30, 40, 50, 20],
            values: vec![3.0, 5.0, 6.0, 2.0],
            capacity: 90,
        }
    }

    #[test]
    fn exact_knapsack_known_answer() {
        let (v, chosen) = sack().solve_exact();
        // Best: items 1 (w40,v5) + 2 (w50,v6) = 11 at weight 90.
        assert!((v - 11.0).abs() < 1e-9);
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn exact_knapsack_respects_capacity() {
        let k = sack();
        let (_, chosen) = k.solve_exact();
        let w: usize = chosen.iter().map(|&i| k.weights[i]).sum();
        assert!(w <= k.capacity);
    }

    #[test]
    fn exact_knapsack_empty_capacity() {
        let mut k = sack();
        k.capacity = 0;
        let (v, chosen) = k.solve_exact();
        assert_eq!(v, 0.0);
        assert!(chosen.is_empty());
    }

    #[test]
    fn exact_knapsack_oversized_item_skipped() {
        let k = Knapsack {
            weights: vec![100, 10],
            values: vec![99.0, 1.0],
            capacity: 50,
        };
        let (v, chosen) = k.solve_exact();
        assert_eq!(chosen, vec![1]);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_structure_matches_the_proof() {
        let inst = lemma4_reduction(&sack(), 100);
        let p = &inst.problem;
        assert!(p.validate().is_ok());
        assert_eq!(p.parent.len(), 1 + 3 * 4);
        assert_eq!(p.capacity, 4 * 100 + 90);
        // Each r_{i,2}'s selectivity is 1 − w_i/minSS.
        assert!((p.selectivity[3] - 0.7).abs() < 1e-12);
        assert!((p.selectivity[6] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn dp_on_reduced_instance_solves_the_knapsack() {
        // The heart of Lemma 4: the DP's optimal allocation chooses exactly
        // the knapsack-optimal item set.
        let k = sack();
        let min_ss = 100;
        let inst = lemma4_reduction(&k, min_ss);
        let alloc = solve_dp(&inst.problem);
        let ess = inst.problem.ess(&alloc.sizes);

        // All first children are served (they dominate any item value).
        for i in 0..k.weights.len() {
            let ri1 = 2 + 3 * i;
            assert!(
                ess[ri1] + 1e-9 >= min_ss as f64,
                "first child of item {i} unserved"
            );
        }
        // The served second children form a knapsack-optimal set.
        let chosen: Vec<usize> = (0..k.weights.len())
            .filter(|&i| ess[inst.item_leaf[i]] + 1e-9 >= min_ss as f64)
            .collect();
        let chosen_value: f64 = chosen.iter().map(|&i| k.values[i]).sum();
        let chosen_weight: usize = chosen.iter().map(|&i| k.weights[i]).sum();
        let (opt_value, _) = k.solve_exact();
        assert!(chosen_weight <= k.capacity, "chosen {chosen:?} overweight");
        assert!(
            (chosen_value - opt_value).abs() < 1e-9,
            "allocation chose {chosen:?} (value {chosen_value}), knapsack optimum {opt_value}"
        );
        // And the achieved probability decomposes as the proof predicts.
        let expected = inst.base_prob + chosen_value / inst.value_scale;
        assert!((alloc.value - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "weights must be in")]
    fn reduction_rejects_unscaled_weights() {
        let k = Knapsack {
            weights: vec![200],
            values: vec![1.0],
            capacity: 10,
        };
        let _ = lemma4_reduction(&k, 100);
    }
}
