//! Count estimation from samples, with confidence intervals (paper §4.3:
//! "since the sample is uniformly random, we can also compute confidence
//! intervals on the estimated count of each displayed rule").

/// A count estimate with a normal-approximation confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountEstimate {
    /// Point estimate of the full-table count.
    pub estimate: f64,
    /// Lower bound of the interval (clamped at 0).
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
}

/// Estimates a rule's full-population count from a uniform sample.
///
/// * `covered` — number of sample tuples the rule covers,
/// * `sample_size` — total tuples in the sample,
/// * `scale` — the sample's scale factor `N_s` (population/sample ratio),
/// * `z` — normal quantile (1.96 for 95%).
///
/// Uses the binomial model `covered ~ Bin(sample_size, q)`:
/// `Var(scale·covered) = scale²·n·q(1−q)`.
pub fn count_estimate(covered: usize, sample_size: usize, scale: f64, z: f64) -> CountEstimate {
    assert!(covered <= sample_size, "covered exceeds sample size");
    assert!(scale >= 1.0 - 1e-9, "scale factor must be ≥ 1");
    let estimate = covered as f64 * scale;
    if sample_size == 0 {
        return CountEstimate {
            estimate: 0.0,
            lo: 0.0,
            hi: 0.0,
        };
    }
    let n = sample_size as f64;
    let q = covered as f64 / n;
    let sd = scale * (n * q * (1.0 - q)).sqrt();
    CountEstimate {
        estimate,
        lo: (estimate - z * sd).max(0.0),
        hi: estimate + z * sd,
    }
}

/// Relative error (percent) between an estimated and a true count — the
/// metric of Figure 8(b).
pub fn percent_error(estimated: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if estimated == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (estimated - actual).abs() / actual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate_scales_up() {
        let e = count_estimate(50, 1000, 10.0, 1.96);
        assert_eq!(e.estimate, 500.0);
        assert!(e.lo < 500.0 && e.hi > 500.0);
    }

    #[test]
    fn interval_tightens_with_sample_size() {
        let small = count_estimate(50, 1000, 10.0, 1.96);
        let large = count_estimate(500, 10_000, 1.0, 1.96);
        let small_rel = (small.hi - small.lo) / small.estimate;
        let large_rel = (large.hi - large.lo) / large.estimate;
        assert!(large_rel < small_rel);
    }

    #[test]
    fn full_population_sample_has_zero_width_interval() {
        let e = count_estimate(0, 1000, 1.0, 1.96);
        assert_eq!(e.estimate, 0.0);
        assert_eq!(e.lo, 0.0);
        // q = 0 → sd = 0.
        assert_eq!(e.hi, 0.0);
    }

    #[test]
    fn lower_bound_clamped_at_zero() {
        let e = count_estimate(1, 1000, 100.0, 1.96);
        assert!(e.lo >= 0.0);
    }

    #[test]
    fn empty_sample_is_degenerate_but_defined() {
        let e = count_estimate(0, 0, 1.0, 1.96);
        assert_eq!(e.estimate, 0.0);
    }

    #[test]
    fn coverage_of_the_interval_is_roughly_nominal() {
        // Simulate: population of 100k with q = 0.2; sample 2000; check the
        // 95% CI contains the true count in ≥ ~90% of trials.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let population = 100_000usize;
        let q = 0.2f64;
        let truth = population as f64 * q;
        let sample_size = 2000usize;
        let scale = population as f64 / sample_size as f64;
        let mut hits = 0;
        let trials = 300;
        for _ in 0..trials {
            let covered = (0..sample_size).filter(|_| rng.gen::<f64>() < q).count();
            let e = count_estimate(covered, sample_size, scale, 1.96);
            if truth >= e.lo && truth <= e.hi {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / trials as f64 > 0.9,
            "coverage {hits}/{trials}"
        );
    }

    #[test]
    fn percent_error_basics() {
        assert_eq!(percent_error(110.0, 100.0), 10.0);
        assert_eq!(percent_error(90.0, 100.0), 10.0);
        assert_eq!(percent_error(0.0, 0.0), 0.0);
        assert_eq!(percent_error(5.0, 0.0), 100.0);
    }
}
