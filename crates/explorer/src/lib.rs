//! # sdd-explorer
//!
//! The interactive smart drill-down **explorer** — the architecture of the
//! paper's prototype tool (§4.3, §5): a click-driven session whose
//! expansions are served by the [`sdd_sampling::SampleHandler`] instead of
//! full-table scans, with
//!
//! * **estimated counts with confidence intervals** ("since the sample is
//!   uniformly random, we can also compute confidence intervals on the
//!   estimated count of each displayed rule" — the paper computes but does
//!   not display them; we display them),
//! * **pre-fetching** after every expansion ("while the user is busy
//!   reading the current rule-list ... we can start ... making a pass
//!   through the table to create new samples"),
//! * **exact-count refresh** ("while we are making the pass in the
//!   background, we can find the exact counts for currently displayed
//!   rules ... and update them when our pass is complete") — exposed as
//!   [`Explorer::try_refresh_exact_counts`], schedulable off the request
//!   path via [`Explorer::request_refresh`],
//! * **live tables**: a session over an append-only
//!   [`sdd_table::LiveTable`] advances to the newest epoch at each
//!   operation prologue ([`Explorer::try_advance_epoch`]), incrementally
//!   maintaining its stored samples over the appended rows.

#![warn(missing_docs)]

mod cache;
mod click_model;
mod explorer;

pub use cache::{rules_bit_identical, CachedRules, ResultCache, SharedResultCache};
pub use click_model::ClickModel;
pub use explorer::{
    allocate_table_id, DisplayedRule, Explorer, ExplorerConfig, ExplorerStats, PrefetchMode,
};
