//! The shared drill-down result cache interface.
//!
//! Every expansion an [`crate::Explorer`] performs is a pure function of
//! (table, sample-view content, base rule, star column, `k`, weight
//! function, `mw`) — the sampling layer seeds every reservoir per
//! `(seed, rule)`, so sessions replaying the same drill path feed the BRS
//! optimizer byte-identical inputs. A server hosting many sessions over one
//! table can therefore share one result cache across all of them: under
//! Zipf-shaped traffic most expansions are recomputations of bit-identical
//! results.
//!
//! This module defines only the *interface* plus the key derivation hook;
//! the concrete lock-striped cache lives in `sdd-server` (this crate is in
//! the deterministic set and stays free of server policy like capacity and
//! eviction). The **cache-transparency invariant** (docs/DETERMINISM.md):
//! a cache hit must be bit-identical to recomputation — same rules, same
//! `f64` bit patterns, same order. [`Explorer`](crate::Explorer) verifies
//! every hit against a fresh computation when debug assertions are
//! enabled, and the cache-parity suites assert it end to end.

use sdd_core::{DrillKey, ScoredRule};
use std::sync::Arc;

/// A cached drill-down result: the BRS rule list in display order, shared
/// by `Arc` so hits are allocation-free.
pub type CachedRules = Arc<Vec<ScoredRule>>;

/// A concurrent, shareable drill-down result cache.
///
/// Implementations must be thread-safe (sessions on different worker
/// threads consult the cache concurrently) and may evict at will — the
/// cache is an accelerator, never a source of truth. They must return
/// entries exactly as inserted: the explorer treats a hit as the search
/// result, bit for bit.
pub trait ResultCache: Send + Sync {
    /// The cached result for `key`, if present.
    fn get(&self, key: &DrillKey) -> Option<CachedRules>;

    /// True when `key` is present. Unlike [`ResultCache::get`] this is a
    /// pure peek: implementations should not count it toward hit/miss
    /// statistics (background speculation probes with it).
    fn contains(&self, key: &DrillKey) -> bool;

    /// Stores the result for `key`. The value must be the bit-exact search
    /// result for the inputs `key` was derived from.
    fn insert(&self, key: DrillKey, value: CachedRules);
}

/// A cloneable handle to a shared [`ResultCache`], wrapped so
/// configuration structs keep their derived `Debug`.
#[derive(Clone)]
pub struct SharedResultCache(pub Arc<dyn ResultCache>);

impl std::fmt::Debug for SharedResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedResultCache")
    }
}

/// Bit-exact equality of two scored-rule lists: rules, order, and every
/// `f64` compared by bit pattern (`==` would pass `-0.0` vs `0.0` and fail
/// equal NaNs — exactly the hazards the cache key already avoids).
pub fn rules_bit_identical(a: &[ScoredRule], b: &[ScoredRule]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.rule == y.rule
                && x.weight.to_bits() == y.weight.to_bits()
                && x.count.to_bits() == y.count.to_bits()
                && x.mcount.to_bits() == y.mcount.to_bits()
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::Rule;

    fn scored(count: f64) -> ScoredRule {
        ScoredRule {
            rule: Rule::trivial(2),
            weight: 1.0,
            count,
            mcount: count,
        }
    }

    #[test]
    fn bit_identity_is_stricter_than_float_equality() {
        assert!(rules_bit_identical(&[scored(2.0)], &[scored(2.0)]));
        assert!(!rules_bit_identical(&[scored(0.0)], &[scored(-0.0)]));
        // NaN payload-for-payload: identical bits compare equal even
        // though `==` on the floats would not.
        assert!(rules_bit_identical(
            &[scored(f64::NAN)],
            &[scored(f64::NAN)]
        ));
        assert!(!rules_bit_identical(&[scored(1.0)], &[]));
    }
}
