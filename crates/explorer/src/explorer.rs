//! The [`Explorer`]: a sampled, prefetching, CI-annotated session.

use crate::cache::{CachedRules, SharedResultCache};
use sdd_core::{
    drill_down_with, star_drill_down_with, Brs, DrillKey, Rule, RuleValue, ScoredRule,
    SessionError, WeightFn,
};
use sdd_sampling::{
    count_estimate, FetchMechanism, PrefetchEntry, PrefetchJob, SampleHandler, SampleHandlerConfig,
};
use sdd_table::TableView;
use sdd_table::{Table, TableStore};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide allocator for default table identities. Never reused, so
/// two sessions that did not explicitly agree on a [`ExplorerConfig`]
/// `table_id` can only miss each other's cache entries, never collide.
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique table id from the same space default
/// sessions draw from. Callers that share one store across many sessions
/// (the server engine) allocate one id here and pass it to every session's
/// [`ExplorerConfig`] so their cache entries interoperate — while staying
/// disjoint from every id any other store in the process was assigned.
pub fn allocate_table_id() -> u64 {
    NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed)
}

/// When the post-expansion §4.3 prefetch pass runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchMode {
    /// Never prefetch (every fresh drill-down pays a Create scan).
    Off,
    /// Prefetch synchronously inside the expansion call — the single-user
    /// semantics every other mode must be indistinguishable from.
    #[default]
    Inline,
    /// Record a [`PrefetchJob`] instead of running it; a background worker
    /// (or the next handler-touching call, whichever comes first) runs it
    /// via [`Explorer::run_prefetch`]. This is how a server overlaps the
    /// scan with analyst think-time **without** changing any observable
    /// result: the job always executes after the expansion that produced it
    /// and before the next operation that reads handler state, exactly
    /// where `Inline` would have run it.
    Deferred,
}

/// Configuration of an [`Explorer`].
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Rules per expansion (the paper's `k`, default 4).
    pub k: usize,
    /// The optimizer's `mw` parameter (`None` = maximum possible weight).
    pub max_weight: Option<f64>,
    /// Sampling layer settings (`M`, `minSS`, allocation strategy).
    pub handler: SampleHandlerConfig,
    /// How samples for the displayed rules are pre-fetched after each
    /// expansion.
    pub prefetch: PrefetchMode,
    /// Normal quantile for confidence intervals (1.96 → 95%).
    pub confidence_z: f64,
    /// An optional shared drill-down result cache (a concurrent server
    /// injects one cache across all sessions over its table). `None`
    /// recomputes every expansion. Caching is **transparent**: a hit is
    /// bit-identical to recomputation and changes no counter or transcript
    /// byte — see [`crate::ResultCache`].
    pub cache: Option<SharedResultCache>,
    /// Stable identity of the table behind this session, used (with the
    /// pinned epoch) to key the shared result cache. Sessions meant to
    /// share cache entries over one store must agree on it — the server
    /// engine assigns one id per loaded store. `None` allocates a fresh
    /// process-unique id, which is always safe: a private id can only
    /// cause misses, never a false hit.
    pub table_id: Option<u64>,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        Self {
            k: 4,
            max_weight: None,
            handler: SampleHandlerConfig::default(),
            prefetch: PrefetchMode::Inline,
            confidence_z: 1.96,
            cache: None,
            table_id: None,
        }
    }
}

/// One rule on screen, with its (possibly estimated) aggregates.
#[derive(Debug, Clone)]
pub struct DisplayedRule {
    /// The rule.
    pub rule: Rule,
    /// Count — exact if `exact`, otherwise a sample estimate.
    pub count: f64,
    /// Lower bound of the count's confidence interval.
    pub ci_lo: f64,
    /// Upper bound of the count's confidence interval.
    pub ci_hi: f64,
    /// True once the count is exact (full coverage sample or refresh pass).
    pub exact: bool,
    /// `W(rule)`.
    pub weight: f64,
    /// How the sample behind this rule's expansion was obtained.
    pub source: FetchMechanism,
}

/// Cumulative interaction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorerStats {
    /// Expansions performed.
    pub expansions: usize,
    /// Expansions served without a fresh table scan (Find or Combine).
    pub served_from_memory: usize,
    /// Exact-count refresh passes run.
    pub refreshes: usize,
}

struct Node {
    info: DisplayedRule,
    children: Vec<Node>,
}

/// An interactive, sample-backed smart drill-down session. See module docs.
///
/// Owned and `Send` (the table is shared by `Arc`), so explorers can live
/// in a concurrent server's session registry and hop between worker
/// threads.
pub struct Explorer {
    store: TableStore,
    weight: Box<dyn WeightFn>,
    config: ExplorerConfig,
    handler: SampleHandler,
    click_model: crate::ClickModel,
    root: Node,
    /// Resolved cache identity of the table (config-assigned or allocated).
    table_id: u64,
    /// The deferred §4.3 prefetch job, if [`PrefetchMode::Deferred`] and an
    /// expansion happened since the last drain.
    pending_prefetch: Option<PrefetchJob>,
    /// True when an exact-count refresh has been requested but not run yet
    /// (the server takes refresh off the request path; the background
    /// worker — or the next operation, whichever comes first — drains it).
    pending_refresh: bool,
    /// Interaction counters.
    pub stats: ExplorerStats,
}

impl Explorer {
    /// Opens an explorer over a monolithic in-memory `table`.
    pub fn new(table: Arc<Table>, weight: Box<dyn WeightFn>, config: ExplorerConfig) -> Self {
        Self::with_store(TableStore::Whole(table), weight, config)
    }

    /// Opens an explorer over any [`TableStore`] — monolithic or sharded.
    ///
    /// Sharded stores change *where bytes live*, never results: the
    /// sampling layer's scans stream shard-by-shard (identical covered-row
    /// streams → identical samples), served samples are materialized into
    /// the global code space (identical BRS inputs), and the exact-count
    /// refresh runs per shard in row order (identical counts). The shard
    /// parity suite asserts byte-identical behavior against a monolithic
    /// explorer over the same data.
    pub fn with_store(
        store: TableStore,
        weight: Box<dyn WeightFn>,
        config: ExplorerConfig,
    ) -> Self {
        let handler = SampleHandler::with_store(store.clone(), config.handler.clone());
        let root = Node {
            info: DisplayedRule {
                rule: Rule::trivial(store.n_columns()),
                count: store.n_rows() as f64,
                ci_lo: store.n_rows() as f64,
                ci_hi: store.n_rows() as f64,
                exact: true,
                weight: 0.0,
                source: FetchMechanism::Find,
            },
            children: Vec::new(),
        };
        let click_model = crate::ClickModel::new(store.n_columns(), 1.0);
        let table_id = config
            .table_id
            .unwrap_or_else(|| NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed));
        Self {
            store,
            weight,
            config,
            handler,
            click_model,
            root,
            table_id,
            pending_prefetch: None,
            pending_refresh: false,
            stats: ExplorerStats::default(),
        }
    }

    /// The learned next-drill-down model (paper §4.1: uniform until the
    /// analyst's history says otherwise).
    pub fn click_model(&self) -> &crate::ClickModel {
        &self.click_model
    }

    /// The metadata table: the shared table itself for monolithic stores,
    /// the always-resident zero-row header for sharded ones. Carries the
    /// schema and dictionaries (everything display needs) — never scan it.
    pub fn table(&self) -> &Arc<Table> {
        self.store.header()
    }

    /// The storage this session explores.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// The sampling layer's work counters.
    pub fn handler_stats(&self) -> sdd_sampling::HandlerStats {
        self.handler.stats
    }

    /// Read access to the sampling layer (stored-sample introspection for
    /// the determinism harness and server stats).
    pub fn handler(&self) -> &SampleHandler {
        &self.handler
    }

    /// True if a deferred prefetch job is waiting to run.
    pub fn has_pending_prefetch(&self) -> bool {
        self.pending_prefetch.is_some()
    }

    /// Takes the deferred prefetch job, if any — the handoff point for a
    /// background worker. The caller must eventually feed the job to
    /// [`Explorer::run_prefetch`] (or drop the determinism guarantee of
    /// [`PrefetchMode::Deferred`]).
    pub fn take_pending_prefetch(&mut self) -> Option<PrefetchJob> {
        self.pending_prefetch.take()
    }

    /// Runs a prefetch job against this explorer's sample store.
    pub fn run_prefetch(&mut self, job: &PrefetchJob) -> f64 {
        self.handler.run_prefetch_job(job)
    }

    /// Fallible [`Explorer::run_prefetch`]: a damaged spill file under a
    /// sharded store surfaces as [`SessionError::Storage`].
    pub fn try_run_prefetch(&mut self, job: &PrefetchJob) -> Result<f64, SessionError> {
        self.handler
            .try_run_prefetch_job(job)
            .map_err(|e| SessionError::Storage(e.to_string()))
    }

    /// Runs the deferred prefetch job now, if one is pending. Every
    /// handler-touching operation calls this first, so deferred execution
    /// is observably identical to [`PrefetchMode::Inline`] no matter
    /// whether a background worker got to the job in time. A spill failure
    /// during the job turns into an error response instead of killing the
    /// worker; the job is consumed either way — prefetching is best-effort
    /// and the failure will resurface on the next operation that needs the
    /// damaged shard.
    pub fn try_drain_pending_prefetch(&mut self) -> Result<(), SessionError> {
        match self.pending_prefetch.take() {
            Some(job) => self.try_run_prefetch(&job).map(|_| ()),
            None => Ok(()),
        }
    }

    /// Schedules an exact-count refresh without running it: the background
    /// worker (or the next operation, whichever comes first) drains it via
    /// [`Explorer::try_drain_pending_refresh`] — off the request path, at
    /// the epoch the session is pinned to now. Idempotent.
    pub fn request_refresh(&mut self) {
        self.pending_refresh = true;
    }

    /// True if a deferred exact-count refresh is waiting to run.
    pub fn has_pending_refresh(&self) -> bool {
        self.pending_refresh
    }

    /// Runs the deferred exact-count refresh now, if one is pending. Must
    /// run **before** the session advances to a newer epoch (see
    /// [`Explorer::try_advance_epoch`]) so the deferred pass counts exactly
    /// the rows an inline refresh at request time would have counted. On
    /// failure the request stays pending — the displayed estimates are
    /// untouched and the next drain retries.
    pub fn try_drain_pending_refresh(&mut self) -> Result<(), SessionError> {
        if !self.pending_refresh {
            return Ok(());
        }
        self.try_refresh_exact_counts()?;
        self.pending_refresh = false;
        Ok(())
    }

    /// The session's stable table identity for shared-cache keying.
    pub fn table_id(&self) -> u64 {
        self.table_id
    }

    /// The epoch this session is pinned to (`0` over frozen storage).
    pub fn pinned_epoch(&self) -> u64 {
        self.handler.pinned_epoch()
    }

    /// The operation prologue for live tables: runs deferred work at the
    /// epoch it was scheduled under, then advances the session — the
    /// explorer's pinned store and the sample handler together, onto one
    /// fresh snapshot — to the table's newest epoch, incrementally
    /// maintaining every stored sample over the appended rows. Returns the
    /// pinned epoch. Over frozen storage only the deferred work runs.
    ///
    /// The ordering is the live-session determinism contract
    /// (docs/DETERMINISM.md): pending prefetch and refresh always execute
    /// at the epoch they were created under, never after the pin advanced —
    /// otherwise a deferred job would scan rows its inline twin could not
    /// have seen. On a mid-sync storage fault everything stays at the old
    /// epoch (the handler stages its updates) and the next call retries.
    pub fn try_advance_epoch(&mut self) -> Result<u64, SessionError> {
        self.try_drain_pending_prefetch()?;
        self.try_drain_pending_refresh()?;
        let Some(live) = self.store.as_live() else {
            return Ok(0);
        };
        if live.latest_epoch() > live.epoch() || self.handler.pinned_epoch() < live.latest_epoch() {
            let snap = live.live().snapshot();
            self.handler
                .try_sync_to_snapshot(&snap)
                .map_err(|e| SessionError::Storage(e.to_string()))?;
            if let Some(l) = self.store.as_live_mut() {
                l.pin(snap);
            }
            // The root count is metadata (total rows at the pinned epoch),
            // not a scan result: a session opened over the frozen twin of
            // this epoch would display exactly this number.
            let n = self.store.n_rows() as f64;
            self.root.info.count = n;
            self.root.info.ci_lo = n;
            self.root.info.ci_hi = n;
        }
        Ok(self.store.epoch())
    }

    /// The rule displayed at `path`.
    pub fn rule_at(&self, path: &[usize]) -> Result<&DisplayedRule, SessionError> {
        Ok(&self.node(path)?.info)
    }

    /// Children of the node at `path` (empty if unexpanded).
    pub fn children_at(&self, path: &[usize]) -> Result<Vec<&DisplayedRule>, SessionError> {
        Ok(self.node(path)?.children.iter().map(|n| &n.info).collect())
    }

    fn node(&self, path: &[usize]) -> Result<&Node, SessionError> {
        let mut cur = &self.root;
        for &i in path {
            cur = cur
                .children
                .get(i)
                .ok_or_else(|| SessionError::InvalidPath(path.to_vec()))?;
        }
        Ok(cur)
    }

    fn node_mut(&mut self, path: &[usize]) -> Result<&mut Node, SessionError> {
        let mut cur = &mut self.root;
        for &i in path {
            cur = cur
                .children
                .get_mut(i)
                .ok_or_else(|| SessionError::InvalidPath(path.to_vec()))?;
        }
        Ok(cur)
    }

    /// Expands the rule at `path` (rule drill-down) from a sample.
    pub fn expand(&mut self, path: &[usize]) -> Result<Vec<DisplayedRule>, SessionError> {
        self.expand_inner(path, None)
    }

    /// Star drill-down on `column` of the rule at `path`.
    pub fn expand_star(
        &mut self,
        path: &[usize],
        column: usize,
    ) -> Result<Vec<DisplayedRule>, SessionError> {
        let base = self.node(path)?.info.rule.clone();
        if !base.is_star(column) {
            return Err(SessionError::ColumnNotStarred(column));
        }
        self.expand_inner(path, Some(column))
    }

    fn expand_inner(
        &mut self,
        path: &[usize],
        star: Option<usize>,
    ) -> Result<Vec<DisplayedRule>, SessionError> {
        // Deferred work the background worker hasn't claimed yet must run
        // before this expansion reads the sample store (or deferred mode
        // would diverge from inline semantics), and a live session then
        // advances to the table's newest epoch.
        let base = self.node(path)?.info.rule.clone();
        self.try_advance_epoch()?;
        // Feed the learned click model (§4.1): drilling into a non-trivial
        // rule reveals which columns the analyst cares about.
        if !base.is_trivial() {
            self.click_model.record(&base);
        }
        let sample = self
            .handler
            .try_get_sample(&base)
            .map_err(|e| SessionError::Storage(e.to_string()))?;
        self.stats.expansions += 1;
        if sample.mechanism != FetchMechanism::Create {
            self.stats.served_from_memory += 1;
        }

        let sample_view = sample.view.as_view();
        let result_rules = self.search(&base, star, &sample_view);

        let sample_size = sample.view.len();
        let exact_sample = sample.scale <= 1.0 + 1e-9;
        let children: Vec<Node> = result_rules
            .iter()
            .map(|s| {
                let covered = (s.count / sample.scale).round() as usize;
                let est = count_estimate(
                    covered.min(sample_size),
                    sample_size,
                    sample.scale.max(1.0),
                    self.config.confidence_z,
                );
                Node {
                    info: DisplayedRule {
                        rule: s.rule.clone(),
                        count: s.count,
                        ci_lo: if exact_sample { s.count } else { est.lo },
                        ci_hi: if exact_sample { s.count } else { est.hi },
                        exact: exact_sample,
                        weight: s.weight,
                        source: sample.mechanism,
                    },
                    children: Vec::new(),
                }
            })
            .collect();
        let infos: Vec<DisplayedRule> = children.iter().map(|n| n.info.clone()).collect();

        // Pre-fetch for the likely next drill-downs (§4.3): uniform click
        // probability over the new rules, selectivities from the estimates.
        // Inline runs the scan now; Deferred records the job for the
        // background worker (or the next handler-touching call).
        if self.config.prefetch != PrefetchMode::Off && !infos.is_empty() {
            let base_count = self.node(path)?.info.count.max(1.0);
            let rules: Vec<Rule> = infos.iter().map(|i| i.rule.clone()).collect();
            let probs = self.click_model.probabilities(&rules);
            let entries: Vec<PrefetchEntry> = infos
                .iter()
                .zip(probs)
                .map(|(i, probability)| PrefetchEntry {
                    rule: i.rule.clone(),
                    probability,
                    selectivity: (i.count / base_count).clamp(0.0, 1.0),
                })
                .collect();
            let job = PrefetchJob {
                parent: base,
                entries,
            };
            match self.config.prefetch {
                PrefetchMode::Inline => {
                    self.handler.run_prefetch_job(&job);
                }
                PrefetchMode::Deferred => self.pending_prefetch = Some(job),
                PrefetchMode::Off => unreachable!("guarded above"),
            }
        }

        self.node_mut(path)?.children = children;
        Ok(infos)
    }

    /// Runs (or serves from the shared cache) the BRS search for one
    /// drill-down. Caching is transparent by construction: only this pure
    /// computation is ever skipped — sampling, counters, the click model,
    /// and prefetch scheduling all run identically on hit and miss. When
    /// debug assertions are enabled every hit is re-verified bit-for-bit
    /// against a fresh computation (the cache-transparency invariant,
    /// docs/DETERMINISM.md).
    fn search(&self, base: &Rule, star: Option<usize>, view: &TableView<'_>) -> CachedRules {
        let mut brs = Brs::new(&*self.weight);
        if let Some(mw) = self.config.max_weight {
            brs = brs.with_max_weight(mw);
        }
        let run = || -> Vec<ScoredRule> {
            match star {
                None => drill_down_with(&brs, view, base, self.config.k).rules,
                Some(col) => star_drill_down_with(&brs, view, base, col, self.config.k).rules,
            }
        };
        let Some((cache, key)) = self.drill_cache_key(base, star, view) else {
            return Arc::new(run());
        };
        match cache.0.get(&key) {
            Some(hit) => {
                debug_assert!(
                    crate::rules_bit_identical(&hit, &run()),
                    "cache hit diverged from recomputation for base {base:?}"
                );
                hit
            }
            None => {
                let fresh: CachedRules = Arc::new(run());
                cache.0.insert(key, Arc::clone(&fresh));
                fresh
            }
        }
    }

    /// The shared-cache key for a drill-down over `view`, or `None` when no
    /// cache is configured or the weight function has no stable identity
    /// ([`WeightFn::cache_tag`] returns `None` — uncacheable by contract).
    fn drill_cache_key(
        &self,
        base: &Rule,
        star: Option<usize>,
        view: &TableView<'_>,
    ) -> Option<(SharedResultCache, DrillKey)> {
        let cache = self.config.cache.clone()?;
        let weight_tag = self.weight.cache_tag()?;
        // Table identity is the engine-assigned `(table_id, epoch)` pair —
        // never a pointer. A raw `Arc` pointer can alias after a
        // drop/realloc (ABA), and a live table changes content under one
        // allocation; the epoch comes from the sampling layer's pin, so
        // the key names exactly the data the sample view was drawn from
        // and no hit ever crosses an epoch.
        let key = sdd_core::drill_key(
            self.table_id,
            self.handler.pinned_epoch(),
            sdd_core::view_digest(view),
            base,
            star,
            self.config.k,
            &weight_tag,
            self.config.max_weight,
            self.store.n_columns(),
        );
        Some((cache, key))
    }

    /// Speculatively precomputes the rule drill-down for `rule` into the
    /// shared cache, using a **read-only** peek at the stored samples — no
    /// counter, clock, or eviction state changes, so a speculation that
    /// never pays off is invisible to the session. Returns `true` when the
    /// result is now cached (freshly computed or already present).
    ///
    /// A server's background prefetch worker calls this during analyst
    /// think-time with the transition model's predicted next drill-down;
    /// if the prediction lands, the expansion's search is a cache hit.
    pub fn speculate_expand(&self, rule: &Rule) -> bool {
        let Some(sample) = self.handler.peek_stored(rule) else {
            return false;
        };
        let view = sample.view.as_view();
        let Some((cache, key)) = self.drill_cache_key(rule, None, &view) else {
            return false;
        };
        if cache.0.contains(&key) {
            return true;
        }
        let mut brs = Brs::new(&*self.weight);
        if let Some(mw) = self.config.max_weight {
            brs = brs.with_max_weight(mw);
        }
        let fresh = Arc::new(drill_down_with(&brs, &view, rule, self.config.k).rules);
        cache.0.insert(key, fresh);
        true
    }

    /// Collapses (rolls up) the node at `path`.
    pub fn collapse(&mut self, path: &[usize]) -> Result<(), SessionError> {
        self.node_mut(path)?.children.clear();
        Ok(())
    }

    /// Replaces every displayed estimate with its exact count in **one**
    /// pass over the table at the pinned epoch (the paper's background
    /// refresh, §4.3). The sharded one-pass count surfaces a damaged spill
    /// file as [`SessionError::Storage`]; displayed estimates are left
    /// untouched on failure. (This is deliberately fallible-only: the old
    /// infallible wrapper turned refresh-time spill faults into panics on
    /// the server's request path.)
    pub fn try_refresh_exact_counts(&mut self) -> Result<(), SessionError> {
        self.stats.refreshes += 1;
        // Collect visible rules.
        let mut rules: Vec<Rule> = Vec::new();
        fn collect(node: &Node, out: &mut Vec<Rule>) {
            out.push(node.info.rule.clone());
            for ch in &node.children {
                collect(ch, out);
            }
        }
        collect(&self.root, &mut rules);

        // One scan counting all of them. Sharded stores scan shard-by-shard
        // in row order — unit additions, so the counts are identical to the
        // monolithic pass.
        let counts = match &self.store {
            TableStore::Whole(table) => {
                let mut counts = vec![0.0f64; rules.len()];
                let mut codes: Vec<u32> = Vec::with_capacity(table.n_columns());
                for row in 0..table.n_rows() as u32 {
                    table.row_codes(row, &mut codes);
                    for (i, rule) in rules.iter().enumerate() {
                        if rule.covers_codes(&codes) {
                            counts[i] += 1.0;
                        }
                    }
                }
                counts
            }
            TableStore::Sharded(st) => sdd_core::try_count_rules_sharded(st, &rules)
                .map_err(|e| SessionError::Storage(e.to_string()))?,
            TableStore::Live(l) => sdd_core::try_count_rules_sharded(&l.pinned().table, &rules)
                .map_err(|e| SessionError::Storage(e.to_string()))?,
        };

        // Write back in the same traversal order.
        fn write_back(node: &mut Node, counts: &[f64], idx: &mut usize) {
            let c = counts[*idx];
            *idx += 1;
            node.info.count = c;
            node.info.ci_lo = c;
            node.info.ci_hi = c;
            node.info.exact = true;
            for ch in &mut node.children {
                write_back(ch, counts, idx);
            }
        }
        let mut idx = 0;
        write_back(&mut self.root, &counts, &mut idx);
        Ok(())
    }

    /// All visible rules with their depths, in display order.
    pub fn visible(&self) -> Vec<(usize, &DisplayedRule)> {
        let mut out = Vec::new();
        fn walk<'n>(node: &'n Node, depth: usize, out: &mut Vec<(usize, &'n DisplayedRule)>) {
            out.push((depth, &node.info));
            for ch in &node.children {
                walk(ch, depth + 1, out);
            }
        }
        walk(&self.root, 0, &mut out);
        out
    }

    /// Renders the display: the paper's dotted-indent table with a
    /// confidence-interval column.
    pub fn render(&self) -> String {
        let n_cols = self.store.n_columns();
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut header: Vec<String> = (0..n_cols)
            .map(|c| self.store.schema().column_name(c).to_owned())
            .collect();
        header.extend(["Count".to_owned(), "95% CI".to_owned(), "Weight".to_owned()]);
        rows.push(header);

        for (depth, info) in self.visible() {
            let mut row = Vec::with_capacity(n_cols + 3);
            for c in 0..n_cols {
                let cell = match info.rule.get(c) {
                    RuleValue::Star => "?".to_owned(),
                    RuleValue::Value(code) => self
                        .store
                        .header()
                        .dictionary(c)
                        .value_of(code)
                        .unwrap_or("<bad-code>")
                        .to_owned(),
                };
                if c == 0 {
                    row.push(format!("{}{}", ". ".repeat(depth), cell));
                } else {
                    row.push(cell);
                }
            }
            row.push(format!("{:.0}", info.count));
            row.push(if info.exact {
                "exact".to_owned()
            } else {
                format!("[{:.0}, {:.0}]", info.ci_lo, info.ci_hi)
            });
            row.push(format!("{:.0}", info.weight));
            rows.push(row);
        }

        render_aligned(&rows)
    }
}

fn render_aligned(rows: &[Vec<String>]) -> String {
    let n = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; n];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(&format!("{:<w$}", cell, w = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if ri == 0 {
            out.extend(std::iter::repeat_n(
                '-',
                widths.iter().sum::<usize>() + 3 * (n - 1),
            ));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::SizeWeight;
    use sdd_datagen::retail;
    use sdd_sampling::AllocationStrategy;

    fn config(min_ss: usize) -> ExplorerConfig {
        ExplorerConfig {
            k: 3,
            max_weight: Some(3.0),
            handler: SampleHandlerConfig {
                capacity: 30_000,
                min_sample_size: min_ss,
                seed: 7,
                strategy: AllocationStrategy::Dp,
            },
            prefetch: PrefetchMode::Inline,
            confidence_z: 1.96,
            cache: None,
            table_id: None,
        }
    }

    #[test]
    fn expansion_shows_estimates_with_intervals() {
        let table = Arc::new(retail(42));
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(3000));
        let shown = ex.expand(&[]).unwrap();
        assert_eq!(shown.len(), 3);
        for r in &shown {
            assert!(r.ci_lo <= r.count && r.count <= r.ci_hi);
            if !r.exact {
                assert!(
                    r.ci_hi > r.ci_lo,
                    "non-exact estimate needs a real interval"
                );
            }
        }
        // The walkthrough patterns appear (estimates near planted counts).
        let walmart = shown
            .iter()
            .find(|r| r.rule.display(&table) == "(Walmart, ?, ?)")
            .expect("Walmart rule");
        assert!((walmart.count - 1000.0).abs() < 200.0);
    }

    #[test]
    fn intervals_cover_the_truth_most_of_the_time() {
        let table = Arc::new(retail(42));
        let mut hits = 0usize;
        let mut total = 0usize;
        for seed in 0..8u64 {
            let mut cfg = config(2000);
            cfg.handler.seed = seed;
            let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), cfg);
            for r in ex.expand(&[]).unwrap() {
                let truth = sdd_core::rule_count(&table.view(), &r.rule);
                total += 1;
                if truth >= r.ci_lo - 1e-9 && truth <= r.ci_hi + 1e-9 {
                    hits += 1;
                }
            }
        }
        assert!(
            hits as f64 / total as f64 >= 0.85,
            "CI coverage too low: {hits}/{total}"
        );
    }

    #[test]
    fn prefetch_makes_second_expansion_memory_served() {
        let table = Arc::new(retail(42));
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(1000));
        let shown = ex.expand(&[]).unwrap();
        let walmart = shown
            .iter()
            .position(|r| r.rule.display(&table).contains("Walmart"))
            .unwrap();
        let creates_before = ex.handler_stats().creates;
        let children = ex.expand(&[walmart]).unwrap();
        // The expansion itself was served from memory (Find/Combine); the
        // post-expansion prefetch pass may scan, but no Create was needed.
        assert_eq!(
            ex.handler_stats().creates,
            creates_before,
            "drill into a prefetched rule must not Create"
        );
        assert_eq!(ex.stats.served_from_memory, 1);
        assert!(children.iter().all(|c| c.source != FetchMechanism::Create));
    }

    #[test]
    fn refresh_exact_counts_matches_ground_truth() {
        let table = Arc::new(retail(42));
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(2000));
        ex.expand(&[]).unwrap();
        ex.try_refresh_exact_counts().unwrap();
        for (_, info) in ex.visible().iter().skip(1) {
            let truth = sdd_core::rule_count(&table.view(), &info.rule);
            assert_eq!(info.count, truth);
            assert!(info.exact);
            assert_eq!(info.ci_lo, info.ci_hi);
        }
    }

    #[test]
    fn star_expansion_through_sampling() {
        let table = Arc::new(retail(42));
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(2000));
        let shown = ex.expand(&[]).unwrap();
        let walmart = shown
            .iter()
            .position(|r| r.rule.display(&table).contains("Walmart"))
            .unwrap();
        let region = table.schema().index_of("Region").unwrap();
        let children = ex.expand_star(&[walmart], region).unwrap();
        assert!(!children.is_empty());
        for c in &children {
            assert!(!c.rule.is_star(region));
        }
    }

    #[test]
    fn star_on_instantiated_column_is_error() {
        let table = Arc::new(retail(42));
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(2000));
        let shown = ex.expand(&[]).unwrap();
        let target = shown
            .iter()
            .position(|r| !r.rule.is_star(0))
            .expect("some rule instantiates Store");
        assert!(matches!(
            ex.expand_star(&[target], 0),
            Err(SessionError::ColumnNotStarred(0))
        ));
    }

    #[test]
    fn render_includes_ci_column_and_indentation() {
        let table = Arc::new(retail(42));
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(2000));
        ex.expand(&[]).unwrap();
        let r = ex.render();
        assert!(r.contains("95% CI"), "{r}");
        assert!(r.lines().any(|l| l.starts_with(". ")), "{r}");
    }

    #[test]
    fn collapse_clears_children() {
        let table = Arc::new(retail(42));
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(2000));
        ex.expand(&[]).unwrap();
        assert!(!ex.children_at(&[]).unwrap().is_empty());
        ex.collapse(&[]).unwrap();
        assert!(ex.children_at(&[]).unwrap().is_empty());
    }

    #[test]
    fn click_model_learns_from_drill_history() {
        let table = Arc::new(retail(42));
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(1000));
        assert_eq!(ex.click_model().observations(), 0);
        let shown = ex.expand(&[]).unwrap();
        // Drill into the Walmart rule (instantiates Store).
        let walmart = shown
            .iter()
            .position(|r| r.rule.display(&table).contains("Walmart"))
            .unwrap();
        ex.expand(&[walmart]).unwrap();
        assert_eq!(ex.click_model().observations(), 1);
        let store = table.schema().index_of("Store").unwrap();
        let region = table.schema().index_of("Region").unwrap();
        assert!(
            ex.click_model().column_affinity(store) > ex.click_model().column_affinity(region),
            "Store affinity should rise after drilling a Store rule"
        );
    }

    /// Drives the same three-step drill script under a prefetch mode and
    /// snapshots everything observable: rendered display, stored samples,
    /// and handler counters.
    fn drive_script(
        table: &Arc<Table>,
        mode: PrefetchMode,
        drain_like_worker: bool,
    ) -> (String, Vec<sdd_sampling::StoredSampleInfo>, String) {
        let mut cfg = config(1000);
        cfg.prefetch = mode;
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), cfg);
        for path in [vec![], vec![0], vec![1]] {
            ex.expand(&path).unwrap();
            if drain_like_worker {
                // Simulate the background worker winning the race during
                // think-time: claim and run the job between requests.
                if let Some(job) = ex.take_pending_prefetch() {
                    ex.run_prefetch(&job);
                }
            }
        }
        ex.try_drain_pending_prefetch().unwrap();
        (
            ex.render(),
            ex.handler().stored_samples(),
            format!("{:?} {:?}", ex.stats, ex.handler_stats()),
        )
    }

    #[test]
    fn deferred_prefetch_is_indistinguishable_from_inline() {
        let table = Arc::new(retail(42));
        let inline = drive_script(&table, PrefetchMode::Inline, false);
        // Deferred where the "worker" runs every job during think-time.
        let deferred_worker = drive_script(&table, PrefetchMode::Deferred, true);
        // Deferred where the worker never shows up and the next request
        // drains the job itself.
        let deferred_lazy = drive_script(&table, PrefetchMode::Deferred, false);
        assert_eq!(inline.0, deferred_worker.0);
        assert_eq!(inline.1, deferred_worker.1);
        assert_eq!(inline.2, deferred_worker.2);
        assert_eq!(inline.0, deferred_lazy.0);
        assert_eq!(inline.1, deferred_lazy.1);
        assert_eq!(inline.2, deferred_lazy.2);
    }

    #[test]
    fn prefetch_off_pays_a_create_per_fresh_rule() {
        let table = Arc::new(retail(42));
        let mut cfg = config(1000);
        cfg.prefetch = PrefetchMode::Off;
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), cfg);
        ex.expand(&[]).unwrap();
        ex.expand(&[0]).unwrap();
        assert!(!ex.has_pending_prefetch());
        assert!(
            ex.handler_stats().creates >= 2,
            "without prefetch every fresh drill-down must Create: {:?}",
            ex.handler_stats()
        );
    }

    #[test]
    fn invalid_path_is_reported() {
        let table = Arc::new(retail(42));
        let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(2000));
        assert!(matches!(ex.expand(&[3]), Err(SessionError::InvalidPath(_))));
    }

    /// A counting in-memory [`ResultCache`] for keying tests.
    #[derive(Default)]
    struct TestCache {
        map: std::sync::Mutex<std::collections::HashMap<DrillKey, CachedRules>>,
        hits: std::sync::atomic::AtomicUsize,
        inserts: std::sync::atomic::AtomicUsize,
    }

    impl crate::cache::ResultCache for TestCache {
        fn get(&self, key: &DrillKey) -> Option<CachedRules> {
            let hit = self.map.lock().unwrap().get(key).cloned();
            if hit.is_some() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            hit
        }
        fn contains(&self, key: &DrillKey) -> bool {
            self.map.lock().unwrap().contains_key(key)
        }
        fn insert(&self, key: DrillKey, value: CachedRules) {
            self.inserts.fetch_add(1, Ordering::Relaxed);
            self.map.lock().unwrap().insert(key, value);
        }
    }

    fn shared(cache: &Arc<TestCache>) -> SharedResultCache {
        SharedResultCache(Arc::clone(cache) as Arc<dyn crate::cache::ResultCache>)
    }

    /// Satellite regression: two sequentially loaded stores must never
    /// share cache entries, even when their data is identical and the
    /// allocator reuses the freed `Arc` (the ABA hazard the old
    /// `Arc::as_ptr` tag was exposed to). Default table ids are
    /// process-unique, so the second session's identical drill-down is a
    /// miss by construction.
    #[test]
    fn sequentially_loaded_stores_never_share_cache_entries() {
        let cache = Arc::new(TestCache::default());
        for _ in 0..2 {
            let table = Arc::new(retail(42));
            let mut cfg = config(2000);
            cfg.cache = Some(shared(&cache));
            let mut ex = Explorer::new(table, Box::new(SizeWeight), cfg);
            ex.expand(&[]).unwrap();
        }
        assert_eq!(cache.hits.load(Ordering::Relaxed), 0);
        assert_eq!(cache.inserts.load(Ordering::Relaxed), 2);
        assert_eq!(
            cache.map.lock().unwrap().len(),
            2,
            "identical drill-downs over separately loaded stores must key apart"
        );
    }

    /// The sharing contract still works when sessions agree on an
    /// engine-assigned id: the second session's search is a hit (verified
    /// bit-identical against recomputation by the debug assertion).
    #[test]
    fn explicit_table_id_shares_cache_across_sessions() {
        let table = Arc::new(retail(42));
        let cache = Arc::new(TestCache::default());
        for _ in 0..2 {
            let mut cfg = config(2000);
            cfg.cache = Some(shared(&cache));
            cfg.table_id = Some(77);
            let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), cfg);
            ex.expand(&[]).unwrap();
        }
        assert_eq!(cache.inserts.load(Ordering::Relaxed), 1);
        assert_eq!(cache.hits.load(Ordering::Relaxed), 1);
    }

    fn live_rows(lo: usize, hi: usize) -> Vec<[String; 2]> {
        (lo..hi)
            .map(|i| [format!("s{}", i % 4), format!("p{}", i % 7)])
            .collect()
    }

    /// Appends bump the session's pinned epoch at the next operation, the
    /// root count tracks the pinned epoch's row count, and a repeated
    /// drill-down after an append never hits the cache — the epoch in the
    /// key changed (the "no cache hit crosses an epoch" invariant).
    #[test]
    fn append_bumps_epoch_and_never_serves_stale_cache() {
        use sdd_table::{LiveTable, LiveTableConfig};
        let schema = sdd_table::Schema::new(["Store", "Product"]).unwrap();
        let live =
            Arc::new(LiveTable::new(schema, vec![], &LiveTableConfig::in_memory(16)).unwrap());
        live.try_append(&live_rows(0, 64), &[]).unwrap();

        let cache = Arc::new(TestCache::default());
        let mut cfg = config(10);
        cfg.handler.capacity = 400;
        cfg.cache = Some(shared(&cache));
        let mut ex = Explorer::with_store(
            TableStore::from(Arc::clone(&live)),
            Box::new(SizeWeight),
            cfg,
        );
        ex.expand(&[]).unwrap();
        assert_eq!(ex.pinned_epoch(), 1);
        assert_eq!(ex.rule_at(&[]).unwrap().count, 64.0);

        live.try_append(&live_rows(64, 128), &[]).unwrap();
        ex.collapse(&[]).unwrap();
        ex.expand(&[]).unwrap();
        assert_eq!(ex.pinned_epoch(), 2);
        assert_eq!(ex.rule_at(&[]).unwrap().count, 128.0);
        assert_eq!(
            cache.hits.load(Ordering::Relaxed),
            0,
            "a cache hit crossed an epoch"
        );
        assert_eq!(cache.inserts.load(Ordering::Relaxed), 2);
    }

    /// Deferred refresh (requested, drained by the next operation's
    /// prologue) is observably identical to running the refresh inline at
    /// request time.
    #[test]
    fn deferred_refresh_is_indistinguishable_from_inline() {
        let table = Arc::new(retail(42));
        let run = |deferred: bool| {
            let mut ex = Explorer::new(table.clone(), Box::new(SizeWeight), config(1000));
            ex.expand(&[]).unwrap();
            if deferred {
                ex.request_refresh();
                assert!(ex.has_pending_refresh());
            } else {
                ex.try_refresh_exact_counts().unwrap();
            }
            ex.expand(&[0]).unwrap();
            assert!(!ex.has_pending_refresh());
            (
                ex.render(),
                ex.handler().stored_samples(),
                format!("{:?} {:?}", ex.stats, ex.handler_stats()),
            )
        };
        let inline = run(false);
        let deferred = run(true);
        assert_eq!(inline.0, deferred.0);
        assert_eq!(inline.1, deferred.1);
        assert_eq!(inline.2, deferred.2);
    }
}
