//! A learned drill-down probability model (paper §4.1: the distribution
//! over next drill-down targets "can be a uniform distribution, or a
//! machine learned distribution using past user data").
//!
//! [`ClickModel`] keeps Laplace-smoothed per-column affinities from the
//! analyst's past drill-downs: every time a rule is expanded, the columns
//! it instantiates get credit. Candidate next targets are then scored by
//! the product of their instantiated columns' affinities, normalized into
//! the probability distribution the sample allocator consumes.

use sdd_core::Rule;

/// Laplace-smoothed per-column click statistics.
#[derive(Debug, Clone)]
pub struct ClickModel {
    /// Per-column drill credit.
    column_clicks: Vec<f64>,
    /// Total recorded drill-downs.
    total: f64,
    /// Smoothing pseudo-count.
    alpha: f64,
}

impl ClickModel {
    /// A fresh model over `n_columns` columns with smoothing `alpha > 0`
    /// (uniform until data arrives).
    pub fn new(n_columns: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0, "smoothing must be positive");
        Self {
            column_clicks: vec![0.0; n_columns],
            total: 0.0,
            alpha,
        }
    }

    /// Records that the analyst drilled into `rule`.
    pub fn record(&mut self, rule: &Rule) {
        for c in rule.instantiated_columns() {
            self.column_clicks[c] += 1.0;
        }
        self.total += 1.0;
    }

    /// Number of recorded drill-downs.
    pub fn observations(&self) -> usize {
        self.total as usize
    }

    /// The smoothed affinity of column `c` in `[0, 1]`: how often the
    /// analyst's drill targets instantiate it.
    pub fn column_affinity(&self, c: usize) -> f64 {
        (self.column_clicks[c] + self.alpha) / (self.total + 2.0 * self.alpha)
    }

    /// Relative preference score for one candidate rule: the product of its
    /// instantiated columns' affinities (starred columns contribute the
    /// complementary probability). Uniform when no data has been recorded.
    pub fn score(&self, rule: &Rule) -> f64 {
        (0..rule.n_columns())
            .map(|c| {
                let a = self.column_affinity(c);
                if rule.is_star(c) {
                    1.0 - a
                } else {
                    a
                }
            })
            .product()
    }

    /// Normalizes candidate scores into the probability distribution over
    /// next drill-downs that the §4.1 allocator takes. Returns an empty
    /// vector for no candidates.
    pub fn probabilities(&self, candidates: &[Rule]) -> Vec<f64> {
        let scores: Vec<f64> = candidates.iter().map(|r| self.score(r)).collect();
        let sum: f64 = scores.iter().sum();
        if sum <= 0.0 {
            let n = candidates.len().max(1) as f64;
            return vec![1.0 / n; candidates.len()];
        }
        scores.into_iter().map(|s| s / sum).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(n: usize, cols: &[usize]) -> Rule {
        let mut r = Rule::trivial(n);
        for &c in cols {
            r = r.with_value(c, 0);
        }
        r
    }

    #[test]
    fn fresh_model_is_uniform() {
        let m = ClickModel::new(3, 1.0);
        let candidates = [rule(3, &[0]), rule(3, &[1]), rule(3, &[2])];
        let p = m.probabilities(&candidates);
        for &pi in &p {
            assert!((pi - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn repeated_clicks_shift_mass_toward_the_column() {
        let mut m = ClickModel::new(3, 1.0);
        for _ in 0..10 {
            m.record(&rule(3, &[0]));
        }
        let candidates = [rule(3, &[0]), rule(3, &[1])];
        let p = m.probabilities(&candidates);
        assert!(p[0] > 0.8, "column-0 affinity should dominate: {p:?}");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_column_rules_credit_every_column() {
        let mut m = ClickModel::new(3, 1.0);
        m.record(&rule(3, &[0, 2]));
        assert!(m.column_affinity(0) > m.column_affinity(1));
        assert!(m.column_affinity(2) > m.column_affinity(1));
        assert_eq!(m.observations(), 1);
    }

    #[test]
    fn affinities_stay_in_unit_interval() {
        let mut m = ClickModel::new(2, 0.5);
        for _ in 0..100 {
            m.record(&rule(2, &[1]));
        }
        for c in 0..2 {
            let a = m.column_affinity(c);
            assert!((0.0..=1.0).contains(&a));
        }
        assert!(m.column_affinity(1) > 0.9);
        assert!(m.column_affinity(0) < 0.1);
    }

    #[test]
    fn probabilities_of_empty_candidates() {
        let m = ClickModel::new(2, 1.0);
        assert!(m.probabilities(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "smoothing")]
    fn zero_alpha_rejected() {
        let _ = ClickModel::new(2, 0.0);
    }
}
