//! Known-good fixture for D003: one loop justifies its fixed operation
//! order with a `det-order:` doc line, the other delegates merging to the
//! ordered pairwise reducer.

/// Sums a slice front to back.
///
/// det-order: sequential scan in input order on one thread; no partials
/// to merge, so the operation order is fixed by construction.
pub fn total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x;
    }
    acc
}

/// Sums per-chunk partials, merging in fixed order.
pub fn total_chunked(xs: &[f64]) -> f64 {
    let partials: Vec<f64> = xs.chunks(8).map(total).collect();
    let mut merged = vec![0.0f64];
    for p in partials {
        merged.push(p);
    }
    reduce_pairwise(&merged)
}

fn reduce_pairwise(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        n => reduce_pairwise(&xs[..n / 2]) + reduce_pairwise(&xs[n / 2..]),
    }
}
