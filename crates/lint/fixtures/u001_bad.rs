//! Known-bad fixture for U001: undocumented unsafe.

pub fn load(p: *const u32) -> u32 {
    unsafe { *p }
}

/// Adds one through a raw pointer (doc says nothing about safety).
pub unsafe fn raw_add(p: *mut u32) {
    *p += 1;
}
