//! Known-bad fixture for D003: a float accumulation loop with no ordered
//! reducer and no justification comment.

pub fn total(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x;
    }
    acc
}
