//! Known-good fixture for U001: every unsafe region states its discharged
//! obligations.

pub fn load(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is non-null, aligned, and valid
    // for reads for the lifetime of this call.
    unsafe { *p }
}

/// Adds one through a raw pointer.
///
/// # Safety
///
/// `p` must be non-null, aligned, and valid for reads and writes; no other
/// reference to the pointee may exist during the call.
pub unsafe fn raw_add(p: *mut u32) {
    *p += 1;
}
