//! Known-bad fixture for D001: std hash containers in a deterministic crate.
use std::collections::HashMap;

pub fn build() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}
