//! Known-bad fixture for X001: a public sharded entry point with no
//! monolithic twin and no parity-suite coverage.

/// A sharded scan nobody can cross-check.
pub fn orphan_scan_sharded(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}
