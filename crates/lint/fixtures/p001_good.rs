//! Known-good fixture for P001: failures route through an error type;
//! tests may unwrap.

pub fn header(bytes: &[u8]) -> Result<u32, String> {
    let Some(first) = bytes.first().copied() else {
        return Err("empty spill file".to_owned());
    };
    if first == 0 {
        return Err("zero header byte".to_owned());
    }
    Ok(u32::from(first))
}

#[cfg(test)]
mod tests {
    use super::header;

    #[test]
    fn round_trip() {
        assert_eq!(header(&[7]).unwrap(), 7);
        header(&[]).expect_err("empty must fail");
    }
}
