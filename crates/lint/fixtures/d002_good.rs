//! Known-good fixture for D002: the deterministic crate takes a deadline
//! callback instead of reading the clock itself; timing stays with the
//! caller (bench/server). Tests may time themselves.

pub fn run_until(mut keep_going: impl FnMut(usize) -> bool) -> usize {
    let mut steps = 0;
    while keep_going(steps) {
        steps += 1;
        if steps > 1_000 {
            break;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::run_until;

    #[test]
    fn caller_owns_the_clock() {
        let start = std::time::Instant::now();
        let budget = std::time::Duration::from_millis(5);
        let steps = run_until(|_| start.elapsed() < budget);
        assert!(steps <= 1_001);
    }
}
