//! Known-bad fixture for D002: wall-clock and thread-identity reads in a
//! deterministic crate.

pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn who_am_i() -> String {
    format!("{:?}", std::thread::current().id())
}
