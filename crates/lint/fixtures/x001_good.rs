//! Known-good fixture for X001: the sharded entry point has a monolithic
//! twin in the same crate; the parity suite (supplied separately by the
//! self-test) calls the sharded name.

/// Monolithic reference scan.
pub fn paired_scan(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Sharded twin of [`paired_scan`].
pub fn paired_scan_sharded(xs: &[f64]) -> f64 {
    paired_scan(xs)
}
