//! Known-bad fixture for P001: panics in spill-I/O code.

pub fn header(bytes: &[u8]) -> u32 {
    let first = bytes.first().copied().unwrap();
    if first == 0 {
        panic!("zero header byte");
    }
    let rest = bytes.get(1).copied().expect("one-byte file");
    u32::from(first) + u32::from(rest)
}
