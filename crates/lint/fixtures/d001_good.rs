//! Known-good fixture for D001: fixed-hasher maps in source, std maps only
//! inside test regions (tests may hash freely).
use rustc_hash::FxHashMap;

pub fn build() -> usize {
    let m: FxHashMap<u32, u32> = FxHashMap::default();
    m.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_map_in_test_is_fine() {
        let m: HashMap<u32, u32> = std::collections::HashMap::new();
        assert_eq!(m.len(), 0);
    }
}
