//! Fixture exercising suppression markers: every violation below carries a
//! `// sdd-lint: allow(RULE) reason` marker with a non-empty reason, so the
//! whole file must lint clean.

// sdd-lint: allow(D001) scratch map is drained into a sorted Vec before any iteration
use std::collections::HashMap;

pub fn scratch() -> usize {
    // sdd-lint: allow(D002) transitional shim; timing moves to the caller next release
    let t = std::time::Instant::now();
    let m: std::collections::HashMap<u32, u32> = HashMap::new(); // sdd-lint: allow(D001) drained sorted below
    m.len() + t.elapsed().as_millis() as usize
}
