//! Fixture self-tests: every rule in the catalog is checked against a
//! known-bad source (it must fire, on the right lines) and a known-good
//! source (it must stay silent), plus the suppression-marker semantics and
//! the baseline round-trip. Fixtures live in `fixtures/` — a directory the
//! workspace scan skips — and are linted under pretend workspace paths
//! that put them in each rule's scope.

use sdd_lint::baseline::Baseline;
use sdd_lint::{lint_source, lint_sources, Finding};

/// Lints a fixture under a pretend path with every rule enabled.
fn lint(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_source(rel_path, src)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------------
// D001 — std hash containers
// ---------------------------------------------------------------------------

#[test]
fn d001_fires_on_known_bad() {
    let findings = lint(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/d001_bad.rs"),
    );
    assert!(
        findings.iter().all(|f| f.rule == "D001"),
        "only D001 expected: {findings:?}"
    );
    // The import plus both inline qualified paths.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert_eq!(findings[0].line, 2, "the `use` line");
}

#[test]
fn d001_silent_on_known_good() {
    let findings = lint(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/d001_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d001_out_of_scope_crates_may_hash() {
    // Same bad source under a non-deterministic crate: no findings.
    let findings = lint(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/d001_bad.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// D002 — wall-clock / thread-identity reads
// ---------------------------------------------------------------------------

#[test]
fn d002_fires_on_known_bad() {
    let findings = lint(
        "crates/sampling/src/fixture.rs",
        include_str!("../fixtures/d002_bad.rs"),
    );
    let rules = rules_of(&findings);
    assert!(
        rules.iter().all(|r| *r == "D002"),
        "only D002 expected: {findings:?}"
    );
    // Instant::now, SystemTime (twice: return type + call), thread::current.
    assert!(findings.len() >= 3, "{findings:?}");
    assert!(
        findings.iter().any(|f| f.message.contains("Instant::now")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("thread-identity")),
        "{findings:?}"
    );
}

#[test]
fn d002_silent_on_known_good() {
    let findings = lint(
        "crates/sampling/src/fixture.rs",
        include_str!("../fixtures/d002_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// D003 — ordered float reduction
// ---------------------------------------------------------------------------

#[test]
fn d003_fires_on_known_bad() {
    let findings = lint(
        "crates/core/src/kernel.rs",
        include_str!("../fixtures/d003_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["D003"], "{findings:?}");
    assert!(findings[0].message.contains("fn total"), "{findings:?}");
}

#[test]
fn d003_silent_on_known_good() {
    let findings = lint(
        "crates/core/src/kernel.rs",
        include_str!("../fixtures/d003_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn d003_audits_only_the_kernel_files() {
    // The same accumulation loop elsewhere in sdd-core is not D003's
    // business (panic of scope creep): no findings.
    let findings = lint(
        "crates/core/src/score.rs",
        include_str!("../fixtures/d003_bad.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// P001 — panic-freedom in spill I/O
// ---------------------------------------------------------------------------

#[test]
fn p001_fires_on_known_bad() {
    let findings = lint(
        "crates/table/src/shard.rs",
        include_str!("../fixtures/p001_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["P001"; 3], "{findings:?}");
    assert!(
        findings.iter().any(|f| f.message.contains(".unwrap()")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("panic!")),
        "{findings:?}"
    );
}

#[test]
fn p001_silent_on_known_good() {
    let findings = lint(
        "crates/table/src/shard.rs",
        include_str!("../fixtures/p001_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// U001 — SAFETY comments on unsafe code
// ---------------------------------------------------------------------------

#[test]
fn u001_fires_on_known_bad() {
    let findings = lint(
        "crates/core/src/accel/fixture.rs",
        include_str!("../fixtures/u001_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["U001"; 2], "{findings:?}");
    assert!(
        findings.iter().any(|f| f.message.contains("SAFETY")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("# Safety")),
        "{findings:?}"
    );
}

#[test]
fn u001_silent_on_known_good() {
    let findings = lint(
        "crates/core/src/accel/fixture.rs",
        include_str!("../fixtures/u001_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// X001 — sharded/monolithic API parity
// ---------------------------------------------------------------------------

#[test]
fn x001_fires_on_orphan_sharded_fn() {
    let findings = lint(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/x001_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec!["X001"; 2], "{findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("monolithic twin")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("tests/shard_parity.rs")),
        "{findings:?}"
    );
}

#[test]
fn x001_silent_when_twin_and_parity_case_exist() {
    let sources = vec![
        (
            "crates/core/src/fixture.rs".to_owned(),
            include_str!("../fixtures/x001_good.rs").to_owned(),
        ),
        (
            "tests/shard_parity.rs".to_owned(),
            "fn parity() { let _ = paired_scan_sharded; }\n".to_owned(),
        ),
    ];
    let findings = lint_sources(&sources, &|_| true);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn x001_missing_parity_case_is_reported_once_per_family() {
    // Twin exists but the parity suite never names the family.
    let sources = vec![(
        "crates/core/src/fixture.rs".to_owned(),
        include_str!("../fixtures/x001_good.rs").to_owned(),
    )];
    let findings = lint_sources(&sources, &|_| true);
    assert_eq!(rules_of(&findings), vec!["X001"], "{findings:?}");
    assert!(
        findings[0].message.contains("not exercised"),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------------------
// Suppression markers
// ---------------------------------------------------------------------------

#[test]
fn allow_markers_with_reasons_suppress() {
    let findings = lint(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn allow_marker_without_reason_does_not_suppress() {
    let src = "// sdd-lint: allow(D001)\nuse std::collections::HashMap;\n";
    let findings = lint("crates/core/src/fixture.rs", src);
    assert_eq!(
        rules_of(&findings),
        vec!["D001"],
        "bare marker must not gag"
    );
}

#[test]
fn allow_marker_names_only_its_rule() {
    // A D002 marker does not excuse a D001 violation on the same line.
    let src = "// sdd-lint: allow(D002) wrong rule named here\nuse std::collections::HashMap;\n";
    let findings = lint("crates/core/src/fixture.rs", src);
    assert_eq!(rules_of(&findings), vec!["D001"], "{findings:?}");
}

// ---------------------------------------------------------------------------
// Baseline round-trip
// ---------------------------------------------------------------------------

#[test]
fn baseline_round_trip_grandfathers_fixture_findings() {
    let findings = lint(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/d001_bad.rs"),
    );
    assert!(!findings.is_empty());
    let text = Baseline::render(&findings);
    let b = Baseline::parse(&text);
    for f in &findings {
        assert!(b.contains(f), "rendered baseline must cover {f}");
    }
    // A fresh finding in another file is not grandfathered.
    let other = Finding {
        file: "crates/core/src/other.rs".to_owned(),
        line: 1,
        rule: "D001",
        message: findings[0].message.clone(),
    };
    assert!(!b.contains(&other));
}
