//! The workspace-level gate, as a test: linting the real workspace with
//! **every** rule enabled and an **empty** baseline must produce zero
//! findings — the same bar CI's `cargo run -p sdd-lint -- --deny-all` leg
//! enforces. If this test fails, either fix the finding or allow-mark it
//! at the site with a reason (see `docs/DETERMINISM.md`); the baseline
//! file is reserved for grandfathering future rule additions.

use sdd_lint::{find_workspace_root, lint_workspace};
use std::path::Path;

#[test]
fn workspace_is_deny_all_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let findings = lint_workspace(&root, &|_| true).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "workspace must lint clean under --deny-all; findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
