//! A lightweight item walker over the token stream.
//!
//! One pass over a [`Lexed`] file recovers exactly the structure the rules
//! need — no AST, no type information:
//!
//! * **function items**: name, visibility, `unsafe`-ness, signature line,
//!   and body token range (via brace matching);
//! * **test regions**: bodies of `#[cfg(test)]` modules/functions and
//!   `#[test]` functions — rules skip code inside them;
//! * **unsafe blocks**: `unsafe {` sites (as opposed to `unsafe fn` /
//!   `unsafe impl` / `unsafe trait` / `unsafe extern`);
//! * **`use` declarations**: flattened path text, for import-based rules;
//! * **suppression markers**: `// sdd-lint: allow(RULE, ...) reason`
//!   comments, plus free-form justification tags like `det-order:`.

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use std::ops::Range;

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// `pub` with no restriction (`pub(crate)`/`pub(super)` are not pub
    /// for API-surface rules like X001).
    pub is_pub: bool,
    pub is_unsafe: bool,
    /// Token-index range of the body, `{` .. matching `}` inclusive.
    /// Empty for bodiless declarations (trait methods, extern fns).
    pub body: Range<usize>,
    /// True when the item sits inside a test region or carries `#[test]` /
    /// `#[cfg(test)]` itself.
    pub in_test: bool,
}

/// One `unsafe {` block site.
#[derive(Debug, Clone)]
pub struct UnsafeBlock {
    pub line: u32,
    /// Token index of the `unsafe` keyword.
    pub tok: usize,
    pub in_test: bool,
}

/// One flattened `use` declaration.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Token texts joined with spaces (`use std :: collections :: HashMap`).
    pub text: String,
    /// Line of the `use` keyword.
    pub line: u32,
    /// Token index of the `use` keyword (for test-region checks).
    pub tok: usize,
}

/// One suppression marker: `sdd-lint: allow(D001) reason` (one or more
/// comma-separated rules). The marker suppresses findings on its own line
/// and on the line directly below it.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    pub rules: Vec<String>,
    pub reason: String,
    pub line: u32,
    pub end_line: u32,
}

/// The parsed model of one source file.
#[derive(Debug)]
pub struct FileModel {
    pub lexed: Lexed,
    pub fns: Vec<FnItem>,
    pub unsafe_blocks: Vec<UnsafeBlock>,
    /// Token-index ranges of test code.
    pub test_regions: Vec<Range<usize>>,
    /// Flattened `use` declarations (token texts joined, e.g.
    /// `use std :: collections :: HashMap ;`).
    pub uses: Vec<UseDecl>,
    pub markers: Vec<AllowMarker>,
}

impl FileModel {
    /// Parses `src` into a file model.
    pub fn parse(src: &str) -> FileModel {
        build(lex(src))
    }

    /// True when token index `i` falls inside test code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&i))
    }

    /// The tokens.
    pub fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    /// The comments.
    pub fn comments(&self) -> &[Comment] {
        &self.lexed.comments
    }

    /// True when a marker naming `rule` covers `line` (markers cover their
    /// own line span and the line directly below) with a non-empty reason —
    /// a bare `allow(...)` with no justification does not suppress.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.markers.iter().any(|m| {
            !m.reason.is_empty()
                && m.rules.iter().any(|r| r == rule)
                && line >= m.line
                && line <= m.end_line + 1
        })
    }

    /// True when some comment whose span intersects `lines` contains
    /// `needle` (used for `det-order:` justifications and `SAFETY:` tags).
    pub fn comment_in_lines(&self, lines: Range<u32>, needle: &str) -> bool {
        self.comments()
            .iter()
            .any(|c| c.end_line >= lines.start && c.line < lines.end && c.text.contains(needle))
    }

    /// The source line of token `i`, or `0` past the end.
    pub fn line_of(&self, i: usize) -> u32 {
        self.toks().get(i).map_or(0, |t| t.line)
    }

    /// Last line of a token range (for mapping body ranges to line spans).
    pub fn end_line_of(&self, r: &Range<usize>) -> u32 {
        if r.is_empty() {
            return 0;
        }
        self.line_of(r.end.saturating_sub(1))
    }
}

fn is_kw(t: &Tok, kw: &str) -> bool {
    t.kind == TokKind::Ident && t.text == kw
}

fn is_punct(t: &Tok, p: &str) -> bool {
    t.kind == TokKind::Punct && t.text == p
}

/// Builds the brace match map: for each `{` token index, the index of its
/// matching `}`. Lexing already removed braces in strings/comments, so
/// plain counting is exact.
fn match_braces(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut map = vec![None; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if is_punct(t, "{") {
            stack.push(i);
        } else if is_punct(t, "}") {
            if let Some(open) = stack.pop() {
                map[open] = Some(i);
            }
        }
    }
    map
}

fn parse_markers(comments: &[Comment]) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("sdd-lint:") else {
            continue;
        };
        let rest = c.text[at + "sdd-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = rest[close + 1..].trim().to_owned();
        if !rules.is_empty() {
            out.push(AllowMarker {
                rules,
                reason,
                line: c.line,
                end_line: c.end_line,
            });
        }
    }
    out
}

fn build(lexed: Lexed) -> FileModel {
    let toks = &lexed.toks;
    let braces = match_braces(toks);

    let mut fns: Vec<FnItem> = Vec::new();
    let mut unsafe_blocks: Vec<UnsafeBlock> = Vec::new();
    let mut test_regions: Vec<Range<usize>> = Vec::new();
    let mut uses: Vec<UseDecl> = Vec::new();

    // Attributes seen since the last item, flattened to text.
    let mut pending_attrs: Vec<String> = Vec::new();
    // `pub` (unrestricted) seen since the last item.
    let mut pending_pub = false;
    let mut pending_unsafe = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if is_punct(t, "#") {
            // Attribute: `#[...]` or `#![...]`. Collect bracket-balanced.
            let mut j = i + 1;
            if j < toks.len() && is_punct(&toks[j], "!") {
                j += 1;
            }
            if j < toks.len() && is_punct(&toks[j], "[") {
                let mut depth = 0usize;
                let mut text = String::new();
                while j < toks.len() {
                    let tj = &toks[j];
                    if is_punct(tj, "[") {
                        depth += 1;
                        if depth == 1 {
                            // The outer delimiters stay out of the text so
                            // `#[test]` flattens to exactly `test`.
                            j += 1;
                            continue;
                        }
                    } else if is_punct(tj, "]") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(&tj.text);
                    j += 1;
                }
                pending_attrs.push(text);
                i = j;
                continue;
            }
            i += 1;
            continue;
        }

        if is_kw(t, "pub") {
            // `pub(crate)` / `pub(super)` / `pub(in ...)` are restricted.
            if i + 1 < toks.len() && is_punct(&toks[i + 1], "(") {
                let mut j = i + 2;
                let mut depth = 1usize;
                while j < toks.len() && depth > 0 {
                    if is_punct(&toks[j], "(") {
                        depth += 1;
                    } else if is_punct(&toks[j], ")") {
                        depth -= 1;
                    }
                    j += 1;
                }
                i = j;
            } else {
                pending_pub = true;
                i += 1;
            }
            continue;
        }

        if is_kw(t, "unsafe") {
            match toks.get(i + 1) {
                Some(next) if is_punct(next, "{") => {
                    unsafe_blocks.push(UnsafeBlock {
                        line: t.line,
                        tok: i,
                        in_test: false, // filled below once regions are known
                    });
                    i += 1;
                    continue;
                }
                // `unsafe fn` — remember for the fn item; `unsafe impl` /
                // `unsafe trait` / `unsafe extern` carry no obligations for
                // our rules.
                Some(next) if is_kw(next, "fn") => {
                    pending_unsafe = true;
                    i += 1;
                    continue;
                }
                _ => {
                    i += 1;
                    continue;
                }
            }
        }

        if is_kw(t, "use") {
            let line = t.line;
            let tok = i;
            let mut text = String::from("use");
            let mut j = i + 1;
            while j < toks.len() && !is_punct(&toks[j], ";") {
                text.push(' ');
                text.push_str(&toks[j].text);
                j += 1;
            }
            uses.push(UseDecl { text, line, tok });
            i = j + 1;
            pending_attrs.clear();
            pending_pub = false;
            continue;
        }

        if is_kw(t, "mod") {
            // `mod name {` or `mod name;`
            let attrs = std::mem::take(&mut pending_attrs);
            pending_pub = false;
            let mut j = i + 1;
            while j < toks.len() && !is_punct(&toks[j], "{") && !is_punct(&toks[j], ";") {
                j += 1;
            }
            if j < toks.len() && is_punct(&toks[j], "{") {
                if attrs_mark_test(&attrs) {
                    let close = braces[j].unwrap_or(toks.len());
                    test_regions.push(j..close + 1);
                }
                // Descend into the module body normally.
                i = j + 1;
            } else {
                i = j + 1;
            }
            continue;
        }

        if is_kw(t, "fn") {
            let attrs = std::mem::take(&mut pending_attrs);
            let is_pub = std::mem::take(&mut pending_pub);
            let is_unsafe = std::mem::take(&mut pending_unsafe);
            let line = t.line;
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                // `fn(..)` pointer type, not an item.
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            // Scan to the body `{` or a bodiless `;`.
            let mut j = i + 2;
            let mut body = 0..0;
            while j < toks.len() {
                if is_punct(&toks[j], "{") {
                    let close = braces[j].unwrap_or(toks.len().saturating_sub(1));
                    body = j..close + 1;
                    break;
                }
                if is_punct(&toks[j], ";") {
                    break;
                }
                j += 1;
            }
            let fn_test = attrs_mark_test(&attrs);
            if fn_test && !body.is_empty() {
                test_regions.push(body.clone());
            }
            fns.push(FnItem {
                name,
                line,
                is_pub,
                is_unsafe,
                body,
                in_test: fn_test, // merged with region info below
            });
            // Do NOT jump past the body: nested fns/unsafe blocks inside
            // it must still be visited.
            i += 2;
            continue;
        }

        // Any other item-ish token consumes pending modifiers so `pub
        // struct` etc. don't leak onto a later fn.
        if matches!(t.kind, TokKind::Ident)
            && matches!(
                t.text.as_str(),
                "struct" | "enum" | "trait" | "impl" | "static" | "const" | "type" | "extern"
            )
        {
            pending_attrs.clear();
            pending_pub = false;
        }
        i += 1;
    }

    // Resolve test membership now that all regions are known.
    for f in &mut fns {
        if !f.in_test {
            let probe = f.body.start;
            f.in_test = test_regions
                .iter()
                .any(|r| r.contains(&probe) && *r != f.body);
        }
    }
    for b in &mut unsafe_blocks {
        b.in_test = test_regions.iter().any(|r| r.contains(&b.tok));
    }

    let markers = parse_markers(&lexed.comments);
    FileModel {
        fns,
        unsafe_blocks,
        test_regions,
        uses,
        markers,
        lexed,
    }
}

/// True when an attribute list marks an item as test code: `#[test]`,
/// `#[cfg(test)]`, or any cfg containing the bare `test` predicate.
fn attrs_mark_test(attrs: &[String]) -> bool {
    attrs.iter().any(|a| {
        a == "test" || (a.starts_with("cfg") && a.contains("test")) || a.contains(":: test")
        // e.g. `proptest !` excluded; `tokio :: test`
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_and_visibility() {
        let m =
            FileModel::parse("pub fn a() {} fn b() {} pub(crate) fn c() {} pub unsafe fn d() {}");
        let names: Vec<(&str, bool, bool)> = m
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub, f.is_unsafe))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a", true, false),
                ("b", false, false),
                ("c", false, false),
                ("d", true, true)
            ]
        );
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let m = FileModel::parse(
            "fn prod() { let x = 1; }\n#[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn t() {}\n}",
        );
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test, "helper inside cfg(test) mod");
        assert!(m.fns[2].in_test);
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let m = FileModel::parse("#[test]\nfn t() { boom(); }\nfn prod() {}");
        assert!(m.fns[0].in_test);
        assert!(!m.fns[1].in_test);
    }

    #[test]
    fn unsafe_blocks_vs_unsafe_fns() {
        let m = FileModel::parse(
            "unsafe fn f() { } fn g() { unsafe { h(); } } unsafe impl Send for X {}",
        );
        assert_eq!(m.unsafe_blocks.len(), 1);
        assert!(m.fns[0].is_unsafe);
        assert!(!m.fns[1].is_unsafe);
    }

    #[test]
    fn nested_fn_bodies_are_visited() {
        let m = FileModel::parse("fn outer() { fn inner() { unsafe { x(); } } }");
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.unsafe_blocks.len(), 1);
    }

    #[test]
    fn markers_parse_rules_and_reason() {
        let m = FileModel::parse(
            "// sdd-lint: allow(D001, P001) keys sorted before iteration\nlet x = 1;\n// sdd-lint: allow(D002)\nlet y = 2;",
        );
        assert_eq!(m.markers.len(), 2);
        assert_eq!(m.markers[0].rules, vec!["D001", "P001"]);
        assert!(m.allows("D001", 1));
        assert!(m.allows("P001", 2), "marker covers the next line");
        assert!(!m.allows("D001", 3));
        assert!(
            !m.allows("D002", 4),
            "marker without a reason must not suppress"
        );
    }

    #[test]
    fn use_decls_are_flattened() {
        let m = FileModel::parse(
            "use std::collections::{HashMap, HashSet};\nuse rustc_hash::FxHashMap;",
        );
        assert_eq!(m.uses.len(), 2);
        assert!(m.uses[0].text.contains("std :: collections"));
        assert!(m.uses[0].text.contains("HashMap"));
    }

    #[test]
    fn body_ranges_cover_braces() {
        let m = FileModel::parse("fn f(a: u32) -> u32 { if a > 0 { a } else { 0 } }");
        let f = &m.fns[0];
        assert!(m.toks()[f.body.start].text == "{");
        assert!(m.toks()[f.body.end - 1].text == "}");
    }
}
