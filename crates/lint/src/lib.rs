//! `sdd-lint` — the workspace determinism & panic-freedom lint pass.
//!
//! The smart-drill-down workspace promises bit-identical results for any
//! thread count, shard count, residency budget, or SIMD setting, and
//! panic-free spill I/O. Those promises are invariants of *code shape*,
//! not of any one test input, so they are enforced statically: a std-only
//! token scanner ([`lexer`]) feeds a lightweight item walker ([`walker`])
//! which drives the rule catalog ([`rules`]) over every Rust source file
//! in the workspace. CI runs `cargo run -p sdd-lint -- --deny-all` on
//! every push.
//!
//! See `docs/DETERMINISM.md` for the invariant catalog and the
//! suppression-marker syntax.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walker;

use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Directory names never descended into when collecting workspace sources.
/// `fixtures` holds the linter's own known-bad test inputs.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// Collects every `.rs` file under `root` (skipping [`SKIP_DIRS`]),
/// returning workspace-relative `/`-separated paths in sorted order so
/// report order never depends on directory-iteration order.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Parses and lints a set of `(relative path, source)` pairs, running the
/// per-file rules and the cross-file rule X001. Findings come back sorted
/// by (file, line, rule) regardless of input order.
pub fn lint_sources(sources: &[(String, String)], enabled: &dyn Fn(&str) -> bool) -> Vec<Finding> {
    let models: Vec<(String, walker::FileModel)> = sources
        .iter()
        .map(|(path, src)| (path.clone(), walker::FileModel::parse(src)))
        .collect();
    let mut out = Vec::new();
    for (path, m) in &models {
        out.extend(rules::lint_file(path, m, enabled));
    }
    out.extend(rules::x001(&models, enabled));
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

/// Reads and lints the whole workspace rooted at `root`.
pub fn lint_workspace(
    root: &Path,
    enabled: &dyn Fn(&str) -> bool,
) -> std::io::Result<Vec<Finding>> {
    let mut sources = Vec::new();
    for rel in collect_sources(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        sources.push((rel, src));
    }
    Ok(lint_sources(&sources, enabled))
}

/// Lints one in-memory file under its pretend workspace path (fixture
/// tests use this to aim a known-bad source at a rule's scope).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(rel_path.to_owned(), src.to_owned())], &|_| true)
}

/// Locates the workspace root: walks up from `start` to the first
/// directory holding a `Cargo.toml` with a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_sort_and_display() {
        let src_bad = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = std::collections::HashMap::new(); let _ = m; }";
        let findings = lint_source("crates/core/src/lib.rs", src_bad);
        assert!(!findings.is_empty());
        let shown = findings[0].to_string();
        assert!(
            shown.starts_with("crates/core/src/lib.rs:1 D001 "),
            "{shown}"
        );
    }

    #[test]
    fn out_of_scope_paths_are_clean() {
        let src = "use std::collections::HashMap;\nfn f() { let _ = std::time::Instant::now(); }";
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }
}
