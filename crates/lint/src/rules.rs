//! The rule catalog.
//!
//! Each rule is a pure function over a parsed [`FileModel`] (plus, for the
//! cross-file rule X001, the whole file set). Rules skip test regions —
//! tests may freely unwrap, time themselves, and hash — and honor
//! suppression markers (`// sdd-lint: allow(RULE) reason`, see
//! `docs/DETERMINISM.md` for the syntax). Findings report the 1-based line
//! of the offending token.
//!
//! | rule | guards |
//! |------|--------|
//! | D001 | no std `HashMap`/`HashSet` in deterministic crates |
//! | D002 | no wall-clock / thread-identity reads in deterministic crates |
//! | D003 | float accumulation loops in kernel/shard use ordered reduction |
//! | P001 | no `unwrap`/`expect`/`panic!` in spill-I/O code |
//! | U001 | every `unsafe` block carries a `// SAFETY:` comment |
//! | X001 | every `pub fn *_sharded` has a monolithic twin + parity test |

use crate::lexer::{Tok, TokKind};
use crate::walker::FileModel;
use crate::Finding;

/// Crates whose results must be bit-identical for any thread count, shard
/// count, residency budget, or SIMD setting. `bench`/`server`/`cli` are
/// deliberately outside: timing and host introspection belong there.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/sampling/src/",
    "crates/table/src/",
    "crates/explorer/src/",
];

/// Files whose floating-point accumulation loops D003 audits.
pub const D003_FILES: &[&str] = &["crates/core/src/shard.rs", "crates/core/src/kernel.rs"];

/// Files P001 keeps panic-free: spill I/O, plus the shared result-cache
/// and prediction paths (a panic there would poison a lock every session
/// shares — an accelerator must never be able to take the server down),
/// plus the HTTP front-end's parsing, auth, and metrics paths (fed raw
/// bytes from untrusted clients — a panic is a remote crash), plus the
/// live-table append/maintenance paths (the engine's request dispatch and
/// the sample handler's reservoir maintenance both run while sessions
/// hold epoch-pinned state — a panic mid-append or mid-sync can strand a
/// session between epochs).
pub const P001_FILES: &[&str] = &[
    "crates/table/src/shard.rs",
    "crates/core/src/cachekey.rs",
    "crates/explorer/src/cache.rs",
    "crates/server/src/cache.rs",
    "crates/server/src/predict.rs",
    "crates/server/src/http.rs",
    "crates/server/src/auth.rs",
    "crates/server/src/metrics.rs",
    "crates/server/src/engine.rs",
    "crates/sampling/src/handler.rs",
    "crates/sampling/src/reservoir.rs",
];

/// The cross-file parity suite X001 requires `*_sharded` APIs to appear in.
pub const PARITY_SUITE: &str = "tests/shard_parity.rs";

/// Prefix of the crate whose `*_sharded` API surface X001 audits.
pub const X001_CRATE: &str = "crates/core/src/";

/// One catalog entry.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// Every rule, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "no std HashMap/HashSet (unspecified iteration order) in deterministic crates",
    },
    RuleInfo {
        id: "D002",
        summary: "no Instant::now/SystemTime/thread-identity reads in deterministic crates",
    },
    RuleInfo {
        id: "D003",
        summary: "float accumulation loops in core::{kernel,shard} use reduce_pairwise or carry a det-order justification",
    },
    RuleInfo {
        id: "P001",
        summary: "no unwrap()/expect()/panic! in spill-I/O code; route errors through TableError",
    },
    RuleInfo {
        id: "U001",
        summary: "every unsafe block carries a // SAFETY: comment (unsafe fns a # Safety doc)",
    },
    RuleInfo {
        id: "X001",
        summary: "every pub fn *_sharded in sdd-core has a monolithic twin and appears in tests/shard_parity.rs",
    },
];

/// True when `id` names a known rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

fn in_deterministic_crate(path: &str) -> bool {
    DETERMINISTIC_CRATES.iter().any(|p| path.starts_with(p))
}

fn finding(path: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        file: path.to_owned(),
        line,
        rule,
        message,
    }
}

fn ident(t: &Tok, name: &str) -> bool {
    t.kind == TokKind::Ident && t.text == name
}

fn punct(t: &Tok, p: &str) -> bool {
    t.kind == TokKind::Punct && t.text == p
}

/// Runs the per-file rules (all but X001) over one file.
pub fn lint_file(path: &str, m: &FileModel, enabled: &dyn Fn(&str) -> bool) -> Vec<Finding> {
    let mut out = Vec::new();
    if enabled("D001") {
        d001(path, m, &mut out);
    }
    if enabled("D002") {
        d002(path, m, &mut out);
    }
    if enabled("D003") {
        d003(path, m, &mut out);
    }
    if enabled("P001") {
        p001(path, m, &mut out);
    }
    if enabled("U001") {
        u001(path, m, &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// D001 — std hash containers in deterministic crates
// ---------------------------------------------------------------------------

fn d001(path: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !in_deterministic_crate(path) {
        return;
    }
    // Imports: `use std::collections::{...HashMap/HashSet...}`.
    for u in &m.uses {
        if m.in_test(u.tok) || m.allows("D001", u.line) {
            continue;
        }
        if u.text.contains("std :: collections")
            && (u.text.contains("HashMap") || u.text.contains("HashSet"))
        {
            out.push(finding(
                path,
                u.line,
                "D001",
                "imports std HashMap/HashSet: iteration order is unspecified and varies per \
                 process; use rustc_hash::FxHashMap/FxHashSet (fixed hasher, insertion-stable \
                 across runs) or sort before iterating and justify with an allow marker"
                    .to_owned(),
            ));
        }
    }
    // Inline qualified paths: `std :: collections :: HashMap` — outside
    // `use` declarations, which the import check above already reports.
    let toks = m.toks();
    let in_use_decl = |i: usize| {
        for t in toks[..i].iter().rev() {
            if ident(t, "use") {
                return true;
            }
            if punct(t, ";") {
                return false;
            }
        }
        false
    };
    for i in 0..toks.len().saturating_sub(4) {
        if ident(&toks[i], "std")
            && punct(&toks[i + 1], "::")
            && ident(&toks[i + 2], "collections")
            && punct(&toks[i + 3], "::")
            && (ident(&toks[i + 4], "HashMap") || ident(&toks[i + 4], "HashSet"))
            && !m.in_test(i)
            && !m.allows("D001", toks[i].line)
            && !in_use_decl(i)
        {
            out.push(finding(
                path,
                toks[i].line,
                "D001",
                format!(
                    "std::collections::{} has unspecified iteration order; use the rustc-hash \
                     equivalent or justify with an allow marker",
                    toks[i + 4].text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// D002 — wall-clock and thread-identity reads in deterministic crates
// ---------------------------------------------------------------------------

fn d002(path: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !in_deterministic_crate(path) {
        return;
    }
    let toks = m.toks();
    for i in 0..toks.len() {
        if m.in_test(i) {
            continue;
        }
        let line = toks[i].line;
        let path_call = |a: &str, b: &str| {
            i + 2 < toks.len()
                && ident(&toks[i], a)
                && punct(&toks[i + 1], "::")
                && ident(&toks[i + 2], b)
        };
        let msg = if path_call("Instant", "now") {
            Some(
                "Instant::now() reads the wall clock inside a deterministic crate; pass \
                 elapsed time in from the caller or move the timing to bench/server",
            )
        } else if ident(&toks[i], "SystemTime") {
            Some(
                "SystemTime is a wall-clock read inside a deterministic crate; timing belongs \
                 in bench/server",
            )
        } else if path_call("thread", "current") {
            Some(
                "thread::current() is a thread-identity read inside a deterministic crate; \
                 results must not depend on which thread runs them",
            )
        } else {
            None
        };
        if let Some(msg) = msg {
            if !m.allows("D002", line) {
                out.push(finding(path, line, "D002", msg.to_owned()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// D003 — ordered float reduction in the counting kernels
// ---------------------------------------------------------------------------

/// A function *accumulates floats in a loop* when its body contains a loop
/// keyword, a compound-add (`+=`/`-=`), and a float hint (`f64` or a float
/// literal). Such a function must either delegate merging to the ordered
/// reducer ([`reduce_pairwise`]) or carry a `det-order:` comment justifying
/// why its iteration order is already fixed (e.g. shard-major accumulation
/// in monolithic row order).
///
/// [`reduce_pairwise`]: https://en.wikipedia.org/wiki/Pairwise_summation
fn d003(path: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !D003_FILES.contains(&path) {
        return;
    }
    let toks = m.toks();
    for f in &m.fns {
        if f.in_test || f.body.is_empty() {
            continue;
        }
        let body = &toks[f.body.clone()];
        let has_loop = body
            .iter()
            .any(|t| ident(t, "for") || ident(t, "while") || ident(t, "loop"));
        let has_acc = body.iter().any(|t| punct(t, "+=") || punct(t, "-="));
        let float_hint = body
            .iter()
            .any(|t| ident(t, "f64") || (t.kind == TokKind::Num && t.text.contains('.')));
        if !(has_loop && has_acc && float_hint) {
            continue;
        }
        let uses_reducer = body.iter().any(|t| ident(t, "reduce_pairwise"));
        let end_line = m.end_line_of(&f.body);
        let justified = m.comment_in_lines(f.line.saturating_sub(3)..end_line + 1, "det-order:");
        let allowed = m.markers.iter().any(|mk| {
            !mk.reason.is_empty()
                && mk.rules.iter().any(|r| r == "D003")
                && mk.line + 3 >= f.line
                && mk.line <= end_line
        });
        if !(uses_reducer || justified || allowed) {
            out.push(finding(
                path,
                f.line,
                "D003",
                format!(
                    "fn {} accumulates floats in a loop without reduce_pairwise; merge partials \
                     with the ordered reducer or document the fixed operation order with a \
                     `det-order:` comment",
                    f.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// P001 — panic-freedom in spill-I/O code
// ---------------------------------------------------------------------------

fn p001(path: &str, m: &FileModel, out: &mut Vec<Finding>) {
    if !P001_FILES.contains(&path) {
        return;
    }
    let toks = m.toks();
    for i in 0..toks.len() {
        if m.in_test(i) {
            continue;
        }
        let line = toks[i].line;
        let msg = if i + 2 < toks.len()
            && punct(&toks[i], ".")
            && (ident(&toks[i + 1], "unwrap") || ident(&toks[i + 1], "expect"))
            && punct(&toks[i + 2], "(")
        {
            Some(format!(
                ".{}() can panic in a spill-I/O path; route the failure through TableError \
                 (or downgrade a genuinely unreachable invariant to debug_assert!)",
                toks[i + 1].text
            ))
        } else if i + 1 < toks.len() && ident(&toks[i], "panic") && punct(&toks[i + 1], "!") {
            Some("panic! in a spill-I/O path; route the failure through TableError".to_owned())
        } else {
            None
        };
        if let Some(msg) = msg {
            if !m.allows("P001", line) {
                out.push(finding(path, line, "P001", msg));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// U001 — SAFETY comments on unsafe code
// ---------------------------------------------------------------------------

fn u001(path: &str, m: &FileModel, out: &mut Vec<Finding>) {
    for b in &m.unsafe_blocks {
        if b.in_test || m.allows("U001", b.line) {
            continue;
        }
        // A SAFETY comment on the block's line, up to three lines above it,
        // or as the first thing inside it.
        if !m.comment_in_lines(b.line.saturating_sub(3)..b.line + 2, "SAFETY") {
            out.push(finding(
                path,
                b.line,
                "U001",
                "unsafe block without a // SAFETY: comment stating the discharged obligations"
                    .to_owned(),
            ));
        }
    }
    for f in &m.fns {
        if !f.is_unsafe || f.in_test || m.allows("U001", f.line) {
            continue;
        }
        // `unsafe fn` needs a `# Safety` doc section (its body is one big
        // implicit unsafe region under edition 2021).
        let doc_ok = m.comments().iter().any(|c| {
            c.doc && c.end_line < f.line && c.end_line + 24 > f.line && c.text.contains("# Safety")
        });
        if !doc_ok {
            out.push(finding(
                path,
                f.line,
                "U001",
                format!(
                    "unsafe fn {} without a `# Safety` doc section stating caller obligations",
                    f.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// X001 — sharded/monolithic API parity
// ---------------------------------------------------------------------------

/// Cross-file rule: collects every `pub fn *_sharded` under
/// [`X001_CRATE`], checks a monolithic twin exists (same name minus the
/// `_sharded` suffix, `try_` prefix interchangeable), and that the family
/// is exercised by name in [`PARITY_SUITE`].
pub fn x001(files: &[(String, FileModel)], enabled: &dyn Fn(&str) -> bool) -> Vec<Finding> {
    if !enabled("X001") {
        return Vec::new();
    }
    let mut core_fns: Vec<(&str, &crate::walker::FnItem, &FileModel)> = Vec::new();
    let mut parity_idents: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (path, m) in files {
        if path.starts_with(X001_CRATE) {
            for f in &m.fns {
                if !f.in_test {
                    core_fns.push((path, f, m));
                }
            }
        }
        if path == PARITY_SUITE {
            parity_idents.extend(
                m.toks()
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str()),
            );
        }
    }
    let have: std::collections::BTreeSet<&str> =
        core_fns.iter().map(|(_, f, _)| f.name.as_str()).collect();

    let mut out = Vec::new();
    let mut reported_parity: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (path, f, m) in &core_fns {
        if !f.is_pub || !f.name.ends_with("_sharded") {
            continue;
        }
        if m.allows("X001", f.line) {
            continue;
        }
        let stem = f
            .name
            .strip_suffix("_sharded")
            .unwrap_or(&f.name)
            .strip_prefix("try_")
            .unwrap_or_else(|| f.name.strip_suffix("_sharded").unwrap_or(&f.name));
        let twin = have.contains(stem) || have.contains(format!("try_{stem}").as_str());
        if !twin {
            out.push(finding(
                path,
                f.line,
                "X001",
                format!(
                    "pub fn {} has no monolithic twin `{stem}` (or `try_{stem}`) in sdd-core; \
                     every sharded entry point needs a bit-parity reference",
                    f.name
                ),
            ));
        }
        let family_in_parity = parity_idents.contains(format!("{stem}_sharded").as_str())
            || parity_idents.contains(format!("try_{stem}_sharded").as_str());
        if !family_in_parity && reported_parity.insert(stem.to_owned()) {
            out.push(finding(
                path,
                f.line,
                "X001",
                format!(
                    "pub fn {} is not exercised by {PARITY_SUITE}; add a cross-shard \
                     bit-parity case calling it (or its try_ twin) by name",
                    f.name
                ),
            ));
        }
    }
    out
}
