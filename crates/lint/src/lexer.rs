//! A comment- and string-aware Rust token scanner.
//!
//! This is not a full Rust lexer — it is exactly enough structure for the
//! rule engine: identifiers, punctuation (with the handful of compound
//! operators the rules match on, `::` and `+=` foremost), and literals are
//! emitted as code tokens; comments (line, block, doc) are collected
//! separately with their line spans so marker and `// SAFETY:` rules can
//! find them. Everything inside string/char literals and comments is
//! opaque: a `"unwrap()"` in a string or an `Instant::now` in prose never
//! reaches a rule.
//!
//! Handled syntax that naive scanners get wrong:
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings with hash guards (`r#".."#`, `br##".."##`),
//! * byte strings and byte chars (`b"..."`, `b'x'`),
//! * lifetimes vs. char literals (`'a` vs. `'a'`),
//! * raw identifiers (`r#type`).

/// What a code token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// A lifetime (`'a`) — kept distinct so it is never mistaken for an
    /// identifier.
    Lifetime,
    /// Punctuation; compound operators the rules care about (`::`, `+=`,
    /// `->`, `=>`, `..`) come through as one token.
    Punct,
    /// String / raw string / byte string literal (content dropped).
    Str,
    /// Char / byte char literal (content dropped).
    Char,
    /// Numeric literal.
    Num,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment with its 1-based line span (block comments may span lines).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body with the leading `//`/`///`/`/*` markers stripped.
    pub text: String,
    pub line: u32,
    pub end_line: u32,
    /// True for `///`, `//!`, `/**`, `/*!` doc comments.
    pub doc: bool,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Scans `src` into code tokens and comments. Never fails: unterminated
/// constructs simply run to end of file (the real compiler will reject the
/// file anyway; the linter stays quiet rather than guessing).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.quote(),
                'r' if self.raw_string_ahead(1) => {
                    self.bump(); // `r`
                    self.raw_string();
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string();
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.bump(); // opening quote
                    self.char_body();
                }
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string();
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier `r#type`.
                    let line = self.line;
                    self.bump();
                    self.bump();
                    let name = self.ident_body();
                    self.push_tok(TokKind::Ident, name, line);
                }
                c if is_ident_start(c) => {
                    let line = self.line;
                    let name = self.ident_body();
                    self.push_tok(TokKind::Ident, name, line);
                }
                c if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        merge_adjacent_comments(&mut self.out.comments);
        self.out
    }

    /// True when, starting `ahead` chars past an `r` (or `br`), the input
    /// continues with zero or more `#` then `"` — i.e. a raw string opener.
    fn raw_string_ahead(&self, mut ahead: usize) -> bool {
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    fn ident_body(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut doc = false;
        if matches!(self.peek(0), Some('/') | Some('!')) {
            doc = true;
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text: text.trim().to_owned(),
            line,
            end_line: line,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('*') | Some('!'))
            // `/**/` is an empty plain comment, not a doc comment.
            && !(self.peek(0) == Some('*') && self.peek(1) == Some('/'));
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text: text.trim().to_owned(),
            line,
            end_line: self.line,
            doc,
        });
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_tok(TokKind::Str, String::new(), line);
    }

    /// A raw string whose `r`/`br` prefix is already consumed: counts the
    /// opening hashes, then scans to `"` followed by that many hashes.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push_tok(TokKind::Str, String::new(), line);
    }

    /// A `'`: either a char literal or a lifetime.
    fn quote(&mut self) {
        self.bump(); // the quote
        match self.peek(0) {
            // `'\n'`, `'\''`, `'\u{..}'` — always a char literal.
            Some('\\') => self.char_body(),
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char; `'a` (no closing quote after the ident
                // run) is a lifetime. `'static` has no closing quote.
                let line = self.line;
                let mut ahead = 1;
                while self.peek(ahead).is_some_and(is_ident_continue) {
                    ahead += 1;
                }
                if self.peek(ahead) == Some('\'') {
                    self.char_body();
                } else {
                    let name = self.ident_body();
                    self.push_tok(TokKind::Lifetime, name, line);
                }
            }
            // `'('`, `'3'`, ... — a char literal of a non-ident char.
            Some(_) => self.char_body(),
            None => {}
        }
    }

    /// Consumes a char literal body up to and including the closing quote
    /// (the opening quote is already consumed).
    fn char_body(&mut self) {
        let line = self.line;
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push_tok(TokKind::Char, String::new(), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` does not (the `..`
                // range operator must stay punctuation).
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Num, s, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let a = self.bump().unwrap_or(' ');
        let b = self.peek(0);
        // Compound operators the rules match on; everything else is fine as
        // single chars.
        let two = |b: char| format!("{a}{b}");
        let text = match (a, b) {
            (':', Some(':'))
            | ('+', Some('='))
            | ('-', Some('='))
            | ('*', Some('='))
            | ('/', Some('='))
            | ('-', Some('>'))
            | ('=', Some('>'))
            | ('.', Some('.')) => {
                let b = b.unwrap_or(' ');
                self.bump();
                if a == '.' && self.peek(0) == Some('=') {
                    self.bump();
                    "..=".to_owned()
                } else {
                    two(b)
                }
            }
            _ => a.to_string(),
        };
        self.push_tok(TokKind::Punct, text, line);
    }
}

/// Fuses runs of same-flavor comments on consecutive lines into one
/// [`Comment`] spanning the whole run. A `///` doc block or a multi-line
/// `//` explanation reads as a unit, so line-window rules (a `det-order:`
/// or `SAFETY:` tag "near" an item) see the block, not its first line.
/// Doc and plain comments never fuse with each other — the doc flag feeds
/// the `# Safety` check, which must not match prose in a neighboring `//`.
fn merge_adjacent_comments(comments: &mut Vec<Comment>) {
    let mut merged: Vec<Comment> = Vec::with_capacity(comments.len());
    for c in comments.drain(..) {
        match merged.last_mut() {
            Some(prev) if prev.doc == c.doc && c.line == prev.end_line + 1 => {
                prev.end_line = c.end_line;
                prev.text.push('\n');
                prev.text.push_str(&c.text);
            }
            _ => merged.push(c),
        }
    }
    *comments = merged;
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r#"
            // calls unwrap() in prose
            /* Instant::now in a block */
            let s = "HashMap::new and unwrap()";
            let c = 'x';
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_owned()));
        assert!(!ids.contains(&"Instant".to_owned()));
        assert!(!ids.contains(&"HashMap".to_owned()));
        assert_eq!(ids, vec!["let", "s", "let", "c"]);
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r####"let x = r#"unwrap() "quoted" more"# ; let y = 1;"####;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { 'l' ; x }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let texts: Vec<String> = lex("a += b; c::d; 0..n; e..=f")
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert!(texts.contains(&"+=".to_owned()));
        assert!(texts.contains(&"::".to_owned()));
        assert!(texts.contains(&"..".to_owned()));
        assert!(texts.contains(&"..=".to_owned()));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("0..chunks");
        assert_eq!(toks.toks[0].text, "0");
        assert_eq!(toks.toks[1].text, "..");
        assert_eq!(toks.toks[2].text, "chunks");
        let toks = lex("1.5f64");
        assert_eq!(toks.toks[0].text, "1.5f64");
    }

    #[test]
    fn comment_lines_and_doc_flags() {
        let src = "/// doc\n// plain\nfn f() {}\n/* block\nspans */";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[0].doc);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[1].doc);
        assert_eq!(lexed.comments[2].line, 4);
        assert_eq!(lexed.comments[2].end_line, 5);
    }

    #[test]
    fn adjacent_same_flavor_comments_merge() {
        let src = "/// one\n/// two\n/// three\nfn f() {}\n// a\n// b\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2, "doc block + plain block");
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert!(lexed.comments[0].text.contains("two"));
        assert!(!lexed.comments[1].doc);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(
            idents(r#"let m = b"SDDSHRD2"; let c = b'\n';"#),
            vec!["let", "m", "let", "c"]
        );
    }
}
