//! The grandfathered-findings baseline.
//!
//! A baseline file holds findings that are acknowledged but not yet fixed:
//! one finding per line as `RULE FILE MESSAGE`, `#` comments and blank
//! lines ignored. Line *numbers* are deliberately not part of the format —
//! a baseline must survive unrelated edits shifting code up and down — so
//! findings match on (rule, file, message).
//!
//! The workspace policy (enforced by `tests/workspace_clean.rs` and the CI
//! lint leg) is an **empty** baseline: new findings are fixed or explicitly
//! allow-marked at the site, and the baseline exists only as a migration
//! valve for future rule additions.

use crate::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// A set of grandfathered findings.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeSet<(String, String, String)>,
}

impl Baseline {
    /// Parses baseline text.
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (Some(rule), Some(file)) = (parts.next(), parts.next()) else {
                continue;
            };
            let message = parts.next().unwrap_or("").to_owned();
            entries.insert((rule.to_owned(), file.to_owned(), message));
        }
        Baseline { entries }
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> std::io::Result<Baseline> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Baseline::parse(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Serializes `findings` in baseline format (sorted, deduplicated).
    pub fn render(findings: &[Finding]) -> String {
        let mut lines: BTreeSet<String> = BTreeSet::new();
        for f in findings {
            lines.insert(format!("{} {} {}", f.rule, f.file, f.message));
        }
        let mut out = String::from(
            "# sdd-lint baseline: grandfathered findings, one `RULE FILE MESSAGE` per line.\n\
             # Matching ignores line numbers so unrelated edits never invalidate an entry.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// True when `f` is grandfathered.
    pub fn contains(&self, f: &Finding) -> bool {
        self.entries
            .contains(&(f.rule.to_owned(), f.file.clone(), f.message.clone()))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no findings are grandfathered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, file: &str, msg: &str) -> Finding {
        Finding {
            rule,
            file: file.to_owned(),
            line: 7,
            message: msg.to_owned(),
        }
    }

    #[test]
    fn round_trip_ignores_lines_and_duplicates() {
        let findings = vec![
            f("P001", "crates/table/src/shard.rs", "msg one"),
            f("P001", "crates/table/src/shard.rs", "msg one"),
            f("D002", "crates/core/src/brs.rs", "msg two"),
        ];
        let text = Baseline::render(&findings);
        let b = Baseline::parse(&text);
        assert_eq!(b.len(), 2, "duplicates collapse");
        let mut shifted = f("P001", "crates/table/src/shard.rs", "msg one");
        shifted.line = 999;
        assert!(b.contains(&shifted), "line drift must not invalidate");
        assert!(!b.contains(&f("P001", "crates/table/src/shard.rs", "other")));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let b = Baseline::parse("# header\n\nD001 a.rs uses HashMap\n");
        assert_eq!(b.len(), 1);
    }
}
