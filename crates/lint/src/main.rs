//! The `sdd-lint` command-line front end.
//!
//! ```text
//! sdd-lint [--root DIR] [--rules A,B] [--deny-all] [--baseline FILE]
//!          [--write-baseline FILE] [--list-rules]
//! ```
//!
//! Output is machine-readable, one finding per line:
//! `file:line RULE message`. Exit codes: `0` clean (or all findings
//! grandfathered), `1` new findings, `2` usage/I-O error.

use sdd_lint::baseline::Baseline;
use sdd_lint::{find_workspace_root, lint_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: sdd-lint [options]
  --root DIR            workspace root (default: nearest [workspace] Cargo.toml)
  --rules A,B           run only these rules (default: all)
  --deny-all            ignore the baseline; every finding fails the run
  --baseline FILE       grandfathered findings (default: lint-baseline.txt at root)
  --write-baseline FILE write current findings as a new baseline and exit 0
  --list-rules          print the rule catalog and exit
  -h, --help            this text";

struct Opts {
    root: Option<PathBuf>,
    rules: Option<Vec<String>>,
    deny_all: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Opts, String> {
    let mut o = Opts {
        root: None,
        rules: None,
        deny_all: false,
        baseline: None,
        write_baseline: None,
        list_rules: false,
    };
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--root" => o.root = Some(PathBuf::from(value("--root")?)),
            "--rules" => {
                let list: Vec<String> = value("--rules")?
                    .split(',')
                    .map(|r| r.trim().to_owned())
                    .filter(|r| !r.is_empty())
                    .collect();
                for r in &list {
                    if !rules::known_rule(r) {
                        return Err(format!("unknown rule {r} (see --list-rules)"));
                    }
                }
                o.rules = Some(list);
            }
            "--deny-all" => o.deny_all = true,
            "--baseline" => o.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                o.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--list-rules" => o.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("sdd-lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in rules::RULES {
            println!("{}  {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("sdd-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let selected = opts.rules;
    let enabled = |rule: &str| {
        selected
            .as_ref()
            .is_none_or(|s| s.iter().any(|r| r == rule))
    };

    let findings = match lint_workspace(&root, &enabled) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sdd-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = opts.write_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("sdd-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "sdd-lint: wrote {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.deny_all {
        Baseline::default()
    } else {
        let path = opts
            .baseline
            .unwrap_or_else(|| root.join("lint-baseline.txt"));
        match Baseline::load(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sdd-lint: read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    };

    let mut new = 0usize;
    let mut grandfathered = 0usize;
    for f in &findings {
        if baseline.contains(f) {
            grandfathered += 1;
        } else {
            println!("{f}");
            new += 1;
        }
    }
    if new == 0 {
        if grandfathered > 0 {
            eprintln!("sdd-lint: clean ({grandfathered} grandfathered)");
        } else {
            eprintln!("sdd-lint: clean");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("sdd-lint: {new} finding(s)");
        ExitCode::from(1)
    }
}
