//! Scoring rule lists and rule sets (paper §2.1, Lemma 1, Definition 2).
//!
//! `Score(R) = Σ_{r ∈ R} W(r) · MCount(r, R)` where `MCount(r, R)` counts
//! the tuples covered by `r` but by no earlier rule of the list. Lemma 1
//! shows sorting a list by descending weight never lowers its score, so a
//! rule *set* is scored by sorting it first (Definition 2).
//!
//! All quantities here are weighted by the view's per-tuple weights, which
//! makes the same functions compute `Count`/`MCount` (unit weights),
//! `Sum`/`MSum` (measure weights, §6.3), and scaled sample estimates (§4).

use crate::{Rule, WeightFn};
use sdd_table::{Table, TableView};

/// Per-rule breakdown of a scored rule list.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleScore {
    /// The rule.
    pub rule: Rule,
    /// `W(rule)`.
    pub weight: f64,
    /// Total (weighted) count of tuples covered by the rule alone.
    pub count: f64,
    /// Marginal (weighted) count: tuples covered by this rule and no earlier
    /// rule in the list.
    pub mcount: f64,
}

/// A scored rule list: the per-rule breakdown plus the total.
#[derive(Debug, Clone, PartialEq)]
pub struct ListScore {
    /// Per-rule details, in list order.
    pub rules: Vec<RuleScore>,
    /// `Σ W(r)·MCount(r, R)`.
    pub total: f64,
    /// Weighted count of tuples covered by no rule at all.
    pub uncovered: f64,
}

/// Scores `rules` **in the given order** against `view`.
pub fn score_list(view: &TableView<'_>, weight: &dyn WeightFn, rules: &[Rule]) -> ListScore {
    let table = view.table();
    let weights: Vec<f64> = rules.iter().map(|r| weight.weight(r, table)).collect();
    let mut counts = vec![0.0f64; rules.len()];
    let mut mcounts = vec![0.0f64; rules.len()];
    let mut uncovered = 0.0f64;

    let mut codes: Vec<u32> = Vec::with_capacity(table.n_columns());
    for wr in view.iter() {
        table.row_codes(wr.row, &mut codes);
        let mut assigned = false;
        for (i, rule) in rules.iter().enumerate() {
            if rule.covers_codes(&codes) {
                counts[i] += wr.weight;
                if !assigned {
                    mcounts[i] += wr.weight;
                    assigned = true;
                }
            }
        }
        if !assigned {
            uncovered += wr.weight;
        }
    }

    let total = weights.iter().zip(&mcounts).map(|(w, m)| w * m).sum();
    let rules = rules
        .iter()
        .zip(weights)
        .zip(counts.iter().zip(&mcounts))
        .map(|((rule, weight), (&count, &mcount))| RuleScore {
            rule: rule.clone(),
            weight,
            count,
            mcount,
        })
        .collect();
    ListScore {
        rules,
        total,
        uncovered,
    }
}

/// Scores a rule **set** (Definition 2): sorts descending by weight, then
/// scores the resulting list. Ties are broken by rule content for
/// determinism.
pub fn score_set(view: &TableView<'_>, weight: &dyn WeightFn, rules: &[Rule]) -> ListScore {
    let sorted = sort_by_weight_desc(view, weight, rules);
    score_list(view, weight, &sorted)
}

/// Sorts rules in descending weight order (stable, deterministic tie-break
/// on the rule's codes).
pub fn sort_by_weight_desc(
    view: &TableView<'_>,
    weight: &dyn WeightFn,
    rules: &[Rule],
) -> Vec<Rule> {
    let table = view.table();
    let mut keyed: Vec<(f64, &Rule)> = rules.iter().map(|r| (weight.weight(r, table), r)).collect();
    keyed.sort_by(|(wa, ra), (wb, rb)| {
        wb.partial_cmp(wa)
            .expect("weights must be finite")
            .then_with(|| ra.codes().cmp(rb.codes()))
    });
    keyed.into_iter().map(|(_, r)| r.clone()).collect()
}

/// `TOP(t, R)` for every view position: the index (into `rules`, which must
/// already be in descending weight order) of the first rule covering each
/// tuple, or `None`.
pub fn top_assignment(view: &TableView<'_>, rules: &[Rule]) -> Vec<Option<usize>> {
    let table = view.table();
    let mut codes: Vec<u32> = Vec::with_capacity(table.n_columns());
    let mut out = Vec::with_capacity(view.len());
    for wr in view.iter() {
        table.row_codes(wr.row, &mut codes);
        out.push(rules.iter().position(|r| r.covers_codes(&codes)));
    }
    out
}

/// The (weighted) `Count` of a single rule over the view.
pub fn rule_count(view: &TableView<'_>, rule: &Rule) -> f64 {
    let table = view.table();
    view.iter()
        .filter(|wr| rule.covers_row(table, wr.row))
        .map(|wr| wr.weight)
        .sum()
}

/// Exact `Count` of every rule over the full table — the monolithic twin
/// of [`crate::shard::count_rules_sharded`] (the scan behind the
/// explorer's exact-count refresh).
pub fn count_rules(table: &Table, rules: &[Rule]) -> Vec<f64> {
    let view = table.view();
    rules.iter().map(|r| rule_count(&view, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SizeWeight;
    use sdd_table::{Schema, Table};

    /// 10 rows: 4×(a,x), 3×(a,y), 2×(b,y), 1×(c,z).
    fn t() -> Table {
        let mut rows: Vec<[&str; 2]> = Vec::new();
        rows.extend(std::iter::repeat_n(["a", "x"], 4));
        rows.extend(std::iter::repeat_n(["a", "y"], 3));
        rows.extend(std::iter::repeat_n(["b", "y"], 2));
        rows.push(["c", "z"]);
        Table::from_rows(Schema::new(["A", "B"]).unwrap(), &rows).unwrap()
    }

    fn rule(table: &Table, pairs: &[(&str, &str)]) -> Rule {
        Rule::from_pairs(table, pairs).unwrap()
    }

    #[test]
    fn counts_and_mcounts() {
        let table = t();
        let view = table.view();
        let a = rule(&table, &[("A", "a")]);
        let ax = rule(&table, &[("A", "a"), ("B", "x")]);
        // List order: (a,x) first, then (a,?).
        let s = score_list(&view, &SizeWeight, &[ax.clone(), a.clone()]);
        assert_eq!(s.rules[0].count, 4.0);
        assert_eq!(s.rules[0].mcount, 4.0);
        assert_eq!(s.rules[1].count, 7.0);
        assert_eq!(s.rules[1].mcount, 3.0); // the 4 (a,x) rows already taken
        assert_eq!(s.total, 2.0 * 4.0 + 1.0 * 3.0);
        assert_eq!(s.uncovered, 3.0);
    }

    #[test]
    fn lemma1_sorting_never_lowers_score() {
        let table = t();
        let view = table.view();
        let a = rule(&table, &[("A", "a")]);
        let ax = rule(&table, &[("A", "a"), ("B", "x")]);
        let bad_order = score_list(&view, &SizeWeight, &[a.clone(), ax.clone()]);
        let good_order = score_list(&view, &SizeWeight, &[ax, a]);
        assert!(good_order.total >= bad_order.total);
        // Here strictly better: the x-rows move to the weight-2 rule.
        assert!(good_order.total > bad_order.total);
    }

    #[test]
    fn score_set_equals_score_of_sorted_list() {
        let table = t();
        let view = table.view();
        let a = rule(&table, &[("A", "a")]);
        let ax = rule(&table, &[("A", "a"), ("B", "x")]);
        let set_score = score_set(&view, &SizeWeight, &[a.clone(), ax.clone()]);
        let list_score = score_list(&view, &SizeWeight, &[ax, a]);
        assert_eq!(set_score.total, list_score.total);
    }

    #[test]
    fn top_assignment_matches_first_covering_rule() {
        let table = t();
        let view = table.view();
        let ax = rule(&table, &[("A", "a"), ("B", "x")]);
        let a = rule(&table, &[("A", "a")]);
        let tops = top_assignment(&view, &[ax, a]);
        assert_eq!(tops[0], Some(0)); // (a,x) row
        assert_eq!(tops[4], Some(1)); // (a,y) row
        assert_eq!(tops[9], None); // (c,z) row
    }

    #[test]
    fn weighted_view_scales_counts() {
        let table = t();
        // Weight every row by 2.
        let rows: Vec<u32> = (0..table.n_rows() as u32).collect();
        let weights = vec![2.0; table.n_rows()];
        let view = sdd_table::TableView::with_rows_and_weights(&table, rows, weights);
        let a = rule(&table, &[("A", "a")]);
        assert_eq!(rule_count(&view, &a), 14.0);
        let s = score_list(&view, &SizeWeight, &[a]);
        assert_eq!(s.rules[0].mcount, 14.0);
    }

    #[test]
    fn empty_rule_list_scores_zero() {
        let table = t();
        let view = table.view();
        let s = score_list(&view, &SizeWeight, &[]);
        assert_eq!(s.total, 0.0);
        assert_eq!(s.uncovered, 10.0);
    }

    #[test]
    fn duplicate_rules_add_no_marginal() {
        let table = t();
        let view = table.view();
        let a = rule(&table, &[("A", "a")]);
        let s = score_list(&view, &SizeWeight, &[a.clone(), a]);
        assert_eq!(s.rules[0].mcount, 7.0);
        assert_eq!(s.rules[1].mcount, 0.0);
    }

    #[test]
    fn count_rules_matches_per_rule_counts() {
        let table = t();
        let a = rule(&table, &[("A", "a")]);
        let ax = rule(&table, &[("A", "a"), ("B", "x")]);
        assert_eq!(count_rules(&table, &[a, ax]), vec![7.0, 4.0]);
        assert_eq!(count_rules(&table, &[]), Vec::<f64>::new());
    }

    #[test]
    fn sort_is_deterministic_under_ties() {
        let table = t();
        let view = table.view();
        let a = rule(&table, &[("A", "a")]);
        let b = rule(&table, &[("A", "b")]);
        let s1 = sort_by_weight_desc(&view, &SizeWeight, &[a.clone(), b.clone()]);
        let s2 = sort_by_weight_desc(&view, &SizeWeight, &[b, a]);
        assert_eq!(s1, s2);
    }
}
