//! The interactive exploration session (paper §2.3 and §4's tree `U`).
//!
//! A [`Session`] maintains the tree of rules currently displayed to the
//! analyst: the root is the trivial rule (paper Table 1); expanding a rule
//! runs a rule drill-down and attaches the resulting rule-list as children
//! (Tables 2–3); clicking a `?` runs a star drill-down; clicking an expanded
//! rule again collapses it (the paper's roll-up analogue).
//!
//! [`Session::render`] prints the same dotted-indent layout as the paper's
//! tables.

use crate::{drill_down_with, star_drill_down_with, Brs, Rule, WeightFn};
use sdd_table::{OwnedTableView, Table};
use std::fmt;
use std::sync::Arc;

/// Errors from session navigation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The node path does not address an existing node.
    InvalidPath(Vec<usize>),
    /// Star drill-down on a column the rule already instantiates.
    ColumnNotStarred(usize),
    /// The named column does not exist.
    UnknownColumn(String),
    /// The storage tier failed underneath the session (a spill file could
    /// not be read or decoded). The session itself remains usable; the
    /// operation that needed the damaged shard is the one that fails.
    Storage(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::InvalidPath(p) => write!(f, "no node at path {p:?}"),
            SessionError::ColumnNotStarred(c) => {
                write!(f, "column {c} is already instantiated in this rule")
            }
            SessionError::UnknownColumn(n) => write!(f, "unknown column {n:?}"),
            SessionError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// One displayed rule in the session tree.
#[derive(Debug, Clone)]
pub struct Node {
    /// The rule this node displays.
    pub rule: Rule,
    /// Displayed (estimated) count of covered tuples.
    pub count: f64,
    /// `W(rule)` — the paper's Weight column.
    pub weight: f64,
    children: Vec<Node>,
}

impl Node {
    /// Child nodes, in display order (descending weight).
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// True if this node has been expanded.
    pub fn is_expanded(&self) -> bool {
        !self.children.is_empty()
    }
}

/// An interactive smart drill-down session over one table.
///
/// The session is **owned** and `Send`: it shares the table via
/// [`Arc`] instead of borrowing it, so sessions can live in a server-side
/// registry, move between worker threads, and outlive the scope that
/// created them (the multi-session serving refactor; cf. ROADMAP's
/// million-user north star).
///
/// ```
/// # use std::sync::Arc;
/// # use sdd_table::{Schema, Table};
/// # use sdd_core::{Session, SizeWeight};
/// let table = Arc::new(Table::from_rows(
///     Schema::new(["A", "B"]).unwrap(),
///     &[&["a", "x"], &["a", "x"], &["b", "y"]],
/// ).unwrap());
/// let mut session = Session::new(table, Box::new(SizeWeight), 2);
/// session.expand(&[]).unwrap();
/// println!("{}", session.render());
/// ```
pub struct Session {
    view: OwnedTableView,
    weight: Box<dyn WeightFn>,
    k: usize,
    max_weight: Option<f64>,
    root: Node,
}

impl Session {
    /// Starts a session showing the trivial rule, expanding `k` rules per
    /// drill-down (the paper defaults to 3; its experiments use 4).
    pub fn new(table: Arc<Table>, weight: Box<dyn WeightFn>, k: usize) -> Self {
        Self::with_view(OwnedTableView::all(table), weight, k)
    }

    /// Starts a session over a custom view — e.g. a measure-weighted view
    /// for `Sum` aggregates (§6.3), or a scaled sample view (§4). The view
    /// carries its own table handle.
    pub fn with_view(view: OwnedTableView, weight: Box<dyn WeightFn>, k: usize) -> Self {
        let root = Node {
            rule: Rule::trivial(view.table().n_columns()),
            count: view.total_weight(),
            weight: 0.0,
            children: Vec::new(),
        };
        Self {
            view,
            weight,
            k,
            max_weight: None,
            root,
        }
    }

    /// The shared table this session explores.
    pub fn table(&self) -> &Arc<Table> {
        self.view.table()
    }

    /// Sets the `mw` optimizer parameter for subsequent expansions.
    pub fn set_max_weight(&mut self, mw: f64) {
        self.max_weight = Some(mw);
    }

    /// Changes `k` for subsequent expansions.
    pub fn set_k(&mut self, k: usize) {
        self.k = k;
    }

    /// The root node (trivial rule).
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// The node at `path` (a sequence of child indices from the root).
    pub fn node(&self, path: &[usize]) -> Result<&Node, SessionError> {
        let mut cur = &self.root;
        for &i in path {
            cur = cur
                .children
                .get(i)
                .ok_or_else(|| SessionError::InvalidPath(path.to_vec()))?;
        }
        Ok(cur)
    }

    fn node_mut(&mut self, path: &[usize]) -> Result<&mut Node, SessionError> {
        let mut cur = &mut self.root;
        for &i in path {
            cur = cur
                .children
                .get_mut(i)
                .ok_or_else(|| SessionError::InvalidPath(path.to_vec()))?;
        }
        Ok(cur)
    }

    fn brs(&self) -> Brs<'_> {
        let mut b = Brs::new(&*self.weight);
        if let Some(mw) = self.max_weight {
            b = b.with_max_weight(mw);
        }
        b
    }

    /// Expands the rule at `path` (paper: clicking a rule). Replaces any
    /// previous children. Returns the new children.
    pub fn expand(&mut self, path: &[usize]) -> Result<&[Node], SessionError> {
        let base = self.node(path)?.rule.clone();
        let result = drill_down_with(&self.brs(), &self.view.as_view(), &base, self.k);
        let children: Vec<Node> = result
            .rules
            .into_iter()
            .map(|s| Node {
                rule: s.rule,
                count: s.count,
                weight: s.weight,
                children: Vec::new(),
            })
            .collect();
        let node = self.node_mut(path)?;
        node.children = children;
        Ok(&node.children)
    }

    /// Star drill-down: expands the rule at `path` requiring every child to
    /// instantiate `column` (paper: clicking a `?`).
    pub fn expand_star(&mut self, path: &[usize], column: usize) -> Result<&[Node], SessionError> {
        let base = self.node(path)?.rule.clone();
        if !base.is_star(column) {
            return Err(SessionError::ColumnNotStarred(column));
        }
        let result = star_drill_down_with(&self.brs(), &self.view.as_view(), &base, column, self.k);
        let children: Vec<Node> = result
            .rules
            .into_iter()
            .map(|s| Node {
                rule: s.rule,
                count: s.count,
                weight: s.weight,
                children: Vec::new(),
            })
            .collect();
        let node = self.node_mut(path)?;
        node.children = children;
        Ok(&node.children)
    }

    /// Star drill-down by column name.
    pub fn expand_star_by_name(
        &mut self,
        path: &[usize],
        column: &str,
    ) -> Result<&[Node], SessionError> {
        let col = self
            .view
            .table()
            .schema()
            .index_of(column)
            .map_err(|_| SessionError::UnknownColumn(column.to_owned()))?;
        self.expand_star(path, col)
    }

    /// Collapses the node at `path` (paper: clicking an expanded rule —
    /// "equivalent to a traditional roll up").
    pub fn collapse(&mut self, path: &[usize]) -> Result<(), SessionError> {
        self.node_mut(path)?.children.clear();
        Ok(())
    }

    /// All visible nodes in display order with their depths.
    pub fn visible(&self) -> Vec<(usize, &Node)> {
        let mut out = Vec::new();
        fn walk<'n>(node: &'n Node, depth: usize, out: &mut Vec<(usize, &'n Node)>) {
            out.push((depth, node));
            for ch in &node.children {
                walk(ch, depth + 1, out);
            }
        }
        walk(&self.root, 0, &mut out);
        out
    }

    /// Renders the session as the paper's dotted-indent table (cf. Tables
    /// 1–3): one row per visible rule with `Count` and `Weight` columns.
    pub fn render(&self) -> String {
        let table = self.view.table();
        let schema = table.schema();
        let n_cols = table.n_columns();
        let mut rows: Vec<Vec<String>> = Vec::new();

        let mut header: Vec<String> = (0..n_cols)
            .map(|c| schema.column_name(c).to_owned())
            .collect();
        header.push("Count".to_owned());
        header.push("Weight".to_owned());
        rows.push(header);

        for (depth, node) in self.visible() {
            let mut row: Vec<String> = Vec::with_capacity(n_cols + 2);
            for c in 0..n_cols {
                let cell = match node.rule.get(c) {
                    crate::RuleValue::Star => "?".to_owned(),
                    crate::RuleValue::Value(code) => table
                        .dictionary(c)
                        .value_of(code)
                        .unwrap_or("<bad-code>")
                        .to_owned(),
                };
                if c == 0 {
                    row.push(format!("{}{}", ". ".repeat(depth), cell));
                } else {
                    row.push(cell);
                }
            }
            row.push(format_count(node.count));
            row.push(format_count(node.weight));
            rows.push(row);
        }

        render_aligned(&rows)
    }
}

fn format_count(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn render_aligned(rows: &[Vec<String>]) -> String {
    let n = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; n];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            out.push_str(cell);
            for _ in cell.len()..widths[i] {
                out.push(' ');
            }
        }
        // Trim trailing padding spaces.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 3 * (n.saturating_sub(1));
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SizeWeight;
    use sdd_table::Schema;

    /// Patterns are spread across regions so the best rules stay partial
    /// (leaving room to drill deeper): 10 Walmart-cookies rows over 5
    /// regions, 4 Walmart-towels rows over 4 regions, 6 Target-bicycles rows
    /// over 6 regions, 2 Costco-comforters rows in one region.
    fn t() -> Arc<Table> {
        let regions = ["R1", "R2", "R3", "R4", "R5", "R6"];
        let mut rows: Vec<[&str; 3]> = Vec::new();
        for i in 0..10 {
            rows.push(["Walmart", "cookies", regions[i % 5]]);
        }
        for (i, region) in regions.iter().take(4).enumerate() {
            let _ = i;
            rows.push(["Walmart", "towels", region]);
        }
        for region in &regions {
            rows.push(["Target", "bicycles", region]);
        }
        rows.push(["Costco", "comforters", "R1"]);
        rows.push(["Costco", "comforters", "R1"]);
        Arc::new(
            Table::from_rows(Schema::new(["Store", "Product", "Region"]).unwrap(), &rows).unwrap(),
        )
    }

    #[test]
    fn session_is_send_and_crosses_threads() {
        fn assert_send<T: Send>(_: &T) {}
        let table = t();
        let mut s = Session::new(table, Box::new(SizeWeight), 3);
        assert_send(&s);
        // An owned session can move to a worker thread and keep operating —
        // the property the concurrent server registry is built on.
        let handle = std::thread::spawn(move || {
            s.expand(&[]).unwrap();
            s.root().children().len()
        });
        assert!(handle.join().unwrap() > 0);
    }

    #[test]
    fn new_session_shows_only_trivial_rule() {
        let table = t();
        let s = Session::new(table, Box::new(SizeWeight), 3);
        assert!(s.root().rule.is_trivial());
        assert_eq!(s.root().count, 22.0);
        assert_eq!(s.visible().len(), 1);
    }

    #[test]
    fn expand_attaches_children_under_root() {
        let table = t();
        let mut s = Session::new(table.clone(), Box::new(SizeWeight), 3);
        let children = s.expand(&[]).unwrap();
        assert!(!children.is_empty());
        assert!(children.len() <= 3);
        assert_eq!(s.visible().len(), 1 + s.root().children().len());
    }

    #[test]
    fn nested_expansion_and_collapse() {
        let table = t();
        let mut s = Session::new(table.clone(), Box::new(SizeWeight), 3);
        s.expand(&[]).unwrap();
        let n_children = s.root().children().len();
        s.expand(&[0]).unwrap();
        assert!(s.node(&[0]).unwrap().is_expanded());
        assert!(s.visible().len() > 1 + n_children);
        s.collapse(&[0]).unwrap();
        assert!(!s.node(&[0]).unwrap().is_expanded());
        assert_eq!(s.visible().len(), 1 + n_children);
    }

    #[test]
    fn children_are_super_rules_of_parent() {
        let table = t();
        let mut s = Session::new(table.clone(), Box::new(SizeWeight), 3);
        s.expand(&[]).unwrap();
        s.expand(&[0]).unwrap();
        let parent = s.node(&[0]).unwrap().rule.clone();
        for ch in s.node(&[0]).unwrap().children() {
            assert!(ch.rule.is_strict_super_rule_of(&parent));
        }
    }

    #[test]
    fn expand_star_instantiates_column() {
        let table = t();
        let mut s = Session::new(table.clone(), Box::new(SizeWeight), 3);
        s.expand(&[]).unwrap();
        // Find a child with Region starred, expand its Region ?.
        let region = table.schema().index_of("Region").unwrap();
        let idx = s
            .root()
            .children()
            .iter()
            .position(|n| n.rule.is_star(region))
            .expect("some child leaves Region starred");
        s.expand_star(&[idx], region).unwrap();
        for ch in s.node(&[idx]).unwrap().children() {
            assert!(!ch.rule.is_star(region));
        }
    }

    #[test]
    fn expand_star_by_name_rejects_unknown_column() {
        let table = t();
        let mut s = Session::new(table.clone(), Box::new(SizeWeight), 3);
        assert_eq!(
            s.expand_star_by_name(&[], "Price").unwrap_err(),
            SessionError::UnknownColumn("Price".to_owned())
        );
    }

    #[test]
    fn invalid_path_is_error() {
        let table = t();
        let mut s = Session::new(table.clone(), Box::new(SizeWeight), 3);
        assert!(matches!(s.expand(&[5]), Err(SessionError::InvalidPath(_))));
        assert!(matches!(s.node(&[0, 1]), Err(SessionError::InvalidPath(_))));
    }

    #[test]
    fn render_contains_header_and_dotted_indent() {
        let table = t();
        let mut s = Session::new(table.clone(), Box::new(SizeWeight), 3);
        s.expand(&[]).unwrap();
        s.expand(&[0]).unwrap();
        let r = s.render();
        assert!(r.contains("Store"));
        assert!(r.contains("Count"));
        assert!(r.contains("Weight"));
        assert!(r.lines().any(|l| l.starts_with(". ")), "{r}");
        assert!(r.lines().any(|l| l.starts_with(". . ")), "{r}");
    }

    #[test]
    fn counts_in_children_do_not_exceed_parent() {
        let table = t();
        let mut s = Session::new(table.clone(), Box::new(SizeWeight), 3);
        s.expand(&[]).unwrap();
        s.expand(&[0]).unwrap();
        let parent_count = s.node(&[0]).unwrap().count;
        for ch in s.node(&[0]).unwrap().children() {
            assert!(ch.count <= parent_count + 1e-9);
        }
    }

    #[test]
    fn re_expanding_replaces_children() {
        let table = t();
        let mut s = Session::new(table.clone(), Box::new(SizeWeight), 3);
        s.expand(&[]).unwrap();
        let first: Vec<Rule> = s.root().children().iter().map(|n| n.rule.clone()).collect();
        s.set_k(2);
        s.expand(&[]).unwrap();
        assert!(s.root().children().len() <= 2);
        assert!(s.root().children().len() <= first.len());
    }
}
