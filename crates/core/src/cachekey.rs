//! Canonical, NaN-safe cache keys for drill-down/BRS results.
//!
//! A shared result cache is only sound if two searches that must produce
//! bit-identical results derive the *same* key, and two searches that may
//! differ derive *different* keys. This module centralizes the key
//! derivation so every hazard is handled in exactly one place:
//!
//! * **Floats key by bits, never by `==`.** `f64` equality collapses
//!   `-0.0 == 0.0` (two inputs the search treats identically today but a
//!   weight function may not) and rejects `NaN == NaN` (one logical value
//!   with 2^52 payloads). [`canonical_f64_bits`] maps every NaN to one
//!   canonical payload and everything else — including `-0.0` vs `0.0`,
//!   which stay **distinct** — to its IEEE-754 bit pattern.
//! * **`base: Option<Rule>` normalizes.** A search with no base and a
//!   search based on the trivial (all-`?`) rule filter the same tuples and
//!   return the same rules; [`KeyHasher::write_base`] folds both spellings
//!   to the trivial rule.
//! * **Execution strategy is excluded.** `SearchOptions::parallel`,
//!   `parallel_min_rows`, and `row_slice` select *how* the kernel runs, and
//!   the determinism contract (docs/DETERMINISM.md) guarantees they cannot
//!   change a result bit — so they must not fragment the key space.
//! * **The view is keyed by content, not identity.** Sample views are pure
//!   functions of `(store, seed, rule, history)`, so sessions replaying the
//!   same drill path produce byte-identical views; digesting row codes and
//!   weight bits makes those collide exactly and makes any divergence a
//!   safe miss.
//!
//! Keys are 128-bit digests ([`DrillKey`]); equality of digests is treated
//! as equality of inputs. The digest is a two-lane SplitMix64 fold —
//! deterministic across platforms and processes, with no unspecified
//! iteration order anywhere (lint rule D001 applies to this crate).

use crate::marginal::SearchOptions;
use crate::Rule;
use sdd_table::TableView;

/// The canonical quiet-NaN bit pattern every NaN payload collapses to.
pub const CANONICAL_NAN_BITS: u64 = 0x7FF8_0000_0000_0000;

/// The IEEE-754 bits of `x` with every NaN payload collapsed to
/// [`CANONICAL_NAN_BITS`]. `-0.0` and `0.0` keep their distinct patterns:
/// distinct keys are always safe (worst case a duplicate cache entry),
/// while collapsing them would be wrong for any weight function that
/// distinguishes signed zero.
#[inline]
pub fn canonical_f64_bits(x: f64) -> u64 {
    if x.is_nan() {
        CANONICAL_NAN_BITS
    } else {
        x.to_bits()
    }
}

/// A 128-bit cache key. Digest equality is treated as input equality
/// (collisions are vanishingly unlikely at 2^-64 per pair; the cache-parity
/// suites additionally verify hits bit-for-bit against recomputation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DrillKey(pub [u64; 2]);

/// A deterministic two-lane 128-bit folding hasher.
///
/// Each written word is absorbed into two independently-seeded SplitMix64
/// lanes; the lanes never interact, so the construction is a fixed function
/// of the written word sequence — stable across platforms, processes, and
/// compiler versions (no pointer, time, or layout inputs).
#[derive(Debug, Clone)]
pub struct KeyHasher {
    lo: u64,
    hi: u64,
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl KeyHasher {
    /// A hasher seeded with `domain`, a tag separating unrelated key
    /// spaces (e.g. rule drill-down vs star drill-down).
    pub fn new(domain: u64) -> Self {
        Self {
            lo: splitmix(domain ^ 0x5DD_CAC8E),
            hi: splitmix(domain ^ 0xD16E_57D1_11D0),
        }
    }

    /// Absorbs one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.lo = splitmix(self.lo ^ v);
        self.hi = splitmix(self.hi ^ v.rotate_left(17));
    }

    /// Absorbs one 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by its canonical bits (see [`canonical_f64_bits`]).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(canonical_f64_bits(v));
    }

    /// Absorbs a byte string, length-prefixed so concatenations cannot
    /// collide (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Absorbs a rule: column count then per-column codes (the `?` sentinel
    /// is a code like any other, so star patterns key canonically).
    pub fn write_rule(&mut self, rule: &Rule) {
        self.write_u64(rule.codes().len() as u64);
        for &code in rule.codes() {
            self.write_u32(code);
        }
    }

    /// Absorbs an optional base rule, normalized: `None` and
    /// `Some(trivial)` key identically (both mean "no filter").
    pub fn write_base(&mut self, base: Option<&Rule>, n_columns: usize) {
        match base {
            Some(rule) => self.write_rule(rule),
            None => self.write_rule(&Rule::trivial(n_columns)),
        }
    }

    /// Absorbs every result-determining field of [`SearchOptions`]:
    /// `max_weight` by canonical bits, `pruning`, `max_rule_size`, and the
    /// normalized `base`. Deliberately excludes `parallel`,
    /// `parallel_min_rows`, and `row_slice` — execution strategy that the
    /// determinism contract guarantees cannot change a result.
    pub fn write_search_options(&mut self, opts: &SearchOptions, n_columns: usize) {
        self.write_f64(opts.max_weight);
        self.write_u64(opts.pruning as u64);
        match opts.max_rule_size {
            // Disambiguated from Some(n): a discriminant word precedes.
            None => self.write_u64(0),
            Some(n) => {
                self.write_u64(1);
                self.write_u64(n as u64);
            }
        }
        self.write_base(opts.base.as_ref(), n_columns);
    }

    /// The 128-bit digest of everything written so far.
    pub fn finish(&self) -> [u64; 2] {
        // One finalization round per lane so short inputs still diffuse.
        [splitmix(self.lo), splitmix(self.hi)]
    }
}

/// Content digest of a view: length, per-row dictionary codes, and per-row
/// weight bits (canonical). Two views digesting equal are bit-identical
/// BRS inputs; comparing by content (not identity) is what lets replica
/// sessions share results.
pub fn view_digest(view: &TableView<'_>) -> [u64; 2] {
    let table = view.table();
    let mut h = KeyHasher::new(0x51DD_71E3);
    h.write_u64(view.len() as u64);
    let mut codes: Vec<u32> = Vec::with_capacity(table.n_columns());
    for i in 0..view.len() {
        table.row_codes(view.row_at(i), &mut codes);
        for &c in &codes {
            h.write_u32(c);
        }
        h.write_f64(view.weight_at(i));
    }
    h.finish()
}

/// The full key of one drill-down computation: which table
/// (`(table_id, epoch)` — a process-unique id the engine assigns at load
/// plus the table's data epoch), which exact tuples and weights (content
/// digest), which search configuration, and which operation (rule vs star
/// drill-down).
///
/// The identity pair replaces an earlier raw-`Arc`-pointer tag, which was
/// ABA-prone (a dropped table's allocation can be reused by the next load)
/// and silently wrong for live tables, where content changes under a
/// stable handle. Keying the epoch means an append — which bumps the
/// epoch — can never be served a stale pre-append result: **no cache hit
/// crosses an epoch** (the invariant DETERMINISM.md pins).
///
/// `weight_tag` is the weight function's stable identity
/// ([`crate::WeightFn::cache_tag`]); callers must not derive keys for
/// weights without one.
#[allow(clippy::too_many_arguments)]
pub fn drill_key(
    table_id: u64,
    epoch: u64,
    view: [u64; 2],
    base: &Rule,
    star_column: Option<usize>,
    k: usize,
    weight_tag: &str,
    max_weight: Option<f64>,
    n_columns: usize,
) -> DrillKey {
    let mut h = KeyHasher::new(match star_column {
        None => 0xD21_1D01,
        Some(_) => 0xD21_157A2,
    });
    h.write_u64(table_id);
    h.write_u64(epoch);
    h.write_u64(view[0]);
    h.write_u64(view[1]);
    h.write_base(Some(base), n_columns);
    if let Some(col) = star_column {
        h.write_u64(col as u64);
    }
    h.write_u64(k as u64);
    h.write_bytes(weight_tag.as_bytes());
    match max_weight {
        // Discriminant-prefixed like max_rule_size above.
        None => h.write_u64(0),
        Some(mw) => {
            h.write_u64(1);
            h.write_f64(mw);
        }
    }
    DrillKey(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_table::{Schema, Table};

    fn opts(mw: f64) -> SearchOptions {
        SearchOptions::new(mw)
    }

    fn options_key(o: &SearchOptions, n_columns: usize) -> [u64; 2] {
        let mut h = KeyHasher::new(7);
        h.write_search_options(o, n_columns);
        h.finish()
    }

    #[test]
    fn negative_zero_and_zero_key_differently() {
        // Distinct keys are documented behavior: -0.0 and 0.0 are distinct
        // bit patterns, and distinct keys are always safe.
        assert_ne!(canonical_f64_bits(-0.0), canonical_f64_bits(0.0));
        assert_ne!(options_key(&opts(-0.0), 3), options_key(&opts(0.0), 3));
    }

    #[test]
    fn all_nan_payloads_key_identically() {
        let quiet = f64::NAN;
        let payload = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
        let negative = f64::from_bits(0xFFF8_0000_0000_0002);
        assert!(quiet.is_nan() && payload.is_nan() && negative.is_nan());
        assert_eq!(canonical_f64_bits(quiet), CANONICAL_NAN_BITS);
        assert_eq!(canonical_f64_bits(payload), CANONICAL_NAN_BITS);
        assert_eq!(canonical_f64_bits(negative), CANONICAL_NAN_BITS);
        assert_eq!(options_key(&opts(quiet), 3), options_key(&opts(payload), 3));
        assert_eq!(
            options_key(&opts(quiet), 3),
            options_key(&opts(negative), 3)
        );
    }

    #[test]
    fn ordinary_floats_key_by_exact_bits() {
        assert_ne!(options_key(&opts(3.0), 3), options_key(&opts(3.5), 3));
        let tiny = f64::from_bits(3.0f64.to_bits() + 1); // next representable
        assert_ne!(options_key(&opts(3.0), 3), options_key(&opts(tiny), 3));
        assert_eq!(options_key(&opts(3.0), 3), options_key(&opts(3.0), 3));
    }

    #[test]
    fn none_base_normalizes_to_trivial() {
        let mut with_none = opts(2.0);
        with_none.base = None;
        let mut with_trivial = opts(2.0);
        with_trivial.base = Some(Rule::trivial(3));
        assert_eq!(options_key(&with_none, 3), options_key(&with_trivial, 3));
        // …but a real base keys differently.
        let mut with_base = opts(2.0);
        with_base.base = Some(Rule::from_codes(vec![1, crate::STAR, crate::STAR]));
        assert_ne!(options_key(&with_none, 3), options_key(&with_base, 3));
    }

    #[test]
    fn execution_strategy_is_excluded_from_the_key() {
        let serial = opts(2.0);
        let mut parallel = opts(2.0);
        parallel.parallel = !serial.parallel;
        parallel.parallel_min_rows = 1;
        assert_eq!(options_key(&serial, 3), options_key(&parallel, 3));
    }

    #[test]
    fn result_determining_options_are_all_keyed() {
        let base = opts(2.0);
        let mut no_pruning = opts(2.0);
        no_pruning.pruning = false;
        assert_ne!(options_key(&base, 3), options_key(&no_pruning, 3));
        let mut capped = opts(2.0);
        capped.max_rule_size = Some(2);
        assert_ne!(options_key(&base, 3), options_key(&capped, 3));
        // Some(0) must not collide with None (discriminant-prefixed).
        let mut zero_cap = opts(2.0);
        zero_cap.max_rule_size = Some(0);
        assert_ne!(options_key(&base, 3), options_key(&zero_cap, 3));
    }

    #[test]
    fn view_digest_tracks_content_not_identity() {
        let table = Table::from_rows(
            Schema::new(["A", "B"]).unwrap(),
            &[&["a", "x"], &["b", "y"], &["a", "y"]],
        )
        .unwrap();
        let all = view_digest(&table.view());
        let again = view_digest(&table.view());
        assert_eq!(all, again, "same content must digest identically");
        let subset = TableView::with_rows(&table, vec![0, 1]);
        assert_ne!(all, view_digest(&subset));
        let reordered = TableView::with_rows(&table, vec![1, 0, 2]);
        assert_ne!(all, view_digest(&reordered), "row order is content");
        let weighted = TableView::with_rows_and_weights(&table, vec![0, 1, 2], vec![2.0; 3]);
        assert_ne!(all, view_digest(&weighted), "weights are content");
    }

    #[test]
    fn drill_key_separates_rule_and_star_domains() {
        let base = Rule::trivial(3);
        let v = [1u64, 2u64];
        let rule = drill_key(9, 0, v, &base, None, 4, "size", Some(3.0), 3);
        let star = drill_key(9, 0, v, &base, Some(0), 4, "size", Some(3.0), 3);
        assert_ne!(rule, star);
        let star1 = drill_key(9, 0, v, &base, Some(1), 4, "size", Some(3.0), 3);
        assert_ne!(star, star1);
        let other_weight = drill_key(9, 0, v, &base, None, 4, "bits", Some(3.0), 3);
        assert_ne!(rule, other_weight);
        let other_k = drill_key(9, 0, v, &base, None, 5, "size", Some(3.0), 3);
        assert_ne!(rule, other_k);
        let default_mw = drill_key(9, 0, v, &base, None, 4, "size", None, 3);
        assert_ne!(rule, default_mw);
    }

    #[test]
    fn drill_key_separates_tables_and_epochs() {
        let base = Rule::trivial(3);
        let v = [1u64, 2u64];
        let a = drill_key(1, 0, v, &base, None, 4, "size", Some(3.0), 3);
        let other_table = drill_key(2, 0, v, &base, None, 4, "size", Some(3.0), 3);
        assert_ne!(a, other_table, "distinct table ids must never collide");
        let next_epoch = drill_key(1, 1, v, &base, None, 4, "size", Some(3.0), 3);
        assert_ne!(a, next_epoch, "an append (epoch bump) must miss the cache");
        // (id=1, epoch=2) vs (id=2, epoch=1): the pair is keyed as two
        // words, not a sum — no cross-field aliasing.
        let swapped = drill_key(2, 1, v, &base, None, 4, "size", Some(3.0), 3);
        assert_ne!(
            drill_key(1, 2, v, &base, None, 4, "size", Some(3.0), 3),
            swapped
        );
    }

    #[test]
    fn write_bytes_is_prefix_free() {
        let mut a = KeyHasher::new(0);
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = KeyHasher::new(0);
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
