//! The columnar counting kernel behind Algorithm 2 (paper §3.5).
//!
//! [`crate::marginal::find_best_marginal_rule`] historically counted
//! candidates row-at-a-time: every row gathered its full code vector, built
//! a [`Rule`] per (row × free column) probe, and hit a `FxHashMap<Rule, _>`
//! on the hot path. This module replaces that inner loop with a columnar
//! kernel that:
//!
//! * **pass 1** — accumulates per-column count/marginal histograms by
//!   scanning each dictionary-encoded column slice directly (one `f64` slot
//!   per code, no `Rule` construction, no hashing); rules materialize only
//!   at the candidate boundary, one per distinct surviving `(column, code)`;
//! * **pass j ≥ 2** — groups the level's candidates by their instantiated
//!   column set. A group whose column-cardinality product fits
//!   [`DENSE_CELL_CAP`] is counted **probe-free** into a dense
//!   count/marginal histogram indexed by the mixed-radix cell of the row's
//!   codes; larger groups pack each candidate's codes into a `u64` (or a
//!   flat `u32` tuple beyond 64 bits) and binary-search a sorted flat
//!   `Vec`. Either way the `Rule`-keyed map survives only at the API
//!   boundary;
//! * **task parallelism** — pass-1 columns and pass-j groups are
//!   independent tasks with disjoint accumulators, executed on
//!   `std::thread::scope` workers via [`crate::exec::parallel_map`] (gated
//!   behind the `parallel` cargo feature and [`SearchOptions::parallel`]).
//!   Because no accumulator is ever split across tasks, every
//!   per-candidate sum is formed in exactly the same (row) order as the
//!   scalar sweep: **parallel results are bit-identical to scalar
//!   results**, on any thread count. The build environment has no registry
//!   access, so this uses scoped threads directly rather than depending on
//!   `rayon`;
//! * **row-sliced parallelism** — when a level has fewer columns/groups
//!   than workers (the common drill-down regime: a handful of free
//!   columns over a large view), task parallelism stalls. With
//!   [`crate::marginal::RowSlice`] engaged, the view is split into
//!   [`sdd_table::chunk_spans`] chunks and every (column-or-group × chunk)
//!   pair becomes a task with a *private* partial accumulator — `u64`
//!   counts on unit-weight views, `f64` partials otherwise. Partials are
//!   reduced **in fixed chunk order** with a pairwise tree
//!   ([`crate::exec::reduce_pairwise`]), so row-sliced results are
//!   bit-identical on every thread count; unit-weight counts are exact
//!   integers and bit-identical even to the unsliced sweep, while weighted
//!   float sums may differ from it in the last ulp (re-association).
//!
//! **Parity.** Scalar and (unsliced) parallel kernel results are
//! bit-identical to the row-at-a-time reference
//! [`crate::marginal::find_best_marginal_rule_rowwise`]: every accumulator
//! receives its additions in the same row order, and winner selection uses
//! the same strict total order. Row-sliced results are additionally
//! bit-identical across thread counts for any fixed chunk cap.
//! `tests/kernel_parity.rs` asserts both on randomized instances.
//!
//! [`SearchScratch`] owns the per-search buffers so the `k` searches of one
//! BRS run reuse allocations on the scalar path; worker tasks allocate
//! their own (candidate-bounded, not row-bounded) accumulators.
//!
//! The columnar rule-coverage scans at the bottom of this module
//! ([`covered_rows`], [`covered_positions`], [`for_each_covered_position`])
//! use the same chunked plan: each slice is filtered independently and the
//! per-slice hit lists are concatenated in slice order, so their (integer)
//! output is byte-identical on any thread count. They back the BRS
//! covered-weight update, drill-down filtering, and the sampling layer's
//! create/prefetch scans.

use crate::accel;
use crate::exec;
use crate::marginal::{planned_row_chunks, scan_chunks, BestMarginal, SearchOptions, SearchStats};
use crate::{Rule, WeightFn};
use rustc_hash::FxHashMap;
use sdd_table::{chunk_spans, RowId, Table, TableView, ViewChunk};

/// Count/marginal/weight accumulator for one candidate rule (the paper's
/// per-candidate state in set `C`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CandStat {
    pub(crate) count: f64,
    pub(crate) marginal: f64,
    pub(crate) weight: f64,
}

impl CandStat {
    /// Upper bound on the marginal value of any super-rule with weight ≤ mw.
    #[inline]
    pub(crate) fn super_rule_bound(&self, mw: f64) -> f64 {
        self.marginal + self.count * (mw - self.weight)
    }
}

/// Maximum cells (`Π` column cardinalities) for a pass-j group to use the
/// probe-free dense histogram (3 `f64` arrays of this many cells ≈ 3 MB).
const DENSE_CELL_CAP: usize = 1 << 17;

/// Per-free-column pass-1 state: one slot per dictionary code.
#[derive(Debug, Default, Clone)]
struct ColumnHist {
    counts: Vec<f64>,
    marginals: Vec<f64>,
    /// `W(base + (col, code))` for candidate codes, `0.0` for codes that are
    /// unsupported or over the weight cap (their marginal slots are ignored).
    wtab: Vec<f64>,
}

/// Result of one pass-1 column task.
struct Pass1Out {
    hist: ColumnHist,
    /// Level-1 candidate rules of this column, code-ascending.
    rules: Vec<Rule>,
    generated: usize,
    pruned: usize,
}

/// The pass-1 candidate boundary of one free column: the surviving size-1
/// rules (code-ascending) plus the code → weight table.
///
/// Shared by the task-per-column kernel, the row-sliced kernel, and the
/// sharded kernel ([`crate::shard`]) — all three count first and then call
/// this on the finished per-code histogram, so candidate sets are identical
/// across execution modes by construction.
pub(crate) struct Pass1Cands {
    pub(crate) rules: Vec<Rule>,
    pub(crate) wtab: Vec<f64>,
    pub(crate) generated: usize,
    pub(crate) pruned: usize,
}

/// Materializes rules for the supported codes of column `col`, gates them
/// on `opts.max_weight`, and fills the code → weight table (`0.0` for
/// unsupported or over-cap codes).
///
/// det-order: one sequential code-ascending scan; the `+=` accumulators
/// are integer generation stats, and each weight slot is written once.
pub(crate) fn pass1_candidates(
    table: &Table,
    base: &Rule,
    col: usize,
    counts: &[f64],
    weight: &dyn WeightFn,
    opts: &SearchOptions,
) -> Pass1Cands {
    let mut wtab = vec![0.0f64; counts.len()];
    let mut rules: Vec<Rule> = Vec::new();
    let (mut generated, mut pruned) = (0usize, 0usize);
    for (code, &count) in counts.iter().enumerate() {
        if count <= 0.0 {
            continue;
        }
        generated += 1;
        let rule = base.with_value(col, code as u32);
        let w = weight.weight(&rule, table);
        if w > opts.max_weight + 1e-12 {
            pruned += 1;
            continue;
        }
        wtab[code] = w;
        rules.push(rule);
    }
    Pass1Cands {
        rules,
        wtab,
        generated,
        pruned,
    }
}

/// The frequent size-1 building blocks of a level-1 candidate list: one
/// `(free column, code)` pair per rule, in level order.
pub(crate) fn level_blocks(level: &[Rule], base: &Rule) -> Vec<(usize, u32)> {
    level
        .iter()
        .map(|r| {
            let c = r
                .instantiated_columns()
                .find(|c| base.is_star(*c))
                .expect("level-1 rule instantiates one free column");
            (c, r.code(c))
        })
        .collect()
}

/// One a-priori generation step (Algorithm 2, step 3.3): filters the
/// current level to survivors whose super-rule bound can still beat
/// `best_h`, extends each with later building blocks, and applies the
/// support/bound/weight prunes. Returns the next level's candidates with
/// their weights (empty → the search is done).
///
/// Pure candidate bookkeeping — no row access — so the columnar, row-sliced,
/// and sharded kernels share it verbatim.
///
/// det-order: single-threaded sweep in level order; the `+=` accumulators
/// are integer search stats, never float partials.
#[allow(clippy::too_many_arguments)]
pub(crate) fn generate_level(
    table: &Table,
    base: &Rule,
    blocks: &[(usize, u32)],
    current: &[Rule],
    counted: &FxHashMap<Rule, CandStat>,
    weight: &dyn WeightFn,
    opts: &SearchOptions,
    best_h: f64,
    stats: &mut SearchStats,
) -> (Vec<Rule>, Vec<f64>) {
    let survivors: Vec<&Rule> = current
        .iter()
        .filter(|r| {
            let stat = counted[*r];
            stat.count > 0.0 && (!opts.pruning || stat.super_rule_bound(opts.max_weight) >= best_h)
        })
        .collect();

    let mut next: Vec<Rule> = Vec::new();
    let mut cand_weights: Vec<f64> = Vec::new();
    for r in survivors {
        let max_free = r
            .instantiated_columns()
            .filter(|c| base.is_star(*c))
            .last()
            .expect("survivor instantiates at least one free column");
        for &(c, v) in blocks {
            if c <= max_free {
                continue;
            }
            let cand = r.with_value(c, v);
            stats.generated += 1;

            let mut bound = f64::INFINITY;
            let mut all_present = true;
            for sc in cand.instantiated_columns().filter(|c| base.is_star(*c)) {
                let sub = cand.with_star(sc);
                match counted.get(&sub) {
                    Some(stat) => bound = bound.min(stat.super_rule_bound(opts.max_weight)),
                    None => {
                        all_present = false;
                        break;
                    }
                }
            }
            if !all_present {
                stats.pruned += 1;
                continue;
            }
            if opts.pruning && (bound < best_h || bound <= 0.0) {
                stats.pruned += 1;
                continue;
            }
            let w = weight.weight(&cand, table);
            if w > opts.max_weight + 1e-12 {
                stats.pruned += 1;
                continue;
            }
            next.push(cand);
            cand_weights.push(w);
        }
    }
    (next, cand_weights)
}

/// One level-j candidate group: all candidates instantiating the same set of
/// free columns. Shared with the sharded kernel in [`crate::shard`], which
/// reuses the same group layout over per-shard column slices.
#[derive(Debug, Default)]
pub(crate) struct Group {
    /// Absolute column indices, ascending.
    pub(crate) cols: Vec<usize>,
    /// Mixed-radix strides per column (dense mode).
    pub(crate) strides: Vec<usize>,
    /// Total dense cells (`Π` cardinalities); `0` when overflowed.
    pub(crate) cells: usize,
    /// Candidate (dense cell, candidate index) pairs (dense mode).
    pub(crate) cand_cells: Vec<(usize, u32)>,
    /// Per-column left-shifts when packing fits in 64 bits (sparse mode).
    shifts: Vec<u32>,
    /// True when sparse keys fit a single `u64`.
    packed: bool,
    /// Sorted packed keys (sparse packed mode).
    keys: Vec<u64>,
    /// Flat candidate code tuples in sorted order, stride `cols.len()`
    /// (sparse wide mode).
    wide_keys: Vec<u32>,
    /// Candidate index per sorted key (sparse modes).
    pub(crate) order: Vec<u32>,
}

impl Group {
    /// True when this group counts via the dense histogram.
    #[inline]
    pub(crate) fn is_dense(&self) -> bool {
        self.cells != 0
    }

    /// Looks up the **sorted key position** of the candidate matching the
    /// row codes gathered by `fetch(group_column_index)` (sparse modes
    /// only); map through `order` for the candidate index. `wide_scratch`
    /// is a reusable buffer for the wide path; untouched in packed mode.
    #[inline]
    pub(crate) fn probe(
        &self,
        wide_scratch: &mut Vec<u32>,
        mut fetch: impl FnMut(usize) -> u32,
    ) -> Option<usize> {
        if self.packed {
            let mut key = 0u64;
            for (gi, &sh) in self.shifts.iter().enumerate() {
                key |= (fetch(gi) as u64) << sh;
            }
            self.keys.binary_search(&key).ok()
        } else {
            let stride = self.cols.len();
            wide_scratch.clear();
            for gi in 0..stride {
                wide_scratch.push(fetch(gi));
            }
            // Binary search over the co-sorted flat key tuples.
            let (mut lo, mut hi) = (0usize, self.order.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                let cand = &self.wide_keys[mid * stride..(mid + 1) * stride];
                match cand.cmp(&wide_scratch[..]) {
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                    std::cmp::Ordering::Equal => return Some(mid),
                }
            }
            None
        }
    }
}

/// Reusable buffers for one sequence of best-marginal searches. Thread one
/// instance through the `k` greedy iterations of a BRS run (see
/// [`crate::Brs`]) so steady-state searches reuse allocations.
#[derive(Debug, Default)]
pub struct SearchScratch {
    hists: Vec<ColumnHist>,
    pub(crate) cstats: Vec<CandStat>,
    pub(crate) groups: Vec<Group>,
    /// Maps a level's column-set signature to its group index.
    group_ix: FxHashMap<Vec<u16>, usize>,
}

impl SearchScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Columnar implementation of Algorithm 2. See the module docs; results are
/// bit-identical to [`crate::marginal::find_best_marginal_rule_rowwise`] in
/// both scalar and parallel mode.
///
/// det-order: this orchestrator's own `+=` are integer stats; every float
/// partial merge happens inside the pass helpers via `exec::reduce_pairwise`.
pub(crate) fn find_best_marginal_rule_columnar(
    view: &TableView<'_>,
    weight: &dyn WeightFn,
    covered_weight: &[f64],
    opts: &SearchOptions,
    scratch: &mut SearchScratch,
) -> Option<BestMarginal> {
    assert_eq!(
        covered_weight.len(),
        view.len(),
        "covered_weight must align with view"
    );
    let table = view.table();
    let n_cols = table.n_columns();
    let base = opts.base.clone().unwrap_or_else(|| Rule::trivial(n_cols));
    let free_cols: Vec<usize> = (0..n_cols).filter(|&c| base.is_star(c)).collect();
    let max_size = opts
        .max_rule_size
        .unwrap_or(free_cols.len())
        .min(free_cols.len());
    if max_size == 0 || view.is_empty() {
        return None;
    }

    let parallel_enabled =
        cfg!(feature = "parallel") && opts.parallel && view.len() >= opts.parallel_min_rows.max(1);
    let threads = if parallel_enabled {
        exec::worker_threads()
    } else {
        1
    };
    // Row-slicing plan for pass 1 (pass-j levels re-plan per group count).
    let p1_chunks = if parallel_enabled {
        planned_row_chunks(opts, free_cols.len(), view.len(), threads)
    } else {
        1
    };

    let mut stats = SearchStats::default();
    let mut counted: FxHashMap<Rule, CandStat> = FxHashMap::default();
    let mut best_h = 0.0f64;

    // ---- Pass 1: columnar per-code histograms — one task per free column,
    // or per (column × chunk) in row-sliced mode. ----
    stats.passes = 1;
    scratch.hists.resize_with(free_cols.len(), Default::default);
    let chunk = view.as_chunk();
    let pass1: Vec<Pass1Out> = if p1_chunks > 1 {
        pass1_row_sliced(
            table,
            view,
            &base,
            &free_cols,
            weight,
            covered_weight,
            opts,
            threads,
            p1_chunks,
        )
    } else {
        let jobs: Vec<(usize, ColumnHist)> = free_cols
            .iter()
            .enumerate()
            .map(|(fi, _)| (fi, std::mem::take(&mut scratch.hists[fi])))
            .collect();
        exec::parallel_map(threads, jobs, |(fi, mut hist)| {
            let c = free_cols[fi];
            let card = table.cardinality(c);
            hist.counts.clear();
            hist.counts.resize(card, 0.0);
            hist.marginals.clear();
            hist.marginals.resize(card, 0.0);

            count_column(table, &chunk, c, &mut hist.counts);

            // Candidate boundary: materialize rules for supported codes,
            // gate on weight, fill the code → weight table.
            let cands = pass1_candidates(table, &base, c, &hist.counts, weight, opts);
            hist.wtab = cands.wtab;

            // Marginal sweep: m[code] += w_t · (W − min(W, cov_t)). Over-cap
            // and unsupported codes have W = 0 in wtab, contributing 0 to
            // slots that are never read back.
            let cov = &covered_weight[chunk.offset()..chunk.offset() + chunk.len()];
            marginal_column(table, &chunk, c, cov, &hist.wtab, &mut hist.marginals);

            Pass1Out {
                hist,
                rules: cands.rules,
                generated: cands.generated,
                pruned: cands.pruned,
            }
        })
    };

    let mut level: Vec<Rule> = Vec::new();
    for (fi, out) in pass1.into_iter().enumerate() {
        stats.generated += out.generated;
        stats.pruned += out.pruned;
        stats.counted += out.rules.len();
        let c = free_cols[fi];
        for rule in &out.rules {
            let code = rule.code(c) as usize;
            let stat = CandStat {
                count: out.hist.counts[code],
                marginal: out.hist.marginals[code],
                weight: out.hist.wtab[code],
            };
            counted.insert(rule.clone(), stat);
            if stat.marginal > best_h {
                best_h = stat.marginal;
            }
        }
        level.extend(out.rules);
        scratch.hists[fi] = out.hist;
    }

    // ---- Passes 2..: a-priori extension, grouped columnar counting. ----
    let blocks = level_blocks(&level, &base);

    let mut current = level;
    for _pass in 2..=max_size {
        let (next, cand_weights) = generate_level(
            table, &base, &blocks, &current, &counted, weight, opts, best_h, &mut stats,
        );
        if next.is_empty() {
            break;
        }
        stats.passes += 1;
        stats.counted += next.len();

        build_groups(scratch, table, &base, &next, view.len());
        let pj_chunks = if parallel_enabled {
            planned_row_chunks(opts, scratch.groups.len(), view.len(), threads)
        } else {
            1
        };
        count_level(
            view,
            table,
            covered_weight,
            scratch,
            &cand_weights,
            threads,
            pj_chunks,
        );

        for (cand, stat) in next.iter().zip(&scratch.cstats) {
            if stat.marginal > best_h {
                best_h = stat.marginal;
            }
            counted.insert(cand.clone(), *stat);
        }
        current = next;
    }

    pick_winner(&counted, stats)
}

/// `counts[code] += w` over one chunk of one column.
///
/// det-order: sequential scan in row order within the chunk; cross-chunk
/// partials merge in fixed order via `exec::reduce_pairwise` in the caller.
fn count_column(table: &Table, chunk: &ViewChunk<'_>, col: usize, counts: &mut [f64]) {
    let codes = table.column(col);
    match (chunk.contiguous_rows(), chunk.weights()) {
        (Some(range), None) => {
            for &code in &codes[range] {
                counts[code as usize] += 1.0;
            }
        }
        (Some(range), Some(ws)) => {
            for (&code, &w) in codes[range].iter().zip(ws) {
                counts[code as usize] += w;
            }
        }
        (None, _) => {
            let ids = chunk.row_ids().expect("non-contiguous chunk has row ids");
            match chunk.weights() {
                None => {
                    for &r in ids {
                        counts[codes[r as usize] as usize] += 1.0;
                    }
                }
                Some(ws) => {
                    for (&r, &w) in ids.iter().zip(ws) {
                        counts[codes[r as usize] as usize] += w;
                    }
                }
            }
        }
    }
}

/// `marginals[code] += w_t · (wtab[code] − min(wtab[code], cov_t))` over one
/// chunk of one column.
fn marginal_column(
    table: &Table,
    chunk: &ViewChunk<'_>,
    col: usize,
    cov: &[f64],
    wtab: &[f64],
    marginals: &mut [f64],
) {
    let codes = table.column(col);
    match chunk.contiguous_rows() {
        Some(range) => {
            for (i, &code) in codes[range].iter().enumerate() {
                let w = wtab[code as usize];
                marginals[code as usize] += chunk.weight_at(i) * (w - w.min(cov[i]));
            }
        }
        None => {
            let ids = chunk.row_ids().expect("non-contiguous chunk has row ids");
            for (i, &r) in ids.iter().enumerate() {
                let code = codes[r as usize];
                let w = wtab[code as usize];
                marginals[code as usize] += chunk.weight_at(i) * (w - w.min(cov[i]));
            }
        }
    }
}

/// `counts[code] += 1` over one unit-weight chunk of one column — the exact
/// `u64` accumulator of the row-sliced mode (integer partials merge
/// associatively, so sliced counts are bit-identical to the scalar sweep).
fn count_column_u64(table: &Table, chunk: &ViewChunk<'_>, col: usize, counts: &mut [u64]) {
    let codes = table.column(col);
    debug_assert!(chunk.weights().is_none(), "u64 counting needs unit weights");
    match chunk.contiguous_rows() {
        Some(range) => {
            for &code in &codes[range] {
                counts[code as usize] += 1;
            }
        }
        None => {
            let ids = chunk.row_ids().expect("non-contiguous chunk has row ids");
            for &r in ids {
                counts[codes[r as usize] as usize] += 1;
            }
        }
    }
}

/// One pass-1 count partial: exact integers on unit-weight views, float
/// partials (merged pairwise in chunk order) on weighted views.
enum CountPartial {
    Ints(Vec<u64>),
    Floats(Vec<f64>),
}

/// Merges one column's per-chunk count partials (chunk order) into the
/// final per-code `f64` histogram.
fn merge_count_partials(parts: Vec<CountPartial>) -> Vec<f64> {
    let merged = exec::reduce_pairwise(parts, |a, b| match (a, b) {
        (CountPartial::Ints(a), CountPartial::Ints(b)) => {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        (CountPartial::Floats(a), CountPartial::Floats(b)) => {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        _ => unreachable!("count partials of one view share a representation"),
    });
    match merged {
        CountPartial::Ints(v) => v.into_iter().map(|c| c as f64).collect(),
        CountPartial::Floats(v) => v,
    }
}

/// Row-sliced pass 1: three phases over (free column × chunk) tasks.
///
/// 1. **count** — private per-chunk per-code partials, merged per column in
///    fixed chunk order ([`merge_count_partials`]);
/// 2. **candidate boundary** — per column (cheap): materialize rules for
///    supported codes, gate on weight, fill the code → weight table;
/// 3. **marginal** — private per-chunk marginal partials against the
///    aligned covered-weight slice, merged pairwise in chunk order.
///
/// Output is shaped exactly like the task-per-column path so the caller's
/// candidate consumption is shared.
#[allow(clippy::too_many_arguments)]
fn pass1_row_sliced(
    table: &Table,
    view: &TableView<'_>,
    base: &Rule,
    free_cols: &[usize],
    weight: &dyn WeightFn,
    covered_weight: &[f64],
    opts: &SearchOptions,
    threads: usize,
    max_chunks: usize,
) -> Vec<Pass1Out> {
    let chunks = view.chunks(max_chunks);
    let k = chunks.len();
    let unit_weights = view.weights().is_none();
    // Column-major job order keeps each column's chunk partials contiguous
    // (and in chunk order) in the parallel_map output.
    let jobs: Vec<(usize, usize)> = (0..free_cols.len())
        .flat_map(|fi| (0..k).map(move |ck| (fi, ck)))
        .collect();

    let count_parts = exec::parallel_map(threads, jobs.clone(), |(fi, ck)| {
        let c = free_cols[fi];
        let card = table.cardinality(c);
        if unit_weights {
            let mut counts = vec![0u64; card];
            count_column_u64(table, &chunks[ck], c, &mut counts);
            CountPartial::Ints(counts)
        } else {
            let mut counts = vec![0.0f64; card];
            count_column(table, &chunks[ck], c, &mut counts);
            CountPartial::Floats(counts)
        }
    });
    let mut part_it = count_parts.into_iter();
    let col_counts: Vec<Vec<f64>> = (0..free_cols.len())
        .map(|_| {
            let parts: Vec<CountPartial> = (0..k)
                .map(|_| part_it.next().expect("k per column"))
                .collect();
            merge_count_partials(parts)
        })
        .collect();

    let cands: Vec<Pass1Cands> =
        exec::parallel_map(threads, (0..free_cols.len()).collect(), |fi| {
            pass1_candidates(table, base, free_cols[fi], &col_counts[fi], weight, opts)
        });

    let marg_parts = exec::parallel_map(threads, jobs, |(fi, ck)| {
        let c = free_cols[fi];
        let chunk = &chunks[ck];
        let cov = &covered_weight[chunk.offset()..chunk.offset() + chunk.len()];
        let mut marginals = vec![0.0f64; table.cardinality(c)];
        marginal_column(table, chunk, c, cov, &cands[fi].wtab, &mut marginals);
        marginals
    });
    let mut marg_it = marg_parts.into_iter();

    col_counts
        .into_iter()
        .zip(cands)
        .map(|(counts, cc)| {
            let parts: Vec<Vec<f64>> = (0..k)
                .map(|_| marg_it.next().expect("k per column"))
                .collect();
            let marginals = exec::reduce_pairwise(parts, |a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            });
            Pass1Out {
                hist: ColumnHist {
                    counts,
                    marginals,
                    wtab: cc.wtab,
                },
                rules: cc.rules,
                generated: cc.generated,
                pruned: cc.pruned,
            }
        })
        .collect()
}

/// Groups a level's candidates by instantiated-column signature and builds
/// each group's dense cell map or sorted probe keys.
pub(crate) fn build_groups(
    scratch: &mut SearchScratch,
    table: &Table,
    base: &Rule,
    next: &[Rule],
    view_rows: usize,
) {
    scratch.groups.clear();
    scratch.group_ix.clear();

    let mut sig: Vec<u16> = Vec::new();
    let mut cand_group: Vec<u32> = Vec::with_capacity(next.len());
    for cand in next {
        sig.clear();
        sig.extend(
            cand.instantiated_columns()
                .filter(|&c| base.is_star(c))
                .map(|c| c as u16),
        );
        let gi = match scratch.group_ix.get(&sig) {
            Some(&gi) => gi,
            None => {
                let gi = scratch.groups.len();
                scratch.group_ix.insert(sig.clone(), gi);
                let cols: Vec<usize> = sig.iter().map(|&c| c as usize).collect();

                // Dense layout: mixed-radix strides over the cardinalities.
                let mut strides = Vec::with_capacity(cols.len());
                let mut cells: usize = 1;
                for &c in &cols {
                    strides.push(cells);
                    cells = cells.saturating_mul(table.cardinality(c).max(1));
                }
                // Dense only when the cell space is bounded both
                // absolutely and relative to the rows actually counted —
                // a small drill-down view over wide columns must not pay
                // O(cells) zeroing for O(rows) work.
                let dense = cells <= DENSE_CELL_CAP && cells <= view_rows.saturating_mul(8).max(64);

                // Sparse layout: packed bit widths.
                let mut shifts = Vec::with_capacity(cols.len());
                let mut total_bits = 0u32;
                for &c in &cols {
                    shifts.push(total_bits.min(63));
                    let card = table.cardinality(c).max(2) as u64;
                    total_bits += 64 - (card - 1).leading_zeros();
                }

                scratch.groups.push(Group {
                    cols,
                    strides,
                    cells: if dense { cells } else { 0 },
                    cand_cells: Vec::new(),
                    shifts,
                    packed: total_bits <= 64,
                    keys: Vec::new(),
                    wide_keys: Vec::new(),
                    order: Vec::new(),
                });
                gi
            }
        };
        cand_group.push(gi as u32);
    }

    for g in &mut scratch.groups {
        g.cand_cells.clear();
        g.keys.clear();
        g.wide_keys.clear();
        g.order.clear();
    }
    for (ci, cand) in next.iter().enumerate() {
        let g = &mut scratch.groups[cand_group[ci] as usize];
        if g.is_dense() {
            let mut cell = 0usize;
            for (&c, &stride) in g.cols.iter().zip(&g.strides) {
                cell += cand.code(c) as usize * stride;
            }
            g.cand_cells.push((cell, ci as u32));
        } else if g.packed {
            let mut key = 0u64;
            for (&c, &sh) in g.cols.iter().zip(&g.shifts) {
                key |= (cand.code(c) as u64) << sh;
            }
            g.keys.push(key);
            g.order.push(ci as u32);
        } else {
            for &c in &g.cols {
                g.wide_keys.push(cand.code(c));
            }
            g.order.push(ci as u32);
        }
    }
    // Sort sparse probe keys.
    for g in &mut scratch.groups {
        if g.is_dense() || g.order.is_empty() {
            continue;
        }
        if g.packed {
            let mut ix: Vec<u32> = (0..g.keys.len() as u32).collect();
            ix.sort_by_key(|&i| g.keys[i as usize]);
            g.keys = ix.iter().map(|&i| g.keys[i as usize]).collect();
            g.order = ix.iter().map(|&i| g.order[i as usize]).collect();
        } else {
            let stride = g.cols.len();
            let mut ix: Vec<u32> = (0..g.order.len() as u32).collect();
            ix.sort_by(|&a, &b| {
                let ka = &g.wide_keys[a as usize * stride..(a as usize + 1) * stride];
                let kb = &g.wide_keys[b as usize * stride..(b as usize + 1) * stride];
                ka.cmp(kb)
            });
            let mut sorted_keys = Vec::with_capacity(g.wide_keys.len());
            for &i in &ix {
                sorted_keys.extend_from_slice(
                    &g.wide_keys[i as usize * stride..(i as usize + 1) * stride],
                );
            }
            g.wide_keys = sorted_keys;
            g.order = ix.iter().map(|&i| g.order[i as usize]).collect();
        }
    }
}

/// Counts one level's candidates over the view — one task per
/// (group × chunk) — writing per-candidate stats into `scratch.cstats`.
///
/// With `max_chunks == 1` this is exactly the PR-1 task-per-group kernel
/// (a single chunk spanning the view, merge a no-op). With more chunks,
/// each task's private per-candidate partials are reduced per group in
/// fixed chunk order ([`crate::exec::reduce_pairwise`]), so results do not
/// depend on thread count.
#[allow(clippy::too_many_arguments)]
fn count_level(
    view: &TableView<'_>,
    table: &Table,
    covered_weight: &[f64],
    scratch: &mut SearchScratch,
    cand_weights: &[f64],
    threads: usize,
    max_chunks: usize,
) {
    let chunks = view.chunks(max_chunks);
    let k = chunks.len();
    let groups = &scratch.groups;
    // Group-major job order: each group's chunk partials come back
    // contiguous and in chunk order.
    let jobs: Vec<(usize, usize)> = (0..groups.len())
        .flat_map(|gi| (0..k).map(move |ck| (gi, ck)))
        .collect();
    let outputs = exec::parallel_map(threads, jobs, |(gi, ck)| {
        let g = &groups[gi];
        let chunk = &chunks[ck];
        let cov = &covered_weight[chunk.offset()..chunk.offset() + chunk.len()];
        if g.is_dense() {
            count_group_dense(table, chunk, cov, g, cand_weights)
        } else {
            count_group_sparse(table, chunk, cov, g, cand_weights)
        }
    });

    scratch.cstats.clear();
    scratch
        .cstats
        .extend(cand_weights.iter().map(|&w| CandStat {
            count: 0.0,
            marginal: 0.0,
            weight: w,
        }));
    let mut out_it = outputs.into_iter();
    for _gi in 0..groups.len() {
        let parts: Vec<Vec<(u32, f64, f64)>> = (0..k)
            .map(|_| out_it.next().expect("k per group"))
            .collect();
        // Per-group candidate lists are identical across chunks (dense:
        // `cand_cells` order; sparse: `order`), so merge positionally.
        let merged = exec::reduce_pairwise(parts, |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                debug_assert_eq!(x.0, y.0, "chunk partials misaligned");
                x.1 += y.1;
                x.2 += y.2;
            }
        });
        for (ci, count, marginal) in merged {
            let stat = &mut scratch.cstats[ci as usize];
            stat.count = count;
            stat.marginal = marginal;
        }
    }
}

/// Probe-free dense counting of one group: a mixed-radix cell histogram over
/// the group's columns, then candidate cells read off.
///
/// det-order: sequential scan in row order within the chunk; per-group
/// chunk partials merge positionally via `exec::reduce_pairwise` upstream.
fn count_group_dense(
    table: &Table,
    chunk: &ViewChunk<'_>,
    cov: &[f64],
    g: &Group,
    cand_weights: &[f64],
) -> Vec<(u32, f64, f64)> {
    let mut counts = vec![0.0f64; g.cells];
    let mut marginals = vec![0.0f64; g.cells];
    let mut wvec = vec![0.0f64; g.cells];
    for &(cell, ci) in &g.cand_cells {
        wvec[cell] = cand_weights[ci as usize];
    }
    let cols: Vec<&[u32]> = g.cols.iter().map(|&c| table.column(c)).collect();

    match chunk.contiguous_rows() {
        Some(range) => {
            let start = range.start;
            for (i, &cov_i) in cov.iter().enumerate().take(chunk.len()) {
                let row = start + i;
                let mut cell = 0usize;
                for (col, &stride) in cols.iter().zip(&g.strides) {
                    cell += col[row] as usize * stride;
                }
                let w_t = chunk.weight_at(i);
                let w = wvec[cell];
                counts[cell] += w_t;
                marginals[cell] += w_t * (w - w.min(cov_i));
            }
        }
        None => {
            let ids = chunk.row_ids().expect("non-contiguous chunk has row ids");
            for (i, &r) in ids.iter().enumerate() {
                let mut cell = 0usize;
                for (col, &stride) in cols.iter().zip(&g.strides) {
                    cell += col[r as usize] as usize * stride;
                }
                let w_t = chunk.weight_at(i);
                let w = wvec[cell];
                counts[cell] += w_t;
                marginals[cell] += w_t * (w - w.min(cov[i]));
            }
        }
    }

    g.cand_cells
        .iter()
        .map(|&(cell, ci)| (ci, counts[cell], marginals[cell]))
        .collect()
}

/// Sparse counting of one group via packed-key binary search (groups whose
/// cell space exceeds [`DENSE_CELL_CAP`]).
///
/// det-order: sequential scan in row order within the chunk; per-group
/// chunk partials merge positionally via `exec::reduce_pairwise` upstream.
fn count_group_sparse(
    table: &Table,
    chunk: &ViewChunk<'_>,
    cov: &[f64],
    g: &Group,
    cand_weights: &[f64],
) -> Vec<(u32, f64, f64)> {
    // Accumulate per sorted-key position — dense in the group's candidate
    // count, no hashing on the row loop.
    let mut acc: Vec<(f64, f64)> = vec![(0.0, 0.0); g.order.len()];
    let cols: Vec<&[u32]> = g.cols.iter().map(|&c| table.column(c)).collect();
    let mut wide_scratch: Vec<u32> = Vec::new();
    let mut hit = |pos: usize, w_t: f64, cov_i: f64| {
        let w = cand_weights[g.order[pos] as usize];
        let slot = &mut acc[pos];
        slot.0 += w_t;
        slot.1 += w_t * (w - w.min(cov_i));
    };
    match chunk.contiguous_rows() {
        Some(range) => {
            let start = range.start;
            for (i, &cov_i) in cov.iter().enumerate().take(chunk.len()) {
                let row = start + i;
                if let Some(pos) = g.probe(&mut wide_scratch, |gi| cols[gi][row]) {
                    hit(pos, chunk.weight_at(i), cov_i);
                }
            }
        }
        None => {
            let ids = chunk.row_ids().expect("non-contiguous chunk has row ids");
            for (i, &r) in ids.iter().enumerate() {
                if let Some(pos) = g.probe(&mut wide_scratch, |gi| cols[gi][r as usize]) {
                    hit(pos, chunk.weight_at(i), cov[i]);
                }
            }
        }
    }
    // Consumer writes by candidate index; no ordering required.
    g.order
        .iter()
        .zip(acc)
        .map(|(&ci, (c, m))| (ci, c, m))
        .collect()
}

/// Selects the winner from the counted set: max marginal, ties broken toward
/// higher weight then lexicographically smaller codes (identical to the
/// reference implementation).
pub(crate) fn pick_winner(
    counted: &FxHashMap<Rule, CandStat>,
    stats: SearchStats,
) -> Option<BestMarginal> {
    let mut best: Option<(&Rule, &CandStat)> = None;
    for (rule, stat) in counted {
        if stat.marginal <= 0.0 {
            continue;
        }
        let better = match best {
            None => true,
            Some((brule, bstat)) => {
                (stat.marginal, stat.weight, std::cmp::Reverse(rule.codes()))
                    > (
                        bstat.marginal,
                        bstat.weight,
                        std::cmp::Reverse(brule.codes()),
                    )
            }
        };
        if better {
            best = Some((rule, stat));
        }
    }
    best.map(|(rule, stat)| BestMarginal {
        rule: rule.clone(),
        marginal_value: stat.marginal,
        count: stat.count,
        weight: stat.weight,
        stats,
    })
}

// ---------------------------------------------------------------------------
// Columnar rule-coverage scans (shared by BRS, drill-down filtering, and the
// sampling layer's full-table scans).
// ---------------------------------------------------------------------------

/// View positions (ascending) whose rows are covered by `rule`, evaluating
/// one instantiated column at a time over column slices (progressive
/// candidate filtering) instead of row-at-a-time probing.
///
/// Large views are scanned **row-sliced**: each [`TableView::chunks`] chunk
/// is filtered independently and the per-chunk hit lists are concatenated
/// in chunk order, so the output is byte-identical on any thread count
/// (positions are integers — no float-merge caveat applies). This is the
/// scan behind the BRS covered-weight update and drill-down filtering.
pub fn covered_positions(view: &TableView<'_>, rule: &Rule) -> Vec<u32> {
    covered_positions_with_threads(view, rule, exec::worker_threads())
}

/// [`covered_positions`] with an explicit worker budget (`1` = fully
/// serial). Callers already inside a parallel region — or honoring a
/// caller-level parallelism switch, as BRS does with
/// [`SearchOptions::parallel`] — pass `1` to avoid nested fan-out; the
/// output is byte-identical either way.
pub fn covered_positions_with_threads(
    view: &TableView<'_>,
    rule: &Rule,
    threads: usize,
) -> Vec<u32> {
    let cols: Vec<usize> = rule.instantiated_columns().collect();
    if cols.is_empty() {
        return (0..view.len() as u32).collect();
    }
    let k = if threads > 1 {
        scan_chunks(view.len())
    } else {
        1
    };
    if k <= 1 {
        return covered_positions_chunk(view.table(), &view.as_chunk(), rule, &cols);
    }
    let chunks = view.chunks(k);
    let parts = exec::parallel_map(threads, chunks, |chunk| {
        covered_positions_chunk(view.table(), &chunk, rule, &cols)
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Progressive columnar filtering of one chunk; returned positions are
/// global view positions, ascending.
fn covered_positions_chunk(
    table: &Table,
    chunk: &ViewChunk<'_>,
    rule: &Rule,
    cols: &[usize],
) -> Vec<u32> {
    let (first, rest) = cols.split_first().expect("non-empty");
    let first_codes = table.column(*first);
    let want = rule.code(*first);
    let offset = chunk.offset();

    // Survivor positions after the first column's scan. (A contiguous
    // chunk comes from an all-rows view, where position == row id.)
    let mut positions: Vec<u32> = Vec::new();
    match chunk.contiguous_rows() {
        Some(range) => {
            accel::positions_eq_u32(&first_codes[range], want, offset as u32, &mut positions);
        }
        None => {
            let ids = chunk.row_ids().expect("non-contiguous chunk has row ids");
            for (i, &r) in ids.iter().enumerate() {
                if first_codes[r as usize] == want {
                    positions.push((offset + i) as u32);
                }
            }
        }
    }
    // Each further column filters the shrinking survivor list.
    for &c in rest {
        let codes = table.column(c);
        let want = rule.code(c);
        match chunk.row_ids() {
            None => positions.retain(|&p| codes[p as usize] == want),
            Some(ids) => positions.retain(|&p| codes[ids[p as usize - offset] as usize] == want),
        }
    }
    positions
}

/// Calls `f(position)` for every view position whose row is covered by
/// `rule`, in ascending position order — [`covered_positions`] with a
/// callback (the trivial rule streams without materializing).
pub fn for_each_covered_position(view: &TableView<'_>, rule: &Rule, mut f: impl FnMut(usize)) {
    if rule.instantiated_columns().next().is_none() {
        for i in 0..view.len() {
            f(i);
        }
        return;
    }
    for p in covered_positions(view, rule) {
        f(p as usize);
    }
}

/// All row ids of `table` covered by `rule` (ascending), via progressive
/// columnar filtering — the fast path for the sampling layer's full-table
/// scans. Large tables are scanned row-sliced ([`sdd_table::chunk_spans`]
/// slices, concatenated in slice order), so the output is byte-identical
/// on any thread count.
pub fn covered_rows(table: &Table, rule: &Rule) -> Vec<RowId> {
    covered_rows_with_threads(table, rule, exec::worker_threads())
}

/// [`covered_rows`] with an explicit worker budget (`1` = fully serial).
/// The sampling layer's batch prefetch passes `1` when it already fans out
/// task-per-rule, keeping total thread use bounded by the machine.
pub fn covered_rows_with_threads(table: &Table, rule: &Rule, threads: usize) -> Vec<RowId> {
    let cols: Vec<usize> = rule.instantiated_columns().collect();
    let n = table.n_rows();
    if cols.is_empty() {
        return (0..n as RowId).collect();
    }
    let k = if threads > 1 { scan_chunks(n) } else { 1 };
    if k <= 1 {
        return covered_rows_span(table, rule, &cols, 0..n);
    }
    let parts = exec::parallel_map(threads, chunk_spans(n, k), |span| {
        covered_rows_span(table, rule, &cols, span)
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Progressive columnar filtering of one row span of the full table.
fn covered_rows_span(
    table: &Table,
    rule: &Rule,
    cols: &[usize],
    span: std::ops::Range<usize>,
) -> Vec<RowId> {
    let (&first, rest) = cols.split_first().expect("non-empty");
    let codes = table.column(first);
    let want = rule.code(first);
    let mut rows: Vec<RowId> = Vec::new();
    accel::positions_eq_u32(&codes[span.clone()], want, span.start as u32, &mut rows);
    for &c in rest {
        let codes = table.column(c);
        let want = rule.code(c);
        rows.retain(|&r| codes[r as usize] == want);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_table::Schema;

    fn t() -> Table {
        Table::from_rows(
            Schema::new(["A", "B", "C"]).unwrap(),
            &[
                &["a", "x", "0"],
                &["a", "y", "1"],
                &["b", "x", "0"],
                &["a", "x", "1"],
                &["c", "z", "0"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn covered_rows_matches_rowwise_coverage() {
        let table = t();
        let rule = Rule::from_pairs(&table, &[("A", "a"), ("B", "x")]).unwrap();
        let fast = covered_rows(&table, &rule);
        let slow: Vec<RowId> = (0..table.n_rows() as RowId)
            .filter(|&r| rule.covers_row(&table, r))
            .collect();
        assert_eq!(fast, slow);
        assert_eq!(fast, vec![0, 3]);
    }

    #[test]
    fn covered_rows_trivial_rule_is_everything() {
        let table = t();
        let rule = Rule::trivial(3);
        assert_eq!(covered_rows(&table, &rule).len(), table.n_rows());
    }

    #[test]
    fn for_each_covered_position_on_subset_views() {
        let table = t();
        let view = TableView::with_rows(&table, vec![4, 0, 3, 2]);
        let rule = Rule::from_pairs(&table, &[("A", "a")]).unwrap();
        let mut got = Vec::new();
        for_each_covered_position(&view, &rule, |i| got.push(i));
        // Positions 1 (row 0) and 2 (row 3) hold "a" rows.
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn for_each_covered_position_trivial_rule_hits_all_positions() {
        let table = t();
        let view = table.view();
        let mut got = Vec::new();
        for_each_covered_position(&view, &Rule::trivial(3), |i| got.push(i));
        assert_eq!(got, (0..view.len()).collect::<Vec<_>>());
    }

    #[test]
    fn covered_positions_matches_for_each() {
        let table = t();
        let view = TableView::with_rows(&table, vec![4, 0, 3, 2, 1]);
        for rule in [
            Rule::trivial(3),
            Rule::from_pairs(&table, &[("A", "a")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "a"), ("B", "x")]).unwrap(),
        ] {
            let mut via_callback = Vec::new();
            for_each_covered_position(&view, &rule, |i| via_callback.push(i as u32));
            assert_eq!(covered_positions(&view, &rule), via_callback);
        }
    }

    #[test]
    fn dense_and_sparse_group_counting_agree() {
        let table = t();
        let base = Rule::trivial(3);
        let cands = vec![
            Rule::from_pairs(&table, &[("A", "a"), ("B", "x")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "b"), ("B", "x")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "a"), ("B", "y")]).unwrap(),
        ];
        let cand_weights = vec![2.0; cands.len()];
        let view = table.view();
        let cov = vec![0.5; view.len()];
        let chunk = view.as_chunk();

        let mut scratch = SearchScratch::new();
        build_groups(&mut scratch, &table, &base, &cands, table.n_rows());
        assert_eq!(scratch.groups.len(), 1);
        let g = &scratch.groups[0];
        assert!(g.is_dense());
        let dense = count_group_dense(&table, &chunk, &cov, g, &cand_weights);

        // Sparse twin of the same group.
        let sparse_group = {
            let mut sg = Group {
                cols: g.cols.clone(),
                strides: g.strides.clone(),
                cells: 0, // force sparse
                cand_cells: Vec::new(),
                shifts: g.shifts.clone(),
                packed: true,
                keys: Vec::new(),
                wide_keys: Vec::new(),
                order: Vec::new(),
            };
            let mut keyed: Vec<(u64, u32)> = cands
                .iter()
                .enumerate()
                .map(|(ci, cand)| {
                    let mut key = 0u64;
                    for (&c, &sh) in sg.cols.iter().zip(&sg.shifts) {
                        key |= (cand.code(c) as u64) << sh;
                    }
                    (key, ci as u32)
                })
                .collect();
            keyed.sort();
            for (k, ci) in keyed {
                sg.keys.push(k);
                sg.order.push(ci);
            }
            sg
        };
        let sparse = count_group_sparse(&table, &chunk, &cov, &sparse_group, &cand_weights);

        let norm = |mut v: Vec<(u32, f64, f64)>| {
            v.sort_by_key(|&(ci, _, _)| ci);
            v
        };
        assert_eq!(norm(dense), norm(sparse));
    }

    #[test]
    fn wide_key_probe_agrees_with_packed() {
        let table = t();
        let cands = [
            Rule::from_pairs(&table, &[("A", "a"), ("B", "x")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "b"), ("B", "x")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "a"), ("B", "y")]).unwrap(),
        ];
        let cols = [0usize, 1];
        let packed = {
            let mut g = Group {
                cols: cols.to_vec(),
                shifts: vec![0, 2],
                packed: true,
                ..Default::default()
            };
            let mut keyed: Vec<(u64, u32)> = cands
                .iter()
                .enumerate()
                .map(|(ci, cand)| {
                    (
                        (cand.code(0) as u64) | ((cand.code(1) as u64) << 2),
                        ci as u32,
                    )
                })
                .collect();
            keyed.sort();
            for (k, ci) in keyed {
                g.keys.push(k);
                g.order.push(ci);
            }
            g
        };
        let wide = {
            let mut g = Group {
                cols: cols.to_vec(),
                shifts: vec![0, 2],
                packed: false,
                ..Default::default()
            };
            let mut keyed: Vec<(Vec<u32>, u32)> = cands
                .iter()
                .enumerate()
                .map(|(ci, cand)| (vec![cand.code(0), cand.code(1)], ci as u32))
                .collect();
            keyed.sort();
            for (codes, ci) in keyed {
                g.wide_keys.extend(codes);
                g.order.push(ci);
            }
            g
        };
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        for r in 0..table.n_rows() as RowId {
            let a = packed
                .probe(&mut s1, |gi| table.code(r, cols[gi]))
                .map(|pos| packed.order[pos]);
            let b = wide
                .probe(&mut s2, |gi| table.code(r, cols[gi]))
                .map(|pos| wide.order[pos]);
            assert_eq!(a, b, "row {r}");
        }
    }
}
