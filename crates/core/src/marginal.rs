//! Finding the best marginal rule (paper §3.5, Algorithm 2).
//!
//! Given the current solution set `S` (summarized as the per-tuple weight of
//! the best rule of `S` covering each tuple), find the single rule `r` with
//! weight `≤ mw` maximizing the **marginal value**
//!
//! ```text
//! MarginalValue(r) = Σ_{t ∈ r} w_t · ( W(r) − min(W(r), W(TOP(t, S))) )
//! ```
//!
//! The search is level-wise in rule size, a-priori style: pass `j` counts
//! candidates of size `j`, generated as one-column extensions of the
//! surviving size-`j−1` candidates. A candidate is pruned when the upper
//! bound derived from any counted sub-rule `R'`,
//!
//! ```text
//! MarginalValue(R') + Count(R') · (mw − W(R'))
//! ```
//!
//! falls below the best marginal value `H` found so far (the bound is valid
//! for every super-rule of `R'` with weight ≤ `mw`; see the module tests for
//! a brute-force check). Because only the single best rule is needed, `H`
//! rises quickly and the search typically terminates after 2–4 passes.

use crate::kernel::{self, CandStat, SearchScratch};
use crate::{Rule, WeightFn};
use rustc_hash::FxHashMap;
use sdd_table::TableView;

/// How the counting kernel slices *rows* across workers (on top of the
/// task-per-column/group parallelism that PR 1 introduced).
///
/// Row slicing splits the view into [`sdd_table::chunk_spans`] chunks; each
/// (column-or-group × chunk) task accumulates a private partial, and
/// partials are reduced **in fixed chunk order** with a pairwise tree
/// ([`crate::exec::reduce_pairwise`]). Because both the chunk plan and the
/// merge order are pure functions of the view length and the chunk cap —
/// never of thread count — row-sliced results are bit-identical on any
/// thread count. They can differ from the unsliced scalar sweep in the last
/// ulp of float sums (re-association); unit-weight counts are exact
/// integers and therefore always identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSlice {
    /// Engage row slicing when the level's task count (free columns in pass
    /// 1, candidate groups in pass j) cannot use the available workers and
    /// the view is large enough to amortize the merge. The chunk count is
    /// data-driven (`len / 8192`, capped), so results for a given decision
    /// are machine-independent; the *decision* consults
    /// [`crate::exec::worker_threads`], so pin `SDD_THREADS` for bit-exact
    /// cross-machine reproducibility of large weighted scans.
    Auto,
    /// Never slice rows: exactly the PR-1 task-per-column/group kernel,
    /// bit-identical to the scalar and row-at-a-time reference paths.
    Off,
    /// Always slice into at most this many chunks (≥ 1; `Force(1)` is
    /// equivalent to [`RowSlice::Off`]). Used by the parity suite and the
    /// thread-scaling benchmark.
    Force(usize),
}

/// Rows per chunk targeted by [`RowSlice::Auto`] (the merge cost is per
/// candidate per chunk, so chunks are kept coarse).
const ROWS_PER_CHUNK: usize = 8 * 1024;
/// Upper bound on the number of row chunks in [`RowSlice::Auto`].
const MAX_ROW_CHUNKS: usize = 64;
/// Views smaller than this never engage [`RowSlice::Auto`] slicing.
const ROW_SLICE_MIN_ROWS: usize = 32 * 1024;

/// The work-scheduling heuristic: how many row chunks a counting pass with
/// `units` independent column/group tasks over `len` rows should use, given
/// `threads` available workers. Returns `1` (no slicing) unless the pass
/// cannot otherwise occupy the workers.
pub(crate) fn planned_row_chunks(
    opts: &SearchOptions,
    units: usize,
    len: usize,
    threads: usize,
) -> usize {
    let cap = match opts.row_slice {
        RowSlice::Off => return 1,
        RowSlice::Force(k) => return k.clamp(1, len.max(1)),
        RowSlice::Auto => MAX_ROW_CHUNKS,
    };
    if threads <= 1 || len < ROW_SLICE_MIN_ROWS || units >= threads {
        return 1;
    }
    (len / ROWS_PER_CHUNK).clamp(1, cap)
}

/// Chunk count for the standalone coverage scans (`covered_rows`,
/// `covered_positions`): slices whenever the scan is large enough to
/// amortize task startup. Output there is integer hit lists concatenated
/// in slice order, so slicing never changes a byte of the result.
pub(crate) fn scan_chunks(len: usize) -> usize {
    if len < ROW_SLICE_MIN_ROWS {
        1
    } else {
        (len / ROWS_PER_CHUNK).clamp(1, MAX_ROW_CHUNKS)
    }
}

/// Tuning knobs for the marginal-rule search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// The paper's `mw`: assume no optimal rule has weight above this. The
    /// search is exact iff the assumption holds; smaller is faster.
    pub max_weight: f64,
    /// Enable the `mw`/`H` upper-bound pruning (Algorithm 2 step 3.3.2).
    /// Disabled only by the pruning ablation; plain support-based a-priori
    /// candidate generation (`count > 0`) is always in force.
    pub pruning: bool,
    /// Cap on rule size (number of instantiated free columns). `None` means
    /// up to all free columns.
    pub max_rule_size: Option<usize>,
    /// Drill-down base `r'`: every candidate is a strict super-rule of the
    /// base; the base's instantiated columns are fixed and excluded from the
    /// search space (see DESIGN.md §6.3). The view must already be filtered
    /// to base-covered tuples.
    pub base: Option<Rule>,
    /// Run the counting passes on multiple threads (requires the `parallel`
    /// cargo feature; no-op without it). Parallel merges change float
    /// association, so marginal values may differ from the scalar path in
    /// the last ulp — see [`crate::kernel`].
    pub parallel: bool,
    /// Views smaller than this stay on the scalar path even when
    /// [`SearchOptions::parallel`] is set (thread spawn/merge overhead
    /// dominates below it, and small searches stay bit-identical to the
    /// scalar kernel).
    pub parallel_min_rows: usize,
    /// Row-sliced execution mode (see [`RowSlice`]): lets counting passes
    /// scale past the column/group count by also splitting rows into
    /// deterministic chunks. Only consulted when [`SearchOptions::parallel`]
    /// engages the parallel kernel.
    pub row_slice: RowSlice,
}

impl SearchOptions {
    /// Defaults: given `mw`, pruning on, no size cap, no base, parallel
    /// counting enabled (when compiled in) for views of ≥ 16k rows.
    pub fn new(max_weight: f64) -> Self {
        Self {
            max_weight,
            pruning: true,
            max_rule_size: None,
            base: None,
            parallel: cfg!(feature = "parallel"),
            parallel_min_rows: 16 * 1024,
            row_slice: RowSlice::Auto,
        }
    }
}

/// Counters describing how much work one search did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of passes over the view (= max candidate size reached).
    pub passes: usize,
    /// Candidates generated across all levels.
    pub generated: usize,
    /// Candidates whose marginal value was actually counted.
    pub counted: usize,
    /// Candidates discarded by the upper-bound prune.
    pub pruned: usize,
}

impl SearchStats {
    /// Accumulates another search's counters into this one.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.passes += other.passes;
        self.generated += other.generated;
        self.counted += other.counted;
        self.pruned += other.pruned;
    }
}

/// The winning rule of one search.
#[derive(Debug, Clone)]
pub struct BestMarginal {
    /// The best rule found.
    pub rule: Rule,
    /// Its marginal value against the current solution set.
    pub marginal_value: f64,
    /// Its (weighted) count over the view.
    pub count: f64,
    /// Its weight `W(rule)`.
    pub weight: f64,
    /// Work counters.
    pub stats: SearchStats,
}

/// Runs Algorithm 2: returns the rule with the highest positive marginal
/// value (weight ≤ `opts.max_weight`), or `None` if every rule's marginal
/// value is zero.
///
/// `covered_weight[i]` must hold `W(TOP(t_i, S))` for the tuple at view
/// position `i` (`0.0` when uncovered) — the caller (BRS) maintains it.
///
/// This runs the columnar counting kernel (see [`crate::kernel`]); repeated
/// callers should prefer [`find_best_marginal_rule_with_scratch`] to reuse
/// buffers across searches, which is what [`crate::Brs`] does.
pub fn find_best_marginal_rule(
    view: &TableView<'_>,
    weight: &dyn WeightFn,
    covered_weight: &[f64],
    opts: &SearchOptions,
) -> Option<BestMarginal> {
    let mut scratch = SearchScratch::new();
    kernel::find_best_marginal_rule_columnar(view, weight, covered_weight, opts, &mut scratch)
}

/// [`find_best_marginal_rule`] with caller-owned scratch buffers, so the `k`
/// searches of one BRS run allocate once.
pub fn find_best_marginal_rule_with_scratch(
    view: &TableView<'_>,
    weight: &dyn WeightFn,
    covered_weight: &[f64],
    opts: &SearchOptions,
    scratch: &mut SearchScratch,
) -> Option<BestMarginal> {
    kernel::find_best_marginal_rule_columnar(view, weight, covered_weight, opts, scratch)
}

/// The original row-at-a-time implementation of Algorithm 2, kept verbatim
/// as the reference for kernel parity tests and the kernel-vs-scalar
/// benchmark. Semantically identical to [`find_best_marginal_rule`]; the
/// columnar kernel is bit-identical to it in scalar mode.
pub fn find_best_marginal_rule_rowwise(
    view: &TableView<'_>,
    weight: &dyn WeightFn,
    covered_weight: &[f64],
    opts: &SearchOptions,
) -> Option<BestMarginal> {
    assert_eq!(
        covered_weight.len(),
        view.len(),
        "covered_weight must align with view"
    );
    let table = view.table();
    let n_cols = table.n_columns();
    let base = opts.base.clone().unwrap_or_else(|| Rule::trivial(n_cols));
    let free_cols: Vec<usize> = (0..n_cols).filter(|&c| base.is_star(c)).collect();
    let max_size = opts
        .max_rule_size
        .unwrap_or(free_cols.len())
        .min(free_cols.len());
    if max_size == 0 || view.is_empty() {
        return None;
    }

    let mut stats = SearchStats::default();
    // All counted rules with their stats — the paper's set `C`.
    let mut counted: FxHashMap<Rule, CandStat> = FxHashMap::default();
    // Best marginal value seen so far — the paper's threshold `H`.
    let mut best_h = 0.0f64;

    // ---- Pass 1: dense per-column counting (every size-1 extension). ----
    stats.passes = 1;
    let mut level: Vec<Rule> = Vec::new();
    {
        // Dense count pass: per free column, one f64 slot per dictionary code.
        let mut counts: Vec<Vec<f64>> = free_cols
            .iter()
            .map(|&c| vec![0.0; table.cardinality(c)])
            .collect();
        for wr in view.iter() {
            for (fi, &c) in free_cols.iter().enumerate() {
                counts[fi][table.code(wr.row, c) as usize] += wr.weight;
            }
        }
        for (fi, &c) in free_cols.iter().enumerate() {
            for (code, &count) in counts[fi].iter().enumerate() {
                if count <= 0.0 {
                    continue;
                }
                stats.generated += 1;
                let rule = base.with_value(c, code as u32);
                let w = weight.weight(&rule, table);
                if w > opts.max_weight + 1e-12 {
                    stats.pruned += 1;
                    continue;
                }
                counted.insert(
                    rule.clone(),
                    CandStat {
                        count,
                        marginal: 0.0,
                        weight: w,
                    },
                );
                level.push(rule);
                stats.counted += 1;
            }
        }
        // Precise marginal pass (cov_t may exceed W(r), so marginals cannot
        // be recovered from the dense counts alone).
        for (i, wr) in view.iter().enumerate() {
            let cov = covered_weight[i];
            for &c in &free_cols {
                let code = table.code(wr.row, c);
                let rule = base.with_value(c, code);
                if let Some(stat) = counted.get_mut(&rule) {
                    stat.marginal += wr.weight * (stat.weight - stat.weight.min(cov));
                }
            }
        }
        for rule in &level {
            let stat = counted[rule];
            if stat.marginal > best_h {
                best_h = stat.marginal;
            }
        }
    }

    // ---- Passes 2..: a-priori extension of surviving candidates. ----
    // Frequent size-1 building blocks (free column, code) with their stats.
    let blocks: Vec<(usize, u32)> = level
        .iter()
        .map(|r| {
            let c = r
                .instantiated_columns()
                .find(|c| base.is_star(*c))
                .expect("level-1 rule instantiates one free column");
            (c, r.code(c))
        })
        .collect();

    let mut current = level;
    for _pass in 2..=max_size {
        // Survivor filter: keep rules whose super-rule bound can still beat H.
        let survivors: Vec<&Rule> = current
            .iter()
            .filter(|r| {
                let stat = counted[*r];
                stat.count > 0.0
                    && (!opts.pruning || stat.super_rule_bound(opts.max_weight) >= best_h)
            })
            .collect();
        if survivors.is_empty() {
            break;
        }

        // Generate: extend each survivor with a block on a later free column.
        let mut next: Vec<Rule> = Vec::new();
        let mut cand_weights: Vec<f64> = Vec::new();
        for r in survivors {
            let max_free = r
                .instantiated_columns()
                .filter(|c| base.is_star(*c))
                .last()
                .expect("survivor instantiates at least one free column");
            for &(c, v) in &blocks {
                if c <= max_free {
                    continue;
                }
                let cand = r.with_value(c, v);
                stats.generated += 1;

                // Support-based a-priori: all immediate free sub-rules must
                // have been counted; the bound over them must clear H.
                let mut bound = f64::INFINITY;
                let mut all_present = true;
                for sc in cand.instantiated_columns().filter(|c| base.is_star(*c)) {
                    let sub = cand.with_star(sc);
                    match counted.get(&sub) {
                        Some(stat) => bound = bound.min(stat.super_rule_bound(opts.max_weight)),
                        None => {
                            all_present = false;
                            break;
                        }
                    }
                }
                if !all_present {
                    stats.pruned += 1;
                    continue;
                }
                if opts.pruning && (bound < best_h || bound <= 0.0) {
                    stats.pruned += 1;
                    continue;
                }
                let w = weight.weight(&cand, table);
                if w > opts.max_weight + 1e-12 {
                    stats.pruned += 1;
                    continue;
                }
                next.push(cand);
                cand_weights.push(w);
            }
        }
        if next.is_empty() {
            break;
        }
        stats.passes += 1;
        stats.counted += next.len();

        // Count pass: index candidates by (first instantiated free column,
        // value) so each row only probes a handful of candidates.
        let mut index: FxHashMap<(u32, u32), Vec<usize>> = FxHashMap::default();
        for (ci, cand) in next.iter().enumerate() {
            let first = cand
                .instantiated_columns()
                .find(|c| base.is_star(*c))
                .expect("candidate instantiates free columns");
            index
                .entry((first as u32, cand.code(first)))
                .or_default()
                .push(ci);
        }
        let mut cstats: Vec<CandStat> = cand_weights
            .iter()
            .map(|&w| CandStat {
                count: 0.0,
                marginal: 0.0,
                weight: w,
            })
            .collect();
        let mut codes: Vec<u32> = Vec::with_capacity(n_cols);
        for (i, wr) in view.iter().enumerate() {
            table.row_codes(wr.row, &mut codes);
            let cov = covered_weight[i];
            for &c in &free_cols {
                if let Some(cands) = index.get(&(c as u32, codes[c])) {
                    for &ci in cands {
                        if next[ci].covers_codes(&codes) {
                            let s = &mut cstats[ci];
                            s.count += wr.weight;
                            s.marginal += wr.weight * (s.weight - s.weight.min(cov));
                        }
                    }
                }
            }
        }

        for (cand, stat) in next.iter().zip(&cstats) {
            if stat.marginal > best_h {
                best_h = stat.marginal;
            }
            counted.insert(cand.clone(), *stat);
        }
        current = next;
    }

    // Pick the winner: max marginal, ties broken toward higher weight then
    // lexicographically smaller codes (deterministic output).
    let mut best: Option<(&Rule, &CandStat)> = None;
    for (rule, stat) in &counted {
        if stat.marginal <= 0.0 {
            continue;
        }
        let better = match best {
            None => true,
            Some((brule, bstat)) => {
                (stat.marginal, stat.weight, std::cmp::Reverse(rule.codes()))
                    > (
                        bstat.marginal,
                        bstat.weight,
                        std::cmp::Reverse(brule.codes()),
                    )
            }
        };
        if better {
            best = Some((rule, stat));
        }
    }
    best.map(|(rule, stat)| BestMarginal {
        rule: rule.clone(),
        marginal_value: stat.marginal,
        count: stat.count,
        weight: stat.weight,
        stats,
    })
}

/// Exhaustive best-marginal search (no pruning, no level cap shortcuts) —
/// enumerates every rule with positive support. Exponential; test oracle.
pub fn brute_force_best_marginal(
    view: &TableView<'_>,
    weight: &dyn WeightFn,
    covered_weight: &[f64],
    max_weight: f64,
    base: Option<&Rule>,
) -> Option<(Rule, f64)> {
    let table = view.table();
    let n_cols = table.n_columns();
    let base = base.cloned().unwrap_or_else(|| Rule::trivial(n_cols));
    let free: Vec<usize> = (0..n_cols).filter(|&c| base.is_star(c)).collect();

    // Enumerate all rules as (subset of free columns, values from some row).
    let mut rules: rustc_hash::FxHashSet<Rule> = rustc_hash::FxHashSet::default();
    for wr in view.iter() {
        for mask in 1u32..(1 << free.len()) {
            let mut r = base.clone();
            for (bit, &c) in free.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    r = r.with_value(c, table.code(wr.row, c));
                }
            }
            rules.insert(r);
        }
    }
    let mut best: Option<(Rule, f64)> = None;
    for rule in rules {
        let w = weight.weight(&rule, table);
        if w > max_weight + 1e-12 {
            continue;
        }
        let mut marginal = 0.0;
        for (i, wr) in view.iter().enumerate() {
            if rule.covers_row(table, wr.row) {
                marginal += wr.weight * (w - w.min(covered_weight[i]));
            }
        }
        if marginal > 0.0 && best.as_ref().is_none_or(|(_, m)| marginal > *m + 1e-12) {
            best = Some((rule, marginal));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitsWeight, SizeWeight};
    use sdd_table::{Schema, Table};

    /// 4×(a,x), 3×(a,y), 2×(b,y), 1×(c,z).
    fn t() -> Table {
        let mut rows: Vec<[&str; 2]> = Vec::new();
        rows.extend(std::iter::repeat_n(["a", "x"], 4));
        rows.extend(std::iter::repeat_n(["a", "y"], 3));
        rows.extend(std::iter::repeat_n(["b", "y"], 2));
        rows.push(["c", "z"]);
        Table::from_rows(Schema::new(["A", "B"]).unwrap(), &rows).unwrap()
    }

    #[test]
    fn first_pick_maximizes_weight_times_count() {
        let table = t();
        let view = table.view();
        let cov = vec![0.0; view.len()];
        let best =
            find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(2.0)).unwrap();
        // Candidates: (a,?) 1×7=7, (a,x) 2×4=8, (a,y) 2×3=6, (?,y) 1×5=5 ...
        assert_eq!(best.rule.display(&table), "(a, x)");
        assert_eq!(best.marginal_value, 8.0);
        assert_eq!(best.count, 4.0);
        assert_eq!(best.weight, 2.0);
    }

    #[test]
    fn marginal_accounts_for_already_covered_tuples() {
        let table = t();
        let view = table.view();
        // Pretend (a,x) [weight 2] was already picked: its 4 tuples are covered.
        let mut cov = vec![0.0; view.len()];
        cov[..4].fill(2.0);
        let best =
            find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(2.0)).unwrap();
        // (a,y): 2×3=6 fresh. (a,?): covers 7 but 4 are at cov=2 ≥ 1 → 3.
        // (?,y): 5 tuples uncovered → 5. So (a,y) wins.
        assert_eq!(best.rule.display(&table), "(a, y)");
        assert_eq!(best.marginal_value, 6.0);
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n_rows = rng.gen_range(5..40);
            let rows: Vec<[String; 3]> = (0..n_rows)
                .map(|_| {
                    [
                        format!("a{}", rng.gen_range(0..3)),
                        format!("b{}", rng.gen_range(0..4)),
                        format!("c{}", rng.gen_range(0..2)),
                    ]
                })
                .collect();
            let table = Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &rows).unwrap();
            let view = table.view();
            let cov: Vec<f64> = (0..view.len()).map(|_| rng.gen_range(0.0..2.5)).collect();
            let mw = 3.0;
            let fast = find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(mw));
            let slow = brute_force_best_marginal(&view, &SizeWeight, &cov, mw, None);
            match (fast, slow) {
                (Some(f), Some(s)) => {
                    assert!(
                        (f.marginal_value - s.1).abs() < 1e-9,
                        "trial {trial}: fast {} ({:?}) vs brute {} ({:?})",
                        f.marginal_value,
                        f.rule,
                        s.1,
                        s.0
                    );
                }
                (None, None) => {}
                (f, s) => panic!("trial {trial}: disagreement: {f:?} vs {s:?}"),
            }
        }
    }

    #[test]
    fn pruning_does_not_change_the_answer() {
        let table = t();
        let view = table.view();
        let cov = vec![0.0; view.len()];
        let mut with = SearchOptions::new(2.0);
        with.pruning = true;
        let mut without = SearchOptions::new(2.0);
        without.pruning = false;
        let a = find_best_marginal_rule(&view, &SizeWeight, &cov, &with).unwrap();
        let b = find_best_marginal_rule(&view, &SizeWeight, &cov, &without).unwrap();
        assert_eq!(a.rule, b.rule);
        assert_eq!(a.marginal_value, b.marginal_value);
        assert!(a.stats.counted <= b.stats.counted);
    }

    #[test]
    fn small_mw_caps_the_returned_weight() {
        let table = t();
        let view = table.view();
        let cov = vec![0.0; view.len()];
        let best =
            find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(1.0)).unwrap();
        // With mw=1 only size-1 rules qualify: (a,?) has marginal 7.
        assert!(best.weight <= 1.0);
        assert_eq!(best.rule.display(&table), "(a, ?)");
        assert_eq!(best.marginal_value, 7.0);
    }

    #[test]
    fn base_constrains_to_strict_super_rules() {
        let table = t();
        let base = Rule::from_pairs(&table, &[("A", "a")]).unwrap();
        let view = table.view().filter(|r| base.covers_row(&table, r));
        let cov = vec![0.0; view.len()];
        let mut opts = SearchOptions::new(2.0);
        opts.base = Some(base.clone());
        let best = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts).unwrap();
        assert!(best.rule.is_strict_super_rule_of(&base));
        // Best extension: (a,x) with weight 2, marginal 8.
        assert_eq!(best.rule.display(&table), "(a, x)");
    }

    #[test]
    fn max_rule_size_caps_search_depth() {
        let table = t();
        let view = table.view();
        let cov = vec![0.0; view.len()];
        let mut opts = SearchOptions::new(2.0);
        opts.max_rule_size = Some(1);
        let best = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts).unwrap();
        assert_eq!(best.rule.size(), 1);
        assert_eq!(best.stats.passes, 1);
    }

    #[test]
    fn returns_none_when_everything_is_fully_covered() {
        let table = t();
        let view = table.view();
        // Every tuple already covered at the max possible weight.
        let cov = vec![2.0; view.len()];
        assert!(
            find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(2.0)).is_none()
        );
    }

    #[test]
    fn empty_view_returns_none() {
        let table = t();
        let view = table.view().filter(|_| false);
        assert!(
            find_best_marginal_rule(&view, &SizeWeight, &[], &SearchOptions::new(2.0)).is_none()
        );
    }

    #[test]
    fn bits_weight_changes_the_winner() {
        // B has 4 distinct values (2 bits), A has 3 (2 bits): with Bits, a
        // (a,x) pair is worth 4, same relative ordering as Size here, but a
        // column with 2 values is worth only 1 bit.
        let table = Table::from_rows(
            Schema::new(["Bin", "Wide"]).unwrap(),
            &[
                &["0", "v1"],
                &["0", "v2"],
                &["0", "v3"],
                &["0", "v4"],
                &["0", "v4"],
                &["1", "v5"],
            ],
        )
        .unwrap();
        let view = table.view();
        let cov = vec![0.0; view.len()];
        let best =
            find_best_marginal_rule(&view, &BitsWeight, &cov, &SearchOptions::new(10.0)).unwrap();
        // Size would love (0,?) count 5. Bits: (0,?) = 1×5 = 5;
        // (0,v4) = (1+3)×2 = 8 wins (|Wide| = 5 → 3 bits).
        assert_eq!(best.rule.display(&table), "(0, v4)");
    }

    #[test]
    fn weighted_tuples_scale_marginals() {
        let table = t();
        let rows: Vec<u32> = (0..table.n_rows() as u32).collect();
        let weights = vec![10.0; table.n_rows()];
        let view = sdd_table::TableView::with_rows_and_weights(&table, rows, weights);
        let cov = vec![0.0; view.len()];
        let best =
            find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(2.0)).unwrap();
        assert_eq!(best.marginal_value, 80.0);
        assert_eq!(best.count, 40.0);
    }

    #[test]
    fn stats_report_pruning_work() {
        let table = t();
        let view = table.view();
        let cov = vec![0.0; view.len()];
        let best =
            find_best_marginal_rule(&view, &SizeWeight, &cov, &SearchOptions::new(2.0)).unwrap();
        assert!(best.stats.generated >= best.stats.counted);
        assert!(best.stats.passes >= 1);
    }
}
