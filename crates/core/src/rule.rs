//! Rules: tuple patterns with `?` wildcards (paper §2.1).
//!
//! A rule assigns each column either a concrete dictionary code or the
//! wildcard `?` (stored as the sentinel [`STAR`]). Rules are the unit the
//! optimizer searches over and the unit displayed to the analyst.

use sdd_table::{RowId, Table, TableError};
use std::fmt;

/// Sentinel dictionary code representing the `?` wildcard.
///
/// Real dictionary codes are dense from `0`, so `u32::MAX` can never clash.
pub const STAR: u32 = u32::MAX;

/// A single rule cell: either the wildcard or a dictionary code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleValue {
    /// The `?` wildcard — matches every value in the column.
    Star,
    /// A concrete value, identified by its dictionary code.
    Value(u32),
}

/// A rule: one [`RuleValue`] per table column.
///
/// Stored as a boxed `u32` slice with the [`STAR`] sentinel — compact,
/// hashable, cheap to clone (one allocation), cache-friendly for the
/// candidate hash maps in the a-priori search.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    values: Box<[u32]>,
}

impl Rule {
    /// The trivial rule: `?` in every column. Covers every tuple.
    pub fn trivial(n_columns: usize) -> Self {
        Self {
            values: vec![STAR; n_columns].into_boxed_slice(),
        }
    }

    /// Builds a rule from explicit cells.
    pub fn from_values(values: impl IntoIterator<Item = RuleValue>) -> Self {
        Self {
            values: values
                .into_iter()
                .map(|v| match v {
                    RuleValue::Star => STAR,
                    RuleValue::Value(c) => c,
                })
                .collect(),
        }
    }

    /// Builds a rule from raw codes (with [`STAR`] for wildcards).
    pub fn from_codes(codes: impl Into<Box<[u32]>>) -> Self {
        Self {
            values: codes.into(),
        }
    }

    /// Builds a rule over `table` from `(column_name, value)` pairs, leaving
    /// every other column starred.
    ///
    /// ```
    /// # use sdd_table::{Schema, Table};
    /// # use sdd_core::Rule;
    /// let t = Table::from_rows(Schema::new(["Store", "Product"]).unwrap(),
    ///                          &[&["Walmart", "cookies"]]).unwrap();
    /// let r = Rule::from_pairs(&t, &[("Store", "Walmart")]).unwrap();
    /// assert_eq!(r.display(&t), "(Walmart, ?)");
    /// ```
    pub fn from_pairs(table: &Table, pairs: &[(&str, &str)]) -> Result<Self, TableError> {
        let mut rule = Rule::trivial(table.n_columns());
        for (col_name, value) in pairs {
            let col = table.schema().index_of(col_name)?;
            let code = table.dictionary(col).code_of(value).ok_or_else(|| {
                TableError::UnknownColumn(format!("value {value:?} not in column {col_name:?}"))
            })?;
            rule.values[col] = code;
        }
        Ok(rule)
    }

    /// Number of columns in the rule's schema.
    pub fn n_columns(&self) -> usize {
        self.values.len()
    }

    /// The cell in column `col`.
    #[inline]
    pub fn get(&self, col: usize) -> RuleValue {
        match self.values[col] {
            STAR => RuleValue::Star,
            c => RuleValue::Value(c),
        }
    }

    /// The raw code in column `col` ([`STAR`] for wildcards).
    #[inline]
    pub fn code(&self, col: usize) -> u32 {
        self.values[col]
    }

    /// Raw codes of every column.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.values
    }

    /// True if column `col` is starred.
    #[inline]
    pub fn is_star(&self, col: usize) -> bool {
        self.values[col] == STAR
    }

    /// The paper's *Size*: number of non-starred columns.
    pub fn size(&self) -> usize {
        self.values.iter().filter(|&&v| v != STAR).count()
    }

    /// True if every column is starred.
    pub fn is_trivial(&self) -> bool {
        self.values.iter().all(|&v| v == STAR)
    }

    /// Indices of the instantiated (non-star) columns, ascending.
    pub fn instantiated_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != STAR)
            .map(|(i, _)| i)
    }

    /// The largest instantiated column index, or `None` if trivial.
    pub fn max_instantiated_column(&self) -> Option<usize> {
        self.instantiated_columns().last()
    }

    /// A copy of this rule with column `col` set to `code`.
    pub fn with_value(&self, col: usize, code: u32) -> Rule {
        let mut v = self.values.clone();
        v[col] = code;
        Rule { values: v }
    }

    /// A copy of this rule with column `col` starred out.
    pub fn with_star(&self, col: usize) -> Rule {
        let mut v = self.values.clone();
        v[col] = STAR;
        Rule { values: v }
    }

    /// True if this rule covers the codes of one tuple (`t ∈ r`, §2.1).
    #[inline]
    pub fn covers_codes(&self, tuple: &[u32]) -> bool {
        debug_assert_eq!(tuple.len(), self.values.len());
        self.values
            .iter()
            .zip(tuple)
            .all(|(&rv, &tv)| rv == STAR || rv == tv)
    }

    /// True if this rule covers row `row` of `table`.
    #[inline]
    pub fn covers_row(&self, table: &Table, row: RowId) -> bool {
        self.values
            .iter()
            .enumerate()
            .all(|(c, &rv)| rv == STAR || rv == table.code(row, c))
    }

    /// True if `self` is a **sub-rule** of `other` (paper §2.1): `self` is at
    /// least as general — wherever `self` is instantiated, `other` carries the
    /// same value. Every rule is a sub-rule of itself.
    ///
    /// If `self` is a sub-rule of `other` then `t ∈ other ⇒ t ∈ self`.
    pub fn is_sub_rule_of(&self, other: &Rule) -> bool {
        debug_assert_eq!(self.n_columns(), other.n_columns());
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(&a, &b)| a == STAR || a == b)
    }

    /// True if `self` is a **super-rule** of `other` (at least as specific).
    pub fn is_super_rule_of(&self, other: &Rule) -> bool {
        other.is_sub_rule_of(self)
    }

    /// True if `self` is a super-rule of `other` and differs from it.
    pub fn is_strict_super_rule_of(&self, other: &Rule) -> bool {
        self != other && self.is_super_rule_of(other)
    }

    /// All immediate sub-rules (one instantiated column starred out).
    pub fn immediate_sub_rules(&self) -> impl Iterator<Item = Rule> + '_ {
        self.instantiated_columns().map(move |c| self.with_star(c))
    }

    /// All sub-rules, including `self` and the trivial rule (2^size of them).
    /// Intended for tests and the exact optimizer — exponential in size.
    pub fn all_sub_rules(&self) -> Vec<Rule> {
        let cols: Vec<usize> = self.instantiated_columns().collect();
        let mut out = Vec::with_capacity(1 << cols.len());
        for mask in 0u32..(1 << cols.len()) {
            let mut r = Rule::trivial(self.n_columns());
            for (bit, &c) in cols.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    r.values[c] = self.values[c];
                }
            }
            out.push(r);
        }
        out
    }

    /// Merges `self`'s instantiated values on top of `base`.
    ///
    /// Panics (debug) if both instantiate the same column with different
    /// values — drill-down construction never does.
    pub fn merged_onto(&self, base: &Rule) -> Rule {
        debug_assert_eq!(self.n_columns(), base.n_columns());
        let values: Box<[u32]> = self
            .values
            .iter()
            .zip(base.values.iter())
            .map(|(&a, &b)| {
                debug_assert!(a == STAR || b == STAR || a == b, "conflicting merge");
                if a == STAR {
                    b
                } else {
                    a
                }
            })
            .collect();
        Rule { values }
    }

    /// The rule built from row `row`'s values on the instantiated columns of
    /// a column set — helper for candidate generation.
    pub fn from_row_columns(table: &Table, row: RowId, cols: &[usize]) -> Rule {
        let mut r = Rule::trivial(table.n_columns());
        for &c in cols {
            r.values[c] = table.code(row, c);
        }
        r
    }

    /// Renders the rule in the paper's tuple notation, e.g. `"(Walmart, ?, CA-1)"`.
    pub fn display(&self, table: &Table) -> String {
        let mut out = String::from("(");
        for (c, &v) in self.values.iter().enumerate() {
            if c > 0 {
                out.push_str(", ");
            }
            if v == STAR {
                out.push('?');
            } else {
                out.push_str(table.dictionary(c).value_of(v).unwrap_or("<bad-code>"));
            }
        }
        out.push(')');
        out
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rule(")?;
        for (i, &v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if v == STAR {
                write!(f, "?")?;
            } else {
                write!(f, "{v}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_table::Schema;

    fn t() -> Table {
        Table::from_rows(
            Schema::new(["Store", "Product", "Region"]).unwrap(),
            &[
                &["Walmart", "cookies", "CA-1"],
                &["Target", "bicycles", "MA-3"],
                &["Walmart", "comforters", "MA-3"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn trivial_rule_covers_everything() {
        let table = t();
        let r = Rule::trivial(3);
        assert!(r.is_trivial());
        assert_eq!(r.size(), 0);
        for row in 0..3 {
            assert!(r.covers_row(&table, row));
        }
    }

    #[test]
    fn from_pairs_and_coverage() {
        let table = t();
        let r = Rule::from_pairs(&table, &[("Store", "Walmart")]).unwrap();
        assert!(r.covers_row(&table, 0));
        assert!(!r.covers_row(&table, 1));
        assert!(r.covers_row(&table, 2));
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn from_pairs_unknown_value_is_error() {
        let table = t();
        assert!(Rule::from_pairs(&table, &[("Store", "Costco")]).is_err());
        assert!(Rule::from_pairs(&table, &[("Price", "1")]).is_err());
    }

    #[test]
    fn sub_rule_matches_paper_example() {
        // (a, ?) is a sub-rule of (a, b).
        let a_star = Rule::from_values([RuleValue::Value(0), RuleValue::Star]);
        let a_b = Rule::from_values([RuleValue::Value(0), RuleValue::Value(1)]);
        assert!(a_star.is_sub_rule_of(&a_b));
        assert!(!a_b.is_sub_rule_of(&a_star));
        assert!(a_b.is_super_rule_of(&a_star));
        assert!(a_b.is_strict_super_rule_of(&a_star));
        assert!(a_b.is_super_rule_of(&a_b));
        assert!(!a_b.is_strict_super_rule_of(&a_b));
    }

    #[test]
    fn sub_rule_implies_coverage_superset() {
        let table = t();
        let general = Rule::from_pairs(&table, &[("Region", "MA-3")]).unwrap();
        let specific =
            Rule::from_pairs(&table, &[("Region", "MA-3"), ("Store", "Target")]).unwrap();
        assert!(general.is_sub_rule_of(&specific));
        for row in 0..3 {
            if specific.covers_row(&table, row) {
                assert!(general.covers_row(&table, row));
            }
        }
    }

    #[test]
    fn mismatched_values_are_not_subsumed() {
        let r1 = Rule::from_values([RuleValue::Value(0), RuleValue::Star]);
        let r2 = Rule::from_values([RuleValue::Value(1), RuleValue::Star]);
        assert!(!r1.is_sub_rule_of(&r2));
        assert!(!r2.is_sub_rule_of(&r1));
    }

    #[test]
    fn with_value_and_with_star_roundtrip() {
        let r = Rule::trivial(3).with_value(1, 7);
        assert_eq!(r.get(1), RuleValue::Value(7));
        assert_eq!(r.size(), 1);
        let back = r.with_star(1);
        assert!(back.is_trivial());
    }

    #[test]
    fn immediate_sub_rules_drop_one_column() {
        let r = Rule::trivial(3).with_value(0, 1).with_value(2, 5);
        let subs: Vec<Rule> = r.immediate_sub_rules().collect();
        assert_eq!(subs.len(), 2);
        assert!(subs.iter().all(|s| s.size() == 1 && s.is_sub_rule_of(&r)));
    }

    #[test]
    fn all_sub_rules_enumerates_lattice() {
        let r = Rule::trivial(3).with_value(0, 1).with_value(2, 5);
        let subs = r.all_sub_rules();
        assert_eq!(subs.len(), 4);
        assert!(subs.iter().any(|s| s.is_trivial()));
        assert!(subs.contains(&r));
        assert!(subs.iter().all(|s| s.is_sub_rule_of(&r)));
    }

    #[test]
    fn merged_onto_combines_base_and_extension() {
        let base = Rule::trivial(3).with_value(0, 2);
        let ext = Rule::trivial(3).with_value(2, 9);
        let merged = ext.merged_onto(&base);
        assert_eq!(merged.code(0), 2);
        assert_eq!(merged.code(2), 9);
        assert!(merged.is_star(1));
        assert!(merged.is_super_rule_of(&base));
    }

    #[test]
    fn display_uses_paper_notation() {
        let table = t();
        let r = Rule::from_pairs(&table, &[("Store", "Walmart"), ("Region", "CA-1")]).unwrap();
        assert_eq!(r.display(&table), "(Walmart, ?, CA-1)");
        assert_eq!(Rule::trivial(3).display(&table), "(?, ?, ?)");
    }

    #[test]
    fn from_row_columns_picks_row_values() {
        let table = t();
        let r = Rule::from_row_columns(&table, 1, &[0, 1]);
        assert_eq!(r.display(&table), "(Target, bicycles, ?)");
        assert!(r.covers_row(&table, 1));
        assert!(!r.covers_row(&table, 0));
    }

    #[test]
    fn rules_hash_and_compare_by_content() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Rule::trivial(2).with_value(0, 3));
        assert!(set.contains(&Rule::trivial(2).with_value(0, 3)));
        assert!(!set.contains(&Rule::trivial(2).with_value(0, 4)));
    }

    #[test]
    fn max_instantiated_column() {
        let r = Rule::trivial(4).with_value(1, 0).with_value(3, 0);
        assert_eq!(r.max_instantiated_column(), Some(3));
        assert_eq!(Rule::trivial(4).max_instantiated_column(), None);
    }
}
