//! Deterministic parallel execution utilities shared by the counting
//! kernel, the coverage scans, and the sampling layer's prefetch scan.
//!
//! Everything here is built on `std::thread::scope` (the build environment
//! has no registry access, so no `rayon`), gated behind the `parallel`
//! cargo feature: without it every function degrades to a sequential loop
//! with **bit-identical results** — determinism is the contract of this
//! module, not an accident:
//!
//! * [`parallel_map`] returns outputs **in job order** no matter which
//!   worker ran which job, so consumers can merge partials positionally;
//! * [`reduce_pairwise`] folds per-chunk partials with a fixed
//!   adjacent-pairs tree over the *input order* (chunk order), so
//!   float reductions associate the same way on every thread count —
//!   the "float-merge story" behind the row-sliced kernel mode (see
//!   [`crate::kernel`]);
//! * [`worker_threads`] is the one place thread counts come from
//!   (`SDD_THREADS` overrides detection, which is also how tests pin the
//!   schedule on single-core machines).

use std::sync::Mutex;

/// Number of worker threads to use: the `SDD_THREADS` environment variable
/// when set, else [`std::thread::available_parallelism`]. Always ≥ 1; `1`
/// whenever the `parallel` feature is compiled out.
pub fn worker_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    if let Some(n) = std::env::var("SDD_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `work` over every job on up to `threads` scoped workers, returning
/// outputs **in job order**. Jobs must be independent (disjoint
/// accumulators); because each output slot is produced by exactly one job,
/// scheduling cannot affect the result, only the wall clock.
pub fn parallel_map<J, T, F>(threads: usize, jobs: Vec<J>, work: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(J) -> T + Sync,
{
    if !cfg!(feature = "parallel") || threads <= 1 || jobs.len() < 2 {
        return jobs.into_iter().map(work).collect();
    }
    let n_workers = threads.min(jobs.len());
    let queue: Mutex<Vec<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        let job = queue.lock().expect("exec queue poisoned").pop();
                        match job {
                            Some((i, j)) => out.push((i, work(j))),
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("exec worker panicked"))
            .collect()
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// A small fixed-size worker-thread pool for **long-lived, independent**
/// jobs — server connections, background prefetch ticks — as opposed to
/// [`parallel_map`]'s fork-join batches.
///
/// Jobs are boxed closures pulled from a shared queue; workers run until the
/// pool is dropped (drop joins them after the queue drains). The pool makes
/// **no determinism promises**: anything executed on it must synchronize its
/// own state (the drill-down server serializes per-session work behind a
/// per-session lock, which is where its determinism comes from).
///
/// Unlike the rest of this module the pool is *not* gated on the `parallel`
/// feature: serving concurrent connections needs real threads regardless of
/// whether the counting kernels run sliced.
pub struct TaskPool {
    sender: Option<std::sync::mpsc::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Jobs submitted but not yet claimed by a worker — the queue depth an
    /// admission controller sheds on.
    pending: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

impl TaskPool {
    /// Spawns a pool of `threads.max(1)` workers.
    pub fn new(threads: usize) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (sender, receiver) = std::sync::mpsc::channel::<Job>();
        let receiver = std::sync::Arc::new(Mutex::new(receiver));
        let pending = std::sync::Arc::new(AtomicUsize::new(0));
        let workers = (0..threads.max(1))
            .map(|_| {
                let receiver = std::sync::Arc::clone(&receiver);
                let pending = std::sync::Arc::clone(&pending);
                std::thread::spawn(move || loop {
                    // Hold the lock only while popping, never while running.
                    let job = match receiver.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return,
                    };
                    match job {
                        // A panicking job must not kill the worker: each
                        // panic would permanently shrink the pool, and once
                        // the last worker died `submit` would panic too.
                        Ok(job) => {
                            pending.fetch_sub(1, Ordering::Relaxed);
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        Err(_) => return, // all senders dropped → shut down
                    }
                })
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            pending,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs waiting in the queue, not yet claimed by a worker. A snapshot:
    /// exact enough for load shedding and metrics, not linearizable.
    pub fn pending(&self) -> usize {
        self.pending.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A shared handle to the pending-jobs gauge, for observers (metrics
    /// endpoints) that must outlive a borrow of the pool. Read-only by
    /// convention.
    pub fn pending_gauge(&self) -> std::sync::Arc<std::sync::atomic::AtomicUsize> {
        std::sync::Arc::clone(&self.pending)
    }

    /// Enqueues a job; some idle worker will run it.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.pending
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.sender
            .as_ref()
            .expect("pool alive while not dropped")
            .send(Box::new(job))
            .expect("workers alive while pool alive");
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the queue
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Reduces `parts` with a fixed adjacent-pairs tree: `[p0⊕p1, p2⊕p3, …]`,
/// repeated until one value remains. The association depends only on the
/// *order and number* of `parts` (chunk order for the kernel's row-sliced
/// partials), never on thread count or scheduling — so float merges are
/// deterministic, and the O(log n) error growth beats a left fold's O(n).
///
/// Panics on an empty input.
pub fn reduce_pairwise<T>(mut parts: Vec<T>, mut merge: impl FnMut(&mut T, T)) -> T {
    assert!(!parts.is_empty(), "reduce_pairwise on empty input");
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                merge(&mut a, b);
            }
            next.push(a);
        }
        parts = next;
    }
    parts.pop().expect("non-empty by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_job_order() {
        for threads in [1, 2, 4] {
            let out = parallel_map(threads, (0..17).collect::<Vec<_>>(), |j| j * 10);
            assert_eq!(out, (0..17).map(|j| j * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn reduce_pairwise_merges_in_fixed_tree_order() {
        // Strings expose the association: ((ab)(cd))e.
        let parts: Vec<String> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|s| format!("({s})"))
            .collect();
        let merged = reduce_pairwise(parts, |a, b| *a = format!("({a}{b})"));
        assert_eq!(merged, "((((a)(b))((c)(d)))(e))");
    }

    #[test]
    fn reduce_pairwise_single_part_is_identity() {
        assert_eq!(reduce_pairwise(vec![42.0f64], |a, b| *a += b), 42.0);
    }

    #[test]
    fn worker_threads_is_positive() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn task_pool_runs_all_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = TaskPool::new(3);
        assert_eq!(pool.threads(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers after the queue drains
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn task_pool_survives_panicking_jobs() {
        let pool = TaskPool::new(1); // one worker: a lost thread would hang
        for _ in 0..3 {
            pool.submit(|| panic!("job blew up"));
        }
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit(move || tx.send(1u8).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)),
            Ok(1),
            "worker must outlive panicking jobs"
        );
    }

    #[test]
    fn task_pool_clamps_to_one_worker() {
        let pool = TaskPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit(move || tx.send(7usize).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
