//! The Maximum Coverage → Problem 3 reduction (paper Lemma 2), executable.
//!
//! Lemma 2 proves Problem 3 NP-hard by encoding a Maximum Coverage Problem
//! (MCP) instance as a table + weight function: the table has one row per
//! universe element and one 0/1 column per subset; `W(r) = 1` if `r`
//! instantiates at least one column with value `1`, else `0`. A rule list
//! then scores exactly the size of the union of the chosen subsets.
//!
//! This module materializes the reduction so tests can verify optima map to
//! optima — turning the paper's hardness argument into executable evidence.

use crate::{Rule, WeightFn};
use sdd_table::{Schema, Table};

/// A Maximum Coverage Problem instance: pick `k` of the given subsets of
/// `{0, .., universe-1}` maximizing the size of their union.
#[derive(Debug, Clone)]
pub struct McpInstance {
    /// Universe size `|U|`.
    pub universe: usize,
    /// The subsets `S_1..S_m` (element indices, each `< universe`).
    pub sets: Vec<Vec<usize>>,
    /// How many subsets may be chosen.
    pub k: usize,
}

impl McpInstance {
    /// Builds the Lemma-2 table: `universe` rows × `sets.len()` columns,
    /// cell = `"1"` if the row's element belongs to the column's subset.
    pub fn to_table(&self) -> Table {
        let names: Vec<String> = (0..self.sets.len()).map(|j| format!("S{j}")).collect();
        let schema = Schema::new(names).expect("generated names are unique");
        let mut b = Table::builder(schema);
        for elem in 0..self.universe {
            let row: Vec<&str> = self
                .sets
                .iter()
                .map(|s| if s.contains(&elem) { "1" } else { "0" })
                .collect();
            b.push_row(&row).expect("arity matches");
        }
        b.build().expect("no measures")
    }

    /// Exact MCP solver (brute force over all `C(m, k)` choices).
    pub fn exact_coverage(&self) -> usize {
        let m = self.sets.len();
        let mut best = 0usize;
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new())];
        while let Some((start, chosen)) = stack.pop() {
            if chosen.len() == self.k.min(m) {
                best = best.max(self.union_size(&chosen));
                continue;
            }
            for j in start..m {
                let mut next = chosen.clone();
                next.push(j);
                stack.push((j + 1, next));
            }
            // Also allow fewer than k sets when m < k handled by min above.
            if chosen.len() < self.k.min(m) && start == m {
                best = best.max(self.union_size(&chosen));
            }
        }
        best
    }

    /// Greedy MCP: repeatedly add the subset covering the most new elements.
    /// Classic `1 − 1/e` approximation — mirrors what BRS does on the
    /// reduced table.
    pub fn greedy_coverage(&self) -> usize {
        let mut covered = vec![false; self.universe];
        let mut used = vec![false; self.sets.len()];
        for _ in 0..self.k.min(self.sets.len()) {
            let mut best: Option<(usize, usize)> = None; // (gain, index)
            for (j, s) in self.sets.iter().enumerate() {
                if used[j] {
                    continue;
                }
                let gain = s.iter().filter(|&&e| !covered[e]).count();
                if best.is_none_or(|(g, _)| gain > g) {
                    best = Some((gain, j));
                }
            }
            match best {
                Some((gain, j)) if gain > 0 => {
                    used[j] = true;
                    for &e in &self.sets[j] {
                        covered[e] = true;
                    }
                }
                _ => break,
            }
        }
        covered.iter().filter(|&&c| c).count()
    }

    fn union_size(&self, chosen: &[usize]) -> usize {
        let mut covered = vec![false; self.universe];
        for &j in chosen {
            for &e in &self.sets[j] {
                covered[e] = true;
            }
        }
        covered.iter().filter(|&&c| c).count()
    }
}

/// Lemma 2's weight function: `W(r) = 1` if some instantiated column of `r`
/// carries the value `"1"`, else `0`.
///
/// Value-dependent (unlike the shipped pattern-only weights) but still
/// monotone and non-negative, demonstrating the optimizer handles the full
/// generality the hardness proof requires. `max_weight` is overridden
/// because the default probes a pattern with arbitrary values.
#[derive(Debug, Clone, Copy, Default)]
pub struct McpWeight;

impl WeightFn for McpWeight {
    fn weight(&self, rule: &Rule, table: &Table) -> f64 {
        let any_one = rule
            .instantiated_columns()
            .any(|c| table.dictionary(c).value_of(rule.code(c)) == Some("1"));
        if any_one {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &str {
        "McpWeight"
    }

    fn max_weight(&self, _table: &Table) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_best_rule_set;
    use crate::{score_set, Brs};

    fn inst() -> McpInstance {
        McpInstance {
            universe: 8,
            sets: vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![5, 6, 7],
                vec![0, 7],
            ],
            k: 2,
        }
    }

    #[test]
    fn table_encodes_membership() {
        let i = inst();
        let t = i.to_table();
        assert_eq!(t.n_rows(), 8);
        assert_eq!(t.n_columns(), 5);
        assert_eq!(t.value(2, 0), "1"); // elem 2 ∈ S0
        assert_eq!(t.value(2, 4), "0"); // elem 2 ∉ S4
    }

    #[test]
    fn exact_mcp_matches_known_answer() {
        let i = inst();
        // Best pair: S0 ∪ S3 = {0,1,2,5,6,7} (6) vs S0 ∪ S2 = 6 too.
        assert_eq!(i.exact_coverage(), 6);
    }

    #[test]
    fn greedy_mcp_is_within_the_guarantee() {
        let i = inst();
        let g = i.greedy_coverage() as f64;
        let e = i.exact_coverage() as f64;
        assert!(g >= (1.0 - 1.0 / std::f64::consts::E) * e);
    }

    #[test]
    fn exact_table_score_equals_exact_mcp_coverage() {
        // The heart of Lemma 2: optimum of the reduced Problem 3 instance ==
        // optimum of the MCP instance.
        let i = inst();
        let t = i.to_table();
        let view = t.view();
        let (_, best_score) = exact_best_rule_set(&view, &McpWeight, i.k, 1);
        assert_eq!(best_score as usize, i.exact_coverage());
    }

    #[test]
    fn brs_on_reduced_table_matches_greedy_mcp() {
        let i = inst();
        let t = i.to_table();
        let view = t.view();
        let res = Brs::new(&McpWeight).with_max_weight(1.0).run(&view, i.k);
        let brs_cov = score_set(&view, &McpWeight, &res.rules_only()).total as usize;
        // Both are greedy maximizers of the same submodular function; exact
        // tie-breaking may differ, so compare achieved coverage.
        assert_eq!(brs_cov, i.greedy_coverage());
    }

    #[test]
    fn mcp_weight_is_monotone() {
        let i = inst();
        let t = i.to_table();
        // Rules with a 1 keep weight 1 when extended; rules of all 0s have 0.
        let r0 = Rule::from_pairs(&t, &[("S0", "0")]).unwrap();
        assert_eq!(McpWeight.weight(&r0, &t), 0.0);
        let r01 = Rule::from_pairs(&t, &[("S0", "0"), ("S1", "1")]).unwrap();
        assert_eq!(McpWeight.weight(&r01, &t), 1.0);
        assert!(crate::weight::check_monotone_on(&McpWeight, &r01, &t));
    }

    #[test]
    fn empty_sets_are_legal() {
        let i = McpInstance {
            universe: 3,
            sets: vec![vec![], vec![0, 1, 2]],
            k: 1,
        };
        assert_eq!(i.exact_coverage(), 3);
        assert_eq!(i.greedy_coverage(), 3);
    }
}
