//! # sdd-core
//!
//! The smart drill-down operator — the primary contribution of *“Interactive
//! Data Exploration with Smart Drill-Down”* (Joglekar, Garcia-Molina,
//! Parameswaran — ICDE 2016) — implemented from scratch.
//!
//! ## The problem (paper §2)
//!
//! Given a table `T`, a monotone non-negative weighting function `W`, and a
//! budget `k`, find the list `R` of `k` rules maximizing
//!
//! ```text
//! Score(R) = Σ_{r ∈ R} W(r) · MCount(r, R)
//! ```
//!
//! where a *rule* fixes some columns to values and wildcards (`?`) the rest,
//! and `MCount(r, R)` counts tuples covered by `r` but by no earlier rule.
//! The problem is NP-hard (Lemma 2 — see [`reduction`] for the executable
//! reduction); `Score` is submodular (Lemma 3), so a greedy algorithm gives
//! a `1 − 1/e` approximation.
//!
//! ## Modules
//!
//! * [`rule`] — the [`Rule`] pattern type and the sub-/super-rule lattice,
//! * [`weight`] — the [`WeightFn`] trait and the paper's weighting functions,
//! * [`score`] — `Count`/`MCount`/`Score` over rule lists and sets,
//! * [`marginal`] — Algorithm 2: the a-priori-style best-marginal-rule search,
//! * [`kernel`] — the columnar (optionally multi-threaded, optionally
//!   row-sliced) counting kernel behind Algorithm 2, plus chunked columnar
//!   rule-coverage scans,
//! * [`exec`] — deterministic parallel-map / pairwise-merge utilities shared
//!   by the kernel and the sampling layer's prefetch scan,
//! * [`accel`] — runtime-dispatched SIMD equality-scan kernels (AVX2 with a
//!   scalar fallback and a kill switch) behind the coverage scans of both
//!   the resident kernel and the spill-tier pushdown path,
//! * [`brs`] — Algorithm 1: the greedy BRS optimizer,
//! * [`cachekey`] — canonical NaN-safe key derivation for shared
//!   drill-down result caches (floats keyed by bits, normalized bases,
//!   content-digested views),
//! * [`drilldown`] — rule and star drill-down (Problem 1 → 2/3 reductions),
//! * [`shard`] — bit-compatible twins of the hot paths over sharded
//!   (`sdd_table::ShardedTable`) storage: per-shard counting passes,
//!   coverage scans, scoring, and drill-downs for larger-than-memory
//!   tables,
//! * [`session`] — the interactive exploration tree with paper-style rendering,
//! * [`exact`] — brute-force oracle for tests and ablations,
//! * [`mw_estimate`] — sampling-based estimation of the `mw` parameter (§6.1),
//! * [`reduction`] — Lemma 2's MCP reduction, executable.

#![warn(missing_docs)]

pub mod accel;
pub mod brs;
pub mod cachekey;
pub mod drilldown;
pub mod exact;
pub mod exec;
pub mod kernel;
pub mod marginal;
pub mod mw_estimate;
pub mod reduction;
pub mod rule;
pub mod score;
pub mod session;
pub mod shard;
pub mod weight;

pub use brs::{Brs, BrsResult, ScoredRule};
pub use cachekey::{canonical_f64_bits, drill_key, view_digest, DrillKey, KeyHasher};
pub use drilldown::{
    drill_down, drill_down_with, filter_to_rule, star_drill_down, star_drill_down_with,
    DrillDownKind,
};
pub use exact::{enumerate_support_rules, exact_best_rule_set, greedy_guarantee};
pub use kernel::{
    covered_positions, covered_positions_with_threads, covered_rows, covered_rows_with_threads,
    for_each_covered_position, SearchScratch,
};
pub use marginal::{
    find_best_marginal_rule, find_best_marginal_rule_rowwise, find_best_marginal_rule_with_scratch,
    BestMarginal, RowSlice, SearchOptions, SearchStats,
};
pub use mw_estimate::estimate_mw;
pub use reduction::{McpInstance, McpWeight};
pub use rule::{Rule, RuleValue, STAR};
pub use score::{
    count_rules, rule_count, score_list, score_set, sort_by_weight_desc, top_assignment, ListScore,
    RuleScore,
};
pub use session::{Node, Session, SessionError};
pub use shard::{
    count_rules_sharded, covered_positions_sharded, covered_rows_sharded, drill_down_sharded,
    filter_to_rule_sharded, find_best_marginal_rule_sharded, rule_count_sharded,
    score_list_sharded, sort_by_weight_desc_sharded, star_drill_down_sharded,
    try_count_rules_sharded, try_covered_positions_sharded, try_covered_rows_sharded,
    try_covered_rows_sharded_range, try_filter_to_rule_sharded,
    try_find_best_marginal_rule_sharded, try_rule_count_sharded, try_score_list_sharded,
};
pub use weight::{
    check_monotone_on, BitsWeight, ColumnWeight, RequireColumn, SizeMinusOne, SizeWeight,
    TraditionalEmulation, WeightFn,
};
