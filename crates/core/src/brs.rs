//! The BRS (Best Rule Set) greedy optimizer (paper §3.4, Algorithm 1).
//!
//! `Score` is a monotone, non-negative, submodular set function (Lemma 3),
//! so greedily adding the best marginal rule `k` times yields a
//! `1 − ((k−1)/k)^k ≥ 1 − 1/e` approximation of the optimal rule set
//! (Problem 3). Each greedy step delegates to
//! [`crate::marginal::find_best_marginal_rule`] (Algorithm 2).

use crate::kernel::{covered_positions_with_threads, SearchScratch};
use crate::marginal::{find_best_marginal_rule_with_scratch, SearchOptions, SearchStats};
use crate::{score_list, sort_by_weight_desc, Rule, WeightFn};
use sdd_table::TableView;

/// One displayed rule with its aggregates, as in the paper's result tables.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredRule {
    /// The rule.
    pub rule: Rule,
    /// `W(rule)` — the paper's *Weight* column.
    pub weight: f64,
    /// Weighted `Count` (or `Sum`) of all tuples covered by the rule — what
    /// the paper displays to the analyst.
    pub count: f64,
    /// Marginal count within the displayed list (used for scoring).
    pub mcount: f64,
}

/// The outcome of one smart drill-down optimization.
#[derive(Debug, Clone)]
pub struct BrsResult {
    /// Rules in display order — descending weight, per Lemma 1.
    pub rules: Vec<ScoredRule>,
    /// Rules in the order the greedy algorithm selected them.
    pub selection_order: Vec<Rule>,
    /// `Score` of the displayed list.
    pub total_score: f64,
    /// Accumulated search work counters across all `k` greedy steps.
    pub stats: SearchStats,
}

impl BrsResult {
    /// The rules only, in display order.
    pub fn rules_only(&self) -> Vec<Rule> {
        self.rules.iter().map(|s| s.rule.clone()).collect()
    }
}

/// Builder-style configuration for the BRS optimizer.
///
/// ```
/// # use sdd_table::{Schema, Table};
/// # use sdd_core::{Brs, SizeWeight};
/// let table = Table::from_rows(
///     Schema::new(["A", "B"]).unwrap(),
///     &[&["a", "x"], &["a", "x"], &["a", "y"], &["b", "y"]],
/// ).unwrap();
/// let result = Brs::new(&SizeWeight).with_max_weight(2.0).run(&table.view(), 2);
/// assert!(!result.rules.is_empty());
/// ```
#[derive(Clone)]
pub struct Brs<'w> {
    weight: &'w dyn WeightFn,
    max_weight: Option<f64>,
    pruning: bool,
    max_rule_size: Option<usize>,
    parallel: Option<bool>,
}

impl<'w> Brs<'w> {
    /// A BRS optimizer using `weight`. `mw` defaults to the weight
    /// function's maximum possible weight (exact but slowest — see
    /// [`Brs::with_max_weight`] and paper §5.2.1).
    pub fn new(weight: &'w dyn WeightFn) -> Self {
        Self {
            weight,
            max_weight: None,
            pruning: true,
            max_rule_size: None,
            parallel: None,
        }
    }

    /// Sets the paper's `mw` parameter: assume no optimal rule weighs more
    /// than this. Smaller values prune harder and run faster; if the true
    /// optimum contains a heavier rule the result may be suboptimal (the
    /// paper bounds the loss in §3.5, "Approximation ratio").
    pub fn with_max_weight(mut self, mw: f64) -> Self {
        self.max_weight = Some(mw);
        self
    }

    /// Enables/disables the upper-bound pruning of Algorithm 2 (ablation A1).
    pub fn with_pruning(mut self, pruning: bool) -> Self {
        self.pruning = pruning;
        self
    }

    /// Caps the size (number of instantiated columns beyond the drill-down
    /// base) of candidate rules.
    pub fn with_max_rule_size(mut self, max_size: usize) -> Self {
        self.max_rule_size = Some(max_size);
        self
    }

    /// Forces the counting kernel's multi-threading on or off (the default
    /// follows [`SearchOptions::new`]: on for large views when the
    /// `parallel` feature is compiled in). Used by benchmarks to ablate the
    /// parallel speedup.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// The configured weight function.
    pub fn weight_fn(&self) -> &'w dyn WeightFn {
        self.weight
    }

    /// Copies `other`'s tuning (mw, pruning, size cap) onto `self`, keeping
    /// `self`'s weight function. Used by star drill-down, which swaps the
    /// weight for the paper's `W'` but keeps the optimizer settings.
    pub(crate) fn inherit_config(mut self, other: &Brs<'_>) -> Self {
        self.max_weight = other.max_weight;
        self.pruning = other.pruning;
        self.max_rule_size = other.max_rule_size;
        self.parallel = other.parallel;
        self
    }

    /// Expands the trivial rule: finds the best `k`-rule summary of `view`.
    pub fn run(&self, view: &TableView<'_>, k: usize) -> BrsResult {
        self.run_with_base(view, None, k)
    }

    /// Incremental BRS (paper §6.1): "instead of running the algorithm with
    /// a fixed value of k, it can start with an empty rule-list and keep
    /// adding rules to it, displaying new rules as they are found."
    ///
    /// `on_rule` is invoked after every greedy pick with the rule and its
    /// marginal gain; return `false` to stop (e.g. when the analyst issues
    /// a new command). `max_k` bounds the loop.
    ///
    /// The paper's time-limit variant ("alternatively, we can set a time
    /// limit ... and display as many rules as we can find within that time
    /// limit") is a caller-side callback — `|_, _| start.elapsed() < budget`
    /// — see `examples/interactive_explorer.rs`. Core itself never reads
    /// the wall clock: results must be a pure function of the input (lint
    /// rule D002), and at least one rule is always searched because the
    /// callback runs *after* each pick.
    pub fn run_streaming(
        &self,
        view: &TableView<'_>,
        max_k: usize,
        mut on_rule: impl FnMut(&Rule, f64) -> bool,
    ) -> BrsResult {
        self.run_inner(view, None, max_k, &mut on_rule)
    }

    /// Runs the greedy loop with an optional drill-down base rule. The view
    /// must already be filtered to base-covered tuples (the drill-down
    /// helpers in [`crate::drilldown`] do this).
    pub(crate) fn run_with_base(
        &self,
        view: &TableView<'_>,
        base: Option<Rule>,
        k: usize,
    ) -> BrsResult {
        self.run_inner(view, base, k, &mut |_, _| true)
    }

    /// Expands the trivial rule over a **sharded** view — the sharded twin
    /// of [`Brs::run`], executing the per-shard counting kernel
    /// ([`crate::shard`]). Bit-identical to running [`Brs::run`] on the
    /// equivalent monolithic view, for any shard count and resident budget.
    pub fn run_sharded(&self, view: &sdd_table::ShardedView, k: usize) -> BrsResult {
        self.run_sharded_with_base(view, None, k)
    }

    /// The sharded greedy loop with an optional drill-down base (the view
    /// must already be filtered to base-covered tuples — see
    /// [`crate::shard::drill_down_sharded`]).
    pub(crate) fn run_sharded_with_base(
        &self,
        view: &sdd_table::ShardedView,
        base: Option<Rule>,
        k: usize,
    ) -> BrsResult {
        let header = view.table().header();
        let mw = self
            .max_weight
            .unwrap_or_else(|| self.weight.max_weight(header));
        let mut opts = SearchOptions::new(mw);
        opts.pruning = self.pruning;
        opts.max_rule_size = self.max_rule_size;
        opts.base = base;
        if let Some(parallel) = self.parallel {
            opts.parallel = parallel;
        }

        let mut covered = vec![0.0f64; view.len()];
        let mut selection: Vec<Rule> = Vec::with_capacity(k);
        let mut stats = SearchStats::default();
        let mut scratch = SearchScratch::new();
        for _ in 0..k {
            let Some(best) = crate::shard::find_best_marginal_rule_sharded(
                view,
                &self.weight,
                &covered,
                &opts,
                &mut scratch,
            ) else {
                break;
            };
            stats.absorb(&best.stats);
            for p in crate::shard::covered_positions_sharded(view, &best.rule) {
                let slot = &mut covered[p as usize];
                if best.weight > *slot {
                    *slot = best.weight;
                }
            }
            selection.push(best.rule);
        }
        crate::shard::finish_sharded_brs(view, &self.weight, selection, stats)
    }

    fn run_inner(
        &self,
        view: &TableView<'_>,
        base: Option<Rule>,
        k: usize,
        on_rule: &mut dyn FnMut(&Rule, f64) -> bool,
    ) -> BrsResult {
        let table = view.table();
        let mw = self
            .max_weight
            .unwrap_or_else(|| self.weight.max_weight(table));
        let mut opts = SearchOptions::new(mw);
        opts.pruning = self.pruning;
        opts.max_rule_size = self.max_rule_size;
        opts.base = base;
        if let Some(parallel) = self.parallel {
            opts.parallel = parallel;
        }

        let mut covered = vec![0.0f64; view.len()];
        let mut selection: Vec<Rule> = Vec::with_capacity(k);
        let mut stats = SearchStats::default();
        // One scratch for all k searches: steady-state iterations reuse the
        // kernel's histogram/candidate buffers.
        let mut scratch = SearchScratch::new();

        for _ in 0..k {
            let Some(best) = find_best_marginal_rule_with_scratch(
                view,
                &self.weight,
                &covered,
                &opts,
                &mut scratch,
            ) else {
                break;
            };
            stats.absorb(&best.stats);
            // Update per-tuple best covering weight. The position list comes
            // from the chunked columnar scan (row-sliced on large views when
            // `opts.parallel` allows, byte-identical on any thread count);
            // the max-update itself is cheap and order-insensitive, so it
            // stays serial.
            let scan_threads = if opts.parallel {
                crate::exec::worker_threads()
            } else {
                1
            };
            for p in covered_positions_with_threads(view, &best.rule, scan_threads) {
                let slot = &mut covered[p as usize];
                if best.weight > *slot {
                    *slot = best.weight;
                }
            }
            let keep_going = on_rule(&best.rule, best.marginal_value);
            selection.push(best.rule);
            if !keep_going {
                break;
            }
        }

        let display = sort_by_weight_desc(view, &self.weight, &selection);
        let scored = score_list(view, &self.weight, &display);
        BrsResult {
            rules: scored
                .rules
                .into_iter()
                .map(|rs| ScoredRule {
                    rule: rs.rule,
                    weight: rs.weight,
                    count: rs.count,
                    mcount: rs.mcount,
                })
                .collect(),
            selection_order: selection,
            total_score: scored.total,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{score_set, SizeWeight};
    use sdd_table::{Schema, Table};

    /// 4×(a,x), 3×(a,y), 2×(b,y), 1×(c,z).
    fn t() -> Table {
        let mut rows: Vec<[&str; 2]> = Vec::new();
        rows.extend(std::iter::repeat_n(["a", "x"], 4));
        rows.extend(std::iter::repeat_n(["a", "y"], 3));
        rows.extend(std::iter::repeat_n(["b", "y"], 2));
        rows.push(["c", "z"]);
        Table::from_rows(Schema::new(["A", "B"]).unwrap(), &rows).unwrap()
    }

    #[test]
    fn greedy_picks_follow_marginal_order() {
        let table = t();
        let res = Brs::new(&SizeWeight)
            .with_max_weight(2.0)
            .run(&table.view(), 3);
        let picks: Vec<String> = res
            .selection_order
            .iter()
            .map(|r| r.display(&table))
            .collect();
        // (a,x): 8; then (a,y): 6; then (b,y): 4.
        assert_eq!(picks, vec!["(a, x)", "(a, y)", "(b, y)"]);
    }

    #[test]
    fn display_order_is_descending_weight() {
        let table = t();
        let res = Brs::new(&SizeWeight)
            .with_max_weight(2.0)
            .run(&table.view(), 3);
        for pair in res.rules.windows(2) {
            assert!(pair[0].weight >= pair[1].weight);
        }
    }

    #[test]
    fn total_score_matches_score_set() {
        let table = t();
        let view = table.view();
        let res = Brs::new(&SizeWeight).with_max_weight(2.0).run(&view, 3);
        let expected = score_set(&view, &SizeWeight, &res.rules_only());
        assert!((res.total_score - expected.total).abs() < 1e-9);
    }

    #[test]
    fn stops_early_when_no_marginal_gain_left() {
        let table =
            Table::from_rows(Schema::new(["A"]).unwrap(), &[&["a"], &["a"], &["b"]]).unwrap();
        let res = Brs::new(&SizeWeight).run(&table.view(), 10);
        // Only two distinct rules exist: (a) and (b).
        assert_eq!(res.rules.len(), 2);
    }

    #[test]
    fn k_zero_returns_empty() {
        let table = t();
        let res = Brs::new(&SizeWeight).run(&table.view(), 0);
        assert!(res.rules.is_empty());
        assert_eq!(res.total_score, 0.0);
    }

    #[test]
    fn default_mw_is_exact() {
        let table = t();
        let with_default = Brs::new(&SizeWeight).run(&table.view(), 2);
        let with_max = Brs::new(&SizeWeight)
            .with_max_weight(2.0)
            .run(&table.view(), 2);
        assert_eq!(with_default.total_score, with_max.total_score);
    }

    #[test]
    fn too_small_mw_degrades_gracefully() {
        let table = t();
        let res = Brs::new(&SizeWeight)
            .with_max_weight(1.0)
            .run(&table.view(), 2);
        // All returned rules respect the cap.
        assert!(res.rules.iter().all(|r| r.weight <= 1.0));
        assert!(!res.rules.is_empty());
    }

    #[test]
    fn counts_are_full_counts_not_mcounts() {
        let table = t();
        let res = Brs::new(&SizeWeight)
            .with_max_weight(2.0)
            .run(&table.view(), 3);
        // Displayed Count for (a,x) must be its full coverage (4), and for a
        // later-overlapping rule the count may exceed its mcount.
        let ax = res
            .rules
            .iter()
            .find(|r| r.rule.display(&table) == "(a, x)")
            .unwrap();
        assert_eq!(ax.count, 4.0);
        assert!(res.rules.iter().all(|r| r.count >= r.mcount));
    }

    #[test]
    fn streaming_reports_rules_in_selection_order() {
        let table = t();
        let mut seen: Vec<String> = Vec::new();
        let res = Brs::new(&SizeWeight).with_max_weight(2.0).run_streaming(
            &table.view(),
            3,
            |rule, gain| {
                assert!(gain > 0.0);
                seen.push(rule.display(&table));
                true
            },
        );
        assert_eq!(seen.len(), res.selection_order.len());
        assert_eq!(seen[0], "(a, x)");
    }

    #[test]
    fn streaming_stop_truncates_selection() {
        let table = t();
        let res = Brs::new(&SizeWeight).run_streaming(&table.view(), 10, |_, _| false);
        assert_eq!(res.rules.len(), 1);
    }

    #[test]
    fn deadline_callback_returns_at_least_one_rule() {
        // The wall-clock budget lives with callers now (D002 keeps Instant
        // out of core): a deadline is just a `run_streaming` callback.
        let table = t();
        let res = Brs::new(&SizeWeight).run_streaming(&table.view(), 10, |_, _| false);
        assert_eq!(
            res.rules.len(),
            1,
            "an exhausted budget still yields one rule"
        );
        let start = std::time::Instant::now();
        let generous = Brs::new(&SizeWeight).run_streaming(&table.view(), 3, |_, _| {
            start.elapsed() < std::time::Duration::from_secs(5)
        });
        assert_eq!(generous.rules.len(), 3);
    }

    #[test]
    fn sum_aggregate_via_weighted_view() {
        // §6.3: Sum over a measure column = per-tuple weights.
        let mut b = Table::builder(Schema::new(["Store"]).unwrap());
        for (store, sales) in [("walmart", 100.0), ("walmart", 50.0), ("target", 10.0)] {
            b.push_row(&[store]).unwrap();
            let _ = sales;
        }
        b.add_measure("Sales", vec![100.0, 50.0, 10.0]).unwrap();
        let table = b.build().unwrap();
        let view = table.view_weighted_by("Sales").unwrap();
        let res = Brs::new(&SizeWeight).run(&view, 1);
        assert_eq!(res.rules[0].rule.display(&table), "(walmart)");
        assert_eq!(res.rules[0].count, 150.0);
    }
}
