//! One-time host feature detection and the SIMD kill switch.
//!
//! The detected level is cached in an atomic so the per-call dispatch cost
//! is a relaxed load and a compare. Two ways to force the scalar path:
//!
//! * the `SDD_NO_SIMD` environment variable (set to anything but `0`),
//!   read once at first dispatch — the process-wide switch CI uses;
//! * [`set_simd_enabled`]`(false)` at runtime — what the CLI's `--no-simd`
//!   flag and the benchmark's on/off cells call.

use std::sync::atomic::{AtomicU8, Ordering};

const UNINIT: u8 = 0;
const AVX2: u8 = 1;
const SCALAR: u8 = 2;

/// Cached dispatch level (`UNINIT` until first use).
static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn detect() -> u8 {
    if std::env::var("SDD_NO_SIMD").is_ok_and(|v| v != "0") {
        return SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return AVX2;
        }
    }
    SCALAR
}

#[inline]
fn level() -> u8 {
    match LEVEL.load(Ordering::Relaxed) {
        UNINIT => {
            let l = detect();
            // A concurrent first call computes the same value; last store
            // wins harmlessly.
            LEVEL.store(l, Ordering::Relaxed);
            l
        }
        l => l,
    }
}

/// True when dispatch will take the AVX2 kernels.
#[inline]
pub(crate) fn avx2() -> bool {
    level() == AVX2
}

/// True when vectorized kernels are active (false on non-x86 hosts, when
/// AVX2 is missing, or when the kill switch is thrown).
pub fn simd_enabled() -> bool {
    avx2()
}

/// Forces the scalar path (`false`) or re-probes the host (`true`).
/// Enabling on a host without AVX2 still resolves to scalar, and the
/// `SDD_NO_SIMD` environment variable still wins on re-probe.
pub fn set_simd_enabled(enabled: bool) {
    let l = if enabled { detect() } else { SCALAR };
    LEVEL.store(l, Ordering::Relaxed);
}

/// The active dispatch level as a short label for bench artifacts:
/// `"avx2"` or `"scalar"`.
pub fn feature_level() -> &'static str {
    match level() {
        AVX2 => "avx2",
        _ => "scalar",
    }
}
