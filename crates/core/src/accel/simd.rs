//! AVX2 equality-scan kernels (x86-64 only).
//!
//! Each kernel compares a full vector of codes per iteration, extracts the
//! lane-equality mask with `movemask`, and iterates set bits in ascending
//! order (`trailing_zeros` + clear-lowest-bit), so positions come out in
//! exactly the scalar loop's order. Remainder rows fall through to the
//! scalar tail. Counting kernels just `popcnt` the masks.
//!
//! Safety: every function here is `#[target_feature(enable = "avx2")]` and
//! must only be called after runtime detection (`super::cpu::avx2()`).
//! Loads are unaligned (`loadu`), so no alignment obligations exist; all
//! indexing stays within the slice bounds by construction of the chunked
//! loops.

#![allow(unsafe_code)]

use std::arch::x86_64::*;

/// AVX2 body of [`super::positions_eq_u8`]: 32 lanes per iteration.
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn positions_eq_u8_avx2(codes: &[u8], want: u8, base: u32, out: &mut Vec<u32>) {
    const LANES: usize = 32;
    let needle = _mm256_set1_epi8(want as i8);
    let chunks = codes.len() / LANES;
    for ci in 0..chunks {
        let i = ci * LANES;
        // SAFETY: `i + LANES <= codes.len()`; unaligned load is allowed.
        let v = _mm256_loadu_si256(codes.as_ptr().add(i) as *const __m256i);
        let mut m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)) as u32;
        while m != 0 {
            let lane = m.trailing_zeros();
            out.push(base + (i as u32) + lane);
            m &= m - 1;
        }
    }
    for (j, &c) in codes[chunks * LANES..].iter().enumerate() {
        if c == want {
            out.push(base + (chunks * LANES + j) as u32);
        }
    }
}

/// AVX2 body of [`super::positions_eq_u16`]: 16 lanes per iteration. The
/// byte-granular `movemask` yields two bits per 16-bit lane; masking to the
/// even bits leaves one bit per lane at position `2 * lane`.
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn positions_eq_u16_avx2(
    codes: &[u16],
    want: u16,
    base: u32,
    out: &mut Vec<u32>,
) {
    const LANES: usize = 16;
    let needle = _mm256_set1_epi16(want as i16);
    let chunks = codes.len() / LANES;
    for ci in 0..chunks {
        let i = ci * LANES;
        // SAFETY: `i + LANES <= codes.len()`; unaligned load is allowed.
        let v = _mm256_loadu_si256(codes.as_ptr().add(i) as *const __m256i);
        let mut m = _mm256_movemask_epi8(_mm256_cmpeq_epi16(v, needle)) as u32 & 0x5555_5555;
        while m != 0 {
            let lane = m.trailing_zeros() >> 1;
            out.push(base + (i as u32) + lane);
            m &= m - 1;
        }
    }
    for (j, &c) in codes[chunks * LANES..].iter().enumerate() {
        if c == want {
            out.push(base + (chunks * LANES + j) as u32);
        }
    }
}

/// AVX2 body of [`super::positions_eq_u32`]: 8 lanes per iteration, mask
/// via the float-lane `movemask` (one bit per 32-bit lane).
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn positions_eq_u32_avx2(
    codes: &[u32],
    want: u32,
    base: u32,
    out: &mut Vec<u32>,
) {
    const LANES: usize = 8;
    let needle = _mm256_set1_epi32(want as i32);
    let chunks = codes.len() / LANES;
    for ci in 0..chunks {
        let i = ci * LANES;
        // SAFETY: `i + LANES <= codes.len()`; unaligned load is allowed.
        let v = _mm256_loadu_si256(codes.as_ptr().add(i) as *const __m256i);
        let eq = _mm256_cmpeq_epi32(v, needle);
        let mut m = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
        while m != 0 {
            let lane = m.trailing_zeros();
            out.push(base + (i as u32) + lane);
            m &= m - 1;
        }
    }
    for (j, &c) in codes[chunks * LANES..].iter().enumerate() {
        if c == want {
            out.push(base + (chunks * LANES + j) as u32);
        }
    }
}

/// AVX2 body of [`super::count_eq_u8`].
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn count_eq_u8_avx2(codes: &[u8], want: u8) -> usize {
    const LANES: usize = 32;
    let needle = _mm256_set1_epi8(want as i8);
    let chunks = codes.len() / LANES;
    let mut n = 0usize;
    for ci in 0..chunks {
        // SAFETY: `ci * LANES + LANES <= codes.len()`.
        let v = _mm256_loadu_si256(codes.as_ptr().add(ci * LANES) as *const __m256i);
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)) as u32;
        n += m.count_ones() as usize;
    }
    n + codes[chunks * LANES..]
        .iter()
        .filter(|&&c| c == want)
        .count()
}

/// AVX2 body of [`super::count_eq_u16`].
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn count_eq_u16_avx2(codes: &[u16], want: u16) -> usize {
    const LANES: usize = 16;
    let needle = _mm256_set1_epi16(want as i16);
    let chunks = codes.len() / LANES;
    let mut n = 0usize;
    for ci in 0..chunks {
        // SAFETY: `ci * LANES + LANES <= codes.len()`.
        let v = _mm256_loadu_si256(codes.as_ptr().add(ci * LANES) as *const __m256i);
        // Two mask bits per matching 16-bit lane.
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi16(v, needle)) as u32;
        n += (m.count_ones() / 2) as usize;
    }
    n + codes[chunks * LANES..]
        .iter()
        .filter(|&&c| c == want)
        .count()
}

/// AVX2 body of [`super::count_eq_u32`].
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn count_eq_u32_avx2(codes: &[u32], want: u32) -> usize {
    const LANES: usize = 8;
    let needle = _mm256_set1_epi32(want as i32);
    let chunks = codes.len() / LANES;
    let mut n = 0usize;
    for ci in 0..chunks {
        // SAFETY: `ci * LANES + LANES <= codes.len()`.
        let v = _mm256_loadu_si256(codes.as_ptr().add(ci * LANES) as *const __m256i);
        let eq = _mm256_cmpeq_epi32(v, needle);
        let m = _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
        n += m.count_ones() as usize;
    }
    n + codes[chunks * LANES..]
        .iter()
        .filter(|&&c| c == want)
        .count()
}
