//! Runtime-dispatched SIMD kernels for the hot equality-scan inner loops.
//!
//! Every scan shape the drill-down kernels run — "which rows have code `w`
//! in this column" ([`positions_eq_u8`] / [`positions_eq_u16`] /
//! [`positions_eq_u32`]) and "how many rows have code `w`" ([`count_eq_u8`]
//! / [`count_eq_u16`] / [`count_eq_u32`]) — is a branch-predictable
//! equality compare over a packed code slice. The three widths match the
//! spill tier's packed local codes (1/2/4 bytes per row,
//! `sdd_table::LocalCodes`); the `u32` form also serves the resident
//! global-code columns.
//!
//! ## Dispatch
//!
//! [`cpu`] probes the host once (`is_x86_feature_detected!("avx2")`) and
//! caches the answer; every public function here branches on that cached
//! level and calls either the `#[target_feature(enable = "avx2")]` kernel
//! in [`simd`] or the scalar fallback. The scalar path is always compiled
//! (and is the only path off x86-64), so results never depend on the host:
//! the SIMD kernels produce **identical output** to the scalar loops — the
//! same positions in the same order, the same counts — which the parity
//! suite asserts for adversarial tail lengths.
//!
//! ## Kill switch
//!
//! Set the `SDD_NO_SIMD` environment variable (to anything but `0`) or call
//! [`set_simd_enabled`]`(false)` to force the scalar path — the CI matrix
//! runs the full parity suites both ways, and benchmarks report
//! [`feature_level`] so speedup claims are tied to the hardware that
//! produced them.

pub mod cpu;
#[cfg(target_arch = "x86_64")]
pub(crate) mod simd;

pub use cpu::{feature_level, set_simd_enabled, simd_enabled};

/// Appends `base + i` to `out` for every `i` with `codes[i] == want`.
///
/// Positions are appended in strictly increasing order — exactly the order
/// the scalar loop produces.
#[inline]
pub fn positions_eq_u8(codes: &[u8], want: u8, base: u32, out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if cpu::avx2() {
        // SAFETY: `cpu::avx2()` verified AVX2 support on this host.
        unsafe { simd::positions_eq_u8_avx2(codes, want, base, out) };
        return;
    }
    positions_eq_u8_scalar(codes, want, base, out);
}

/// Scalar reference for [`positions_eq_u8`]; always available.
pub fn positions_eq_u8_scalar(codes: &[u8], want: u8, base: u32, out: &mut Vec<u32>) {
    for (i, &c) in codes.iter().enumerate() {
        if c == want {
            out.push(base + i as u32);
        }
    }
}

/// Appends `base + i` to `out` for every `i` with `codes[i] == want`.
#[inline]
pub fn positions_eq_u16(codes: &[u16], want: u16, base: u32, out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if cpu::avx2() {
        // SAFETY: `cpu::avx2()` verified AVX2 support on this host.
        unsafe { simd::positions_eq_u16_avx2(codes, want, base, out) };
        return;
    }
    positions_eq_u16_scalar(codes, want, base, out);
}

/// Scalar reference for [`positions_eq_u16`]; always available.
pub fn positions_eq_u16_scalar(codes: &[u16], want: u16, base: u32, out: &mut Vec<u32>) {
    for (i, &c) in codes.iter().enumerate() {
        if c == want {
            out.push(base + i as u32);
        }
    }
}

/// Appends `base + i` to `out` for every `i` with `codes[i] == want`.
#[inline]
pub fn positions_eq_u32(codes: &[u32], want: u32, base: u32, out: &mut Vec<u32>) {
    #[cfg(target_arch = "x86_64")]
    if cpu::avx2() {
        // SAFETY: `cpu::avx2()` verified AVX2 support on this host.
        unsafe { simd::positions_eq_u32_avx2(codes, want, base, out) };
        return;
    }
    positions_eq_u32_scalar(codes, want, base, out);
}

/// Scalar reference for [`positions_eq_u32`]; always available.
pub fn positions_eq_u32_scalar(codes: &[u32], want: u32, base: u32, out: &mut Vec<u32>) {
    for (i, &c) in codes.iter().enumerate() {
        if c == want {
            out.push(base + i as u32);
        }
    }
}

/// Counts entries equal to `want`.
#[inline]
pub fn count_eq_u8(codes: &[u8], want: u8) -> usize {
    #[cfg(target_arch = "x86_64")]
    if cpu::avx2() {
        // SAFETY: `cpu::avx2()` verified AVX2 support on this host.
        return unsafe { simd::count_eq_u8_avx2(codes, want) };
    }
    codes.iter().filter(|&&c| c == want).count()
}

/// Counts entries equal to `want`.
#[inline]
pub fn count_eq_u16(codes: &[u16], want: u16) -> usize {
    #[cfg(target_arch = "x86_64")]
    if cpu::avx2() {
        // SAFETY: `cpu::avx2()` verified AVX2 support on this host.
        return unsafe { simd::count_eq_u16_avx2(codes, want) };
    }
    codes.iter().filter(|&&c| c == want).count()
}

/// Counts entries equal to `want`.
#[inline]
pub fn count_eq_u32(codes: &[u32], want: u32) -> usize {
    #[cfg(target_arch = "x86_64")]
    if cpu::avx2() {
        // SAFETY: `cpu::avx2()` verified AVX2 support on this host.
        return unsafe { simd::count_eq_u32_avx2(codes, want) };
    }
    codes.iter().filter(|&&c| c == want).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random byte stream (no external RNG dep).
    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn dispatch_matches_scalar_on_all_tail_lengths() {
        // 0..64 remainder rows exercises every partial-vector tail for all
        // three widths (32/16/8 lanes).
        let mut rng = lcg(42);
        for n in (0..64).chain([128, 255, 1000]) {
            let b8: Vec<u8> = (0..n).map(|_| (rng() % 5) as u8).collect();
            let b16: Vec<u16> = (0..n).map(|_| (rng() % 5) as u16).collect();
            let b32: Vec<u32> = (0..n).map(|_| (rng() % 5) as u32).collect();
            for want in 0..5u32 {
                let (mut got, mut exp) = (Vec::new(), Vec::new());
                positions_eq_u8(&b8, want as u8, 7, &mut got);
                positions_eq_u8_scalar(&b8, want as u8, 7, &mut exp);
                assert_eq!(got, exp, "u8 n={n} want={want}");
                assert_eq!(count_eq_u8(&b8, want as u8), exp.len());

                let (mut got, mut exp) = (Vec::new(), Vec::new());
                positions_eq_u16(&b16, want as u16, 7, &mut got);
                positions_eq_u16_scalar(&b16, want as u16, 7, &mut exp);
                assert_eq!(got, exp, "u16 n={n} want={want}");
                assert_eq!(count_eq_u16(&b16, want as u16), exp.len());

                let (mut got, mut exp) = (Vec::new(), Vec::new());
                positions_eq_u32(&b32, want, 7, &mut got);
                positions_eq_u32_scalar(&b32, want, 7, &mut exp);
                assert_eq!(got, exp, "u32 n={n} want={want}");
                assert_eq!(count_eq_u32(&b32, want), exp.len());
            }
        }
    }

    #[test]
    fn feature_level_is_reported() {
        let level = feature_level();
        assert!(level == "avx2" || level == "scalar", "level {level:?}");
    }
}
