//! Sharded compute: the drill-down hot paths over [`ShardedTable`] /
//! [`ShardedView`] storage (see `sdd_table::shard` for the substrate).
//!
//! Every function here is a **bit-compatible twin** of its monolithic
//! counterpart. The contract rests on two facts:
//!
//! 1. the shard layout partitions the row range in order, so iterating
//!    shards in index order visits rows (or view positions) in exactly the
//!    monolithic order;
//! 2. every float accumulator is updated **shard-after-shard into one
//!    shared accumulator** — the same operation sequence the monolithic
//!    scan performs — while parallelism comes from *disjoint* accumulators
//!    (one per column or candidate group, threaded through the shard loop
//!    by [`crate::exec::parallel_map`], which returns them in job order).
//!    Integer quantities additionally fan out per (column × shard) with
//!    private `u64` partials merged by the chunk-ordered
//!    [`crate::exec::reduce_pairwise`] — associative, hence still exact.
//!
//! ## Spill-tier predicate pushdown
//!
//! Scans here never force a shard's local→global decode. Each shard is
//! consumed **in whichever form the residency cache holds**
//! ([`sdd_table::SegmentData`]): decoded segments scan global codes;
//! raw segments scan the packed 1/2/4-byte local codes straight out of the
//! spill coding, after translating each rule predicate into the shard's
//! local code space through its `remap` — a predicate value absent from
//! `remap` covers zero rows, so the whole shard is skipped without touching
//! a single row. Coverage scans that miss the cache range-read only the
//! rule's columns ([`ShardedTable::read_columns`]) and leave residency
//! undisturbed; the marginal-search passes load the raw form into the cache
//! ([`ShardedTable::segment_data`]) so later passes rescan it for free.
//! Bit-parity is preserved by construction:
//!
//! * **positions/counts** are integers — a local-code equality scan hits
//!   exactly the rows the global-code scan hits;
//! * **histograms** remap back to global slots. Unit-weight counts scatter
//!   local `u64` histograms through `remap` (integer addition, exact).
//!   Weighted `f64` histograms use *swap-in/swap-out*: at shard entry each
//!   local slot borrows its global slot's running value
//!   (`lacc[l] = acc[remap[l]]`), rows accumulate into local slots in row
//!   order, and shard exit writes the values back — `remap` is injective,
//!   so every global slot's float operation sequence is exactly the
//!   monolithic one;
//! * **pass-j dense cells** premultiply `remap` by the group strides
//!   (`lcell[l] = remap[l] * stride`, integer) so cell indices are
//!   identical to the decoded scan's.
//!
//! The equality-compare inner loops dispatch through [`crate::accel`]
//! (AVX2 with scalar fallback); SIMD changes neither positions nor order.
//!
//! Consequently the sharded search, BRS, coverage scans, and scoring are
//! **bit-identical to the monolithic path for any shard count and any
//! resident budget** — eviction and spill reload only change when bytes
//! are in memory, never which bytes. The same holds for *how the storage
//! was built* (`ShardedTable::from_table` vs the streaming
//! `ShardBuilder`) and for the *eviction policy* (`Residency::Lru` vs
//! `Sweep`): a stream-built table holds byte-identical segments and the
//! policy only reorders spill traffic. Segment `Arc`s these scans hold
//! in flight are **pinned** in the residency cache (they count against
//! the budget rather than escaping it), which throttles memory, never
//! results. `tests/shard_parity.rs` asserts all of this end to end
//! (search winners, sample stores, server transcripts) across shard
//! counts 1..=8 × both builds, including budgets that force spill.
//!
//! ## Fallibility
//!
//! Every scan comes in two forms: a `try_*` variant returning
//! `Result<_, TableError>` (a damaged spill file surfaces as
//! [`TableError::Corrupt`]/[`TableError::Io`] — the server stack uses
//! these so a session gets an error response instead of a crash) and the
//! original infallible name, which `expect`s — appropriate for embedded
//! use where the table's own spill files are trusted.

use crate::accel;
use crate::brs::{Brs, BrsResult, ScoredRule};
use crate::exec;
use crate::kernel::{
    build_groups, generate_level, level_blocks, pass1_candidates, pick_winner, CandStat, Group,
    Pass1Cands, SearchScratch,
};
use crate::marginal::{BestMarginal, SearchOptions, SearchStats};
use crate::score::ListScore;
use crate::weight::RequireColumn;
use crate::{Rule, WeightFn};
use rustc_hash::FxHashMap;
use sdd_table::{
    LocalCodes, RawColumn, RawSegment, RowId, SegmentData, ShardRun, ShardSegment, ShardedTable,
    ShardedView, TableError,
};
use std::ops::Range;
use std::sync::Arc;

const SPILL_EXPECT: &str = "shard spill file must decode (written by this table)";

// ---------------------------------------------------------------------------
// Pushdown plumbing: fetching shard columns in their cheapest form and
// translating rule predicates into local code space.
// ---------------------------------------------------------------------------

/// The column data one coverage scan obtained for one shard, in whatever
/// form was cheapest to get.
enum FetchedCols {
    /// The cached decoded segment (global codes).
    Decoded(Arc<ShardSegment>),
    /// The cached raw segment (every column, packed local codes).
    Raw(Arc<RawSegment>),
    /// A transient range read of just the requested columns, in request
    /// order — never enters the residency cache.
    Transient(Vec<RawColumn>),
}

/// One shard's fetched columns plus the request list (which indexes the
/// transient form).
struct ShardCols<'a> {
    cols: &'a [usize],
    data: FetchedCols,
}

impl ShardCols<'_> {
    /// The decoded segment, when that form was cached.
    fn decoded(&self) -> Option<&ShardSegment> {
        match &self.data {
            FetchedCols::Decoded(seg) => Some(seg),
            _ => None,
        }
    }

    /// Column `c` in spill coding (`None` when the decoded form is held).
    /// `c` must be one of the requested columns.
    fn raw_col(&self, c: usize) -> Option<&RawColumn> {
        match &self.data {
            FetchedCols::Decoded(_) => None,
            FetchedCols::Raw(r) => Some(r.col(c)),
            FetchedCols::Transient(v) => {
                let k = self
                    .cols
                    .iter()
                    .position(|&x| x == c)
                    .expect("column was fetched");
                Some(&v[k])
            }
        }
    }
}

/// Fetches `cols` of one shard for a coverage scan: whatever form is
/// cached, else a transient range read of only those columns (residency
/// undisturbed).
fn fetch_cols<'a>(
    st: &ShardedTable,
    shard: usize,
    cols: &'a [usize],
) -> Result<ShardCols<'a>, TableError> {
    let data = match st.cached_data(shard) {
        Some(SegmentData::Decoded(seg)) => FetchedCols::Decoded(seg),
        Some(SegmentData::Raw(raw)) => FetchedCols::Raw(raw),
        None if st.spill_path(shard).is_some() => {
            FetchedCols::Transient(st.read_columns(shard, cols)?)
        }
        // Fully-resident tables always hit the cache; kept total anyway.
        None => FetchedCols::Decoded(st.try_segment(shard)?),
    };
    Ok(ShardCols { cols, data })
}

/// Translates `rule`'s predicates on `cols` into the shard's local code
/// space. `None` ⇒ some predicate value never occurs in this shard
/// (absent from the column's `remap`): the rule covers zero rows here and
/// the caller skips the shard without touching its rows.
fn local_predicates<'a>(
    f: &'a ShardCols<'_>,
    rule: &Rule,
    cols: &[usize],
) -> Option<Vec<(&'a LocalCodes, u32)>> {
    cols.iter()
        .map(|&c| {
            let rc = f.raw_col(c).expect("raw form");
            rc.local_of_global(rule.code(c)).map(|l| (rc.codes(), l))
        })
        .collect()
}

/// Width-dispatched equality position scan over packed local codes.
fn positions_eq_local(codes: &LocalCodes, want: u32, base: u32, out: &mut Vec<u32>) {
    match codes {
        // Local codes were validated against `remap`, so a 1-byte column's
        // codes — and any `want` produced by `local_of_global` — fit u8/u16.
        LocalCodes::W1(v) => accel::positions_eq_u8(v, want as u8, base, out),
        LocalCodes::W2(v) => accel::positions_eq_u16(v, want as u16, base, out),
        LocalCodes::W4(v) => accel::positions_eq_u32(v, want, base, out),
    }
}

/// Width-dispatched equality count over packed local codes.
fn count_eq_local(codes: &LocalCodes, want: u32) -> usize {
    match codes {
        LocalCodes::W1(v) => accel::count_eq_u8(v, want as u8),
        LocalCodes::W2(v) => accel::count_eq_u16(v, want as u16),
        LocalCodes::W4(v) => accel::count_eq_u32(v, want),
    }
}

/// Appends the ids (`span.start + local`) of `rule`'s covered rows in one
/// full shard to `out`, ascending — for all-rows views these are equally
/// view positions. First column via the SIMD equality scan, remaining
/// columns by survivor filtering; the raw form scans packed local codes
/// after predicate translation.
fn covered_in_shard(
    f: &ShardCols<'_>,
    rule: &Rule,
    cols: &[usize],
    span: &Range<usize>,
    out: &mut Vec<u32>,
) {
    let base = span.start as u32;
    let mut hits: Vec<u32> = Vec::new();
    if let Some(seg) = f.decoded() {
        let (&first, rest) = cols.split_first().expect("non-empty");
        accel::positions_eq_u32(seg.col(first), rule.code(first), base, &mut hits);
        for &c in rest {
            let codes = seg.col(c);
            let want = rule.code(c);
            hits.retain(|&r| codes[(r - base) as usize] == want);
        }
    } else {
        let Some(preds) = local_predicates(f, rule, cols) else {
            return; // zero-count shard: predicate value absent from remap
        };
        let (&(first_codes, first_want), rest) = preds.split_first().expect("non-empty");
        positions_eq_local(first_codes, first_want, base, &mut hits);
        for &(codes, want) in rest {
            hits.retain(|&r| codes.at((r - base) as usize) == want);
        }
    }
    out.extend(hits);
}

// ---------------------------------------------------------------------------
// Coverage scans
// ---------------------------------------------------------------------------

/// All row ids of `table` covered by `rule` (ascending) — the sharded twin
/// of [`crate::covered_rows`]: shards are filtered in index order and the
/// per-shard hit lists concatenate, so the output is byte-identical to the
/// monolithic scan on any shard count. Infallible wrapper over
/// [`try_covered_rows_sharded`].
pub fn covered_rows_sharded(table: &ShardedTable, rule: &Rule) -> Vec<RowId> {
    try_covered_rows_sharded(table, rule).expect(SPILL_EXPECT)
}

/// Fallible [`covered_rows_sharded`]. Cached shards are scanned in place
/// (decoded or raw); misses range-read only the rule's columns.
pub fn try_covered_rows_sharded(
    table: &ShardedTable,
    rule: &Rule,
) -> Result<Vec<RowId>, TableError> {
    let cols: Vec<usize> = rule.instantiated_columns().collect();
    let n = table.n_rows();
    if cols.is_empty() {
        return Ok((0..n as RowId).collect());
    }
    let mut out: Vec<RowId> = Vec::new();
    for i in 0..table.n_shards() {
        let span = table.spans()[i].clone();
        if span.is_empty() {
            continue;
        }
        let f = fetch_cols(table, i, &cols)?;
        covered_in_shard(&f, rule, &cols, &span, &mut out);
    }
    Ok(out)
}

/// All row ids in `range` covered by `rule` (ascending): the ranged twin
/// of [`try_covered_rows_sharded`], scanning only the shards that overlap
/// the range. This is what incremental sample maintenance uses to offer
/// exactly one epoch's appended rows (`epoch_rows[e-1]..epoch_rows[e]`)
/// without rescanning the table. The full-range call returns byte-identical
/// output to [`try_covered_rows_sharded`] by construction: shards are
/// visited in index order and per-shard hits are ascending either way.
pub fn try_covered_rows_sharded_range(
    table: &ShardedTable,
    rule: &Rule,
    range: Range<usize>,
) -> Result<Vec<RowId>, TableError> {
    let lo = range.start.min(table.n_rows());
    let hi = range.end.min(table.n_rows());
    if lo >= hi {
        return Ok(Vec::new());
    }
    let cols: Vec<usize> = rule.instantiated_columns().collect();
    if cols.is_empty() {
        return Ok((lo as RowId..hi as RowId).collect());
    }
    let mut out: Vec<RowId> = Vec::new();
    for i in 0..table.n_shards() {
        let span = table.spans()[i].clone();
        if span.is_empty() || span.end <= lo || span.start >= hi {
            continue;
        }
        let f = fetch_cols(table, i, &cols)?;
        let before = out.len();
        covered_in_shard(&f, rule, &cols, &span, &mut out);
        if span.start < lo || span.end > hi {
            // Boundary shard: keep only the in-range hits.
            let (lo32, hi32) = (lo as RowId, hi as RowId);
            let mut w = before;
            for r in before..out.len() {
                let v = out[r];
                if (lo32..hi32).contains(&v) {
                    out[w] = v;
                    w += 1;
                }
            }
            out.truncate(w);
        }
    }
    Ok(out)
}

/// View positions (ascending) whose rows are covered by `rule` — the
/// sharded twin of [`crate::covered_positions`]. Byte-identical output.
/// Infallible wrapper over [`try_covered_positions_sharded`].
pub fn covered_positions_sharded(view: &ShardedView, rule: &Rule) -> Vec<u32> {
    try_covered_positions_sharded(view, rule).expect(SPILL_EXPECT)
}

/// Fallible [`covered_positions_sharded`]. All-rows views use the
/// contiguous per-shard SIMD scan (position = row id); subset views probe
/// row-at-a-time with per-shard predicate translation.
pub fn try_covered_positions_sharded(
    view: &ShardedView,
    rule: &Rule,
) -> Result<Vec<u32>, TableError> {
    let cols: Vec<usize> = rule.instantiated_columns().collect();
    if cols.is_empty() {
        return Ok((0..view.len() as u32).collect());
    }
    let st = view.table();
    let mut out: Vec<u32> = Vec::new();
    if view.row_ids().is_none() {
        // All-rows view: one contiguous run per shard, position == row id.
        for run in view.shard_runs() {
            let span = st.spans()[run.shard].clone();
            let f = fetch_cols(st, run.shard, &cols)?;
            covered_in_shard(&f, rule, &cols, &span, &mut out);
        }
        return Ok(out);
    }
    // Subset view: fetch each touched shard once (runs may revisit).
    let mut fetched: FxHashMap<usize, ShardCols<'_>> = FxHashMap::default();
    for run in view.shard_runs() {
        if let std::collections::hash_map::Entry::Vacant(e) = fetched.entry(run.shard) {
            e.insert(fetch_cols(st, run.shard, &cols)?);
        }
        let f = &fetched[&run.shard];
        let start = st.spans()[run.shard].start;
        if let Some(seg) = f.decoded() {
            for pos in run.positions.clone() {
                let local = seg.local(view.row_at(pos));
                if cols.iter().all(|&c| seg.col(c)[local] == rule.code(c)) {
                    out.push(pos as u32);
                }
            }
        } else if let Some(preds) = local_predicates(f, rule, &cols) {
            for pos in run.positions.clone() {
                let local = view.row_at(pos) as usize - start;
                if preds.iter().all(|&(codes, want)| codes.at(local) == want) {
                    out.push(pos as u32);
                }
            }
        }
        // else: predicate value absent from this shard — no positions.
    }
    Ok(out)
}

/// Filters `view` to the positions covered by `base` — the sharded twin of
/// [`crate::filter_to_rule`]. Row order and weights are preserved.
/// Infallible wrapper over [`try_filter_to_rule_sharded`].
pub fn filter_to_rule_sharded(view: &ShardedView, base: &Rule) -> ShardedView {
    try_filter_to_rule_sharded(view, base).expect(SPILL_EXPECT)
}

/// Fallible [`filter_to_rule_sharded`].
pub fn try_filter_to_rule_sharded(
    view: &ShardedView,
    base: &Rule,
) -> Result<ShardedView, TableError> {
    let positions = try_covered_positions_sharded(view, base)?;
    let rows: Vec<RowId> = positions.iter().map(|&p| view.row_at(p as usize)).collect();
    Ok(match view.weights() {
        Some(_) => {
            let weights: Vec<f64> = positions
                .iter()
                .map(|&p| view.weight_at(p as usize))
                .collect();
            ShardedView::with_rows_and_weights(view.table().clone(), rows, weights)
        }
        None => ShardedView::with_rows(view.table().clone(), rows),
    })
}

/// Exact counts of every rule in one pass over the sharded table — the scan
/// behind the explorer's sharded `refresh`. Infallible wrapper over
/// [`try_count_rules_sharded`].
pub fn count_rules_sharded(table: &ShardedTable, rules: &[Rule]) -> Vec<f64> {
    try_count_rules_sharded(table, rules).expect(SPILL_EXPECT)
}

/// Fallible [`count_rules_sharded`].
///
/// det-order: counts are exact integers (a sum of `k` unit additions is
/// exactly `k` in f64 for `k < 2^53`), so per-shard `u64` subtotals
/// reproduce the monolithic unit-accumulation bitwise —
/// which frees each shard to use the SIMD count kernels over whichever
/// form it holds.
pub fn try_count_rules_sharded(
    table: &ShardedTable,
    rules: &[Rule],
) -> Result<Vec<f64>, TableError> {
    let mut counts = vec![0u64; rules.len()];
    let mut needed: Vec<usize> = rules
        .iter()
        .flat_map(|r| r.instantiated_columns())
        .collect();
    needed.sort_unstable();
    needed.dedup();
    for i in 0..table.n_shards() {
        let span = table.spans()[i].clone();
        if span.is_empty() {
            continue;
        }
        if needed.is_empty() {
            // Only trivial rules: every rule covers the whole shard.
            for c in counts.iter_mut() {
                *c += span.len() as u64;
            }
            continue;
        }
        let f = fetch_cols(table, i, &needed)?;
        for (ri, rule) in rules.iter().enumerate() {
            counts[ri] += count_rule_in_shard(&f, rule, span.len());
        }
    }
    Ok(counts.into_iter().map(|c| c as f64).collect())
}

/// One rule's covered-row count in one shard. Single-column rules use the
/// vectorized count kernel directly; wider rules filter survivors.
fn count_rule_in_shard(f: &ShardCols<'_>, rule: &Rule, n_rows: usize) -> u64 {
    let cols: Vec<usize> = rule.instantiated_columns().collect();
    if cols.is_empty() {
        return n_rows as u64;
    }
    if let Some(seg) = f.decoded() {
        if let [c] = cols[..] {
            return accel::count_eq_u32(seg.col(c), rule.code(c)) as u64;
        }
        let (&first, rest) = cols.split_first().expect("non-empty");
        let mut hits: Vec<u32> = Vec::new();
        accel::positions_eq_u32(seg.col(first), rule.code(first), 0, &mut hits);
        for &c in rest {
            let codes = seg.col(c);
            let want = rule.code(c);
            hits.retain(|&r| codes[r as usize] == want);
        }
        hits.len() as u64
    } else {
        let Some(preds) = local_predicates(f, rule, &cols) else {
            return 0; // zero-count shard
        };
        if let [(codes, want)] = preds[..] {
            return count_eq_local(codes, want) as u64;
        }
        let (&(first_codes, first_want), rest) = preds.split_first().expect("non-empty");
        let mut hits: Vec<u32> = Vec::new();
        positions_eq_local(first_codes, first_want, 0, &mut hits);
        for &(codes, want) in rest {
            hits.retain(|&r| codes.at(r as usize) == want);
        }
        hits.len() as u64
    }
}

/// The (weighted) `Count` of one rule over a sharded view — twin of
/// [`crate::rule_count`]. Infallible wrapper over
/// [`try_rule_count_sharded`].
pub fn rule_count_sharded(view: &ShardedView, rule: &Rule) -> f64 {
    try_rule_count_sharded(view, rule).expect(SPILL_EXPECT)
}

/// Fallible [`rule_count_sharded`].
pub fn try_rule_count_sharded(view: &ShardedView, rule: &Rule) -> Result<f64, TableError> {
    Ok(try_covered_positions_sharded(view, rule)?
        .into_iter()
        .map(|p| view.weight_at(p as usize))
        .sum())
}

/// Sorts rules in descending weight order — twin of
/// [`crate::sort_by_weight_desc`]; weights come from the always-resident
/// header (same dictionaries and cardinalities as the monolithic table).
pub fn sort_by_weight_desc_sharded(
    table: &ShardedTable,
    weight: &dyn WeightFn,
    rules: &[Rule],
) -> Vec<Rule> {
    let header = table.header();
    let mut keyed: Vec<(f64, &Rule)> = rules
        .iter()
        .map(|r| (weight.weight(r, header), r))
        .collect();
    keyed.sort_by(|(wa, ra), (wb, rb)| {
        wb.partial_cmp(wa)
            .expect("weights must be finite")
            .then_with(|| ra.codes().cmp(rb.codes()))
    });
    keyed.into_iter().map(|(_, r)| r.clone()).collect()
}

/// Scores `rules` in the given order against a sharded view — twin of
/// [`crate::score_list`]. Infallible wrapper over
/// [`try_score_list_sharded`].
pub fn score_list_sharded(view: &ShardedView, weight: &dyn WeightFn, rules: &[Rule]) -> ListScore {
    try_score_list_sharded(view, weight, rules).expect(SPILL_EXPECT)
}

/// Fallible [`score_list_sharded`].
///
/// det-order: positions are visited in order (shard runs partition them in
/// order), so every accumulator receives the same additions in the same
/// order as the monolithic scan. `MCount` is
/// first-rule-wins per row, which forces the row-at-a-time sweep; the
/// pushdown contribution is per-shard predicate translation (raw shards
/// test packed local codes, and a rule whose value is absent from a
/// shard's remap is skipped for that shard wholesale).
pub fn try_score_list_sharded(
    view: &ShardedView,
    weight: &dyn WeightFn,
    rules: &[Rule],
) -> Result<ListScore, TableError> {
    let st = view.table();
    let header = st.header();
    let weights: Vec<f64> = rules.iter().map(|r| weight.weight(r, header)).collect();
    let mut counts = vec![0.0f64; rules.len()];
    let mut mcounts = vec![0.0f64; rules.len()];
    let mut uncovered = 0.0f64;

    let mut needed: Vec<usize> = rules
        .iter()
        .flat_map(|r| r.instantiated_columns())
        .collect();
    needed.sort_unstable();
    needed.dedup();

    let mut fetched: FxHashMap<usize, ShardCols<'_>> = FxHashMap::default();
    let n_cols = st.n_columns();
    let mut codes: Vec<u32> = Vec::with_capacity(n_cols);
    for run in view.shard_runs() {
        if let std::collections::hash_map::Entry::Vacant(e) = fetched.entry(run.shard) {
            e.insert(fetch_cols(st, run.shard, &needed)?);
        }
        let f = &fetched[&run.shard];
        if let Some(seg) = f.decoded() {
            for pos in run.positions.clone() {
                let local = seg.local(view.row_at(pos));
                codes.clear();
                codes.extend((0..n_cols).map(|c| seg.col(c)[local]));
                let w = view.weight_at(pos);
                let mut assigned = false;
                for (i, rule) in rules.iter().enumerate() {
                    if rule.covers_codes(&codes) {
                        counts[i] += w;
                        if !assigned {
                            mcounts[i] += w;
                            assigned = true;
                        }
                    }
                }
                if !assigned {
                    uncovered += w;
                }
            }
        } else {
            // Per-rule local predicates; `None` = rule dead in this shard.
            let preds: Vec<Option<Vec<(&LocalCodes, u32)>>> = rules
                .iter()
                .map(|rule| {
                    let cols: Vec<usize> = rule.instantiated_columns().collect();
                    local_predicates(f, rule, &cols)
                })
                .collect();
            let start = st.spans()[run.shard].start;
            for pos in run.positions.clone() {
                let local = view.row_at(pos) as usize - start;
                let w = view.weight_at(pos);
                let mut assigned = false;
                for (i, pred) in preds.iter().enumerate() {
                    let covered = pred
                        .as_ref()
                        .is_some_and(|ps| ps.iter().all(|&(codes, want)| codes.at(local) == want));
                    if covered {
                        counts[i] += w;
                        if !assigned {
                            mcounts[i] += w;
                            assigned = true;
                        }
                    }
                }
                if !assigned {
                    uncovered += w;
                }
            }
        }
    }

    let total = weights.iter().zip(&mcounts).map(|(w, m)| w * m).sum();
    let rules = rules
        .iter()
        .zip(weights)
        .zip(counts.iter().zip(&mcounts))
        .map(
            |((rule, weight), (&count, &mcount))| crate::score::RuleScore {
                rule: rule.clone(),
                weight,
                count,
                mcount,
            },
        )
        .collect();
    Ok(ListScore {
        rules,
        total,
        uncovered,
    })
}

// ---------------------------------------------------------------------------
// Algorithm 2 over sharded storage
// ---------------------------------------------------------------------------

/// Runs Algorithm 2 over a sharded view — the per-shard counting kernel.
/// Infallible wrapper over [`try_find_best_marginal_rule_sharded`].
pub fn find_best_marginal_rule_sharded(
    view: &ShardedView,
    weight: &dyn WeightFn,
    covered_weight: &[f64],
    opts: &SearchOptions,
    scratch: &mut SearchScratch,
) -> Option<BestMarginal> {
    try_find_best_marginal_rule_sharded(view, weight, covered_weight, opts, scratch)
        .expect(SPILL_EXPECT)
}

/// Runs Algorithm 2 over a sharded view — the per-shard counting kernel.
///
/// Candidate generation, pruning, group layout, and winner selection are
/// the exact code the monolithic kernel runs
/// ([`crate::kernel`] shares them); only the row scans differ, and those
/// follow the determinism contract in the module docs — so the result is
/// bit-identical to [`crate::find_best_marginal_rule`] on the equivalent
/// monolithic view, for any shard count, resident budget, and thread count
/// (det-order: float merges delegate to the pass helpers below, which
/// replay the monolithic operation order or reduce pairwise).
/// Shards are consumed in whichever cached form they hold; spilled shards
/// are counted straight off their packed local codes (see the module docs'
/// pushdown section).
pub fn try_find_best_marginal_rule_sharded(
    view: &ShardedView,
    weight: &dyn WeightFn,
    covered_weight: &[f64],
    opts: &SearchOptions,
    scratch: &mut SearchScratch,
) -> Result<Option<BestMarginal>, TableError> {
    assert_eq!(
        covered_weight.len(),
        view.len(),
        "covered_weight must align with view"
    );
    let st = view.table();
    let header = st.header();
    let n_cols = st.n_columns();
    let base = opts.base.clone().unwrap_or_else(|| Rule::trivial(n_cols));
    let free_cols: Vec<usize> = (0..n_cols).filter(|&c| base.is_star(c)).collect();
    let max_size = opts
        .max_rule_size
        .unwrap_or(free_cols.len())
        .min(free_cols.len());
    if max_size == 0 || view.is_empty() {
        return Ok(None);
    }

    let runs = view.shard_runs();
    let threads = if cfg!(feature = "parallel")
        && opts.parallel
        && view.len() >= opts.parallel_min_rows.max(1)
    {
        exec::worker_threads()
    } else {
        1
    };

    let mut stats = SearchStats::default();
    let mut counted: FxHashMap<Rule, CandStat> = FxHashMap::default();
    let mut best_h = 0.0f64;

    // ---- Pass 1: per-shard columnar counting. ----
    stats.passes = 1;
    let col_counts = pass1_counts_sharded(view, &runs, &free_cols, threads)?;
    let cands: Vec<Pass1Cands> = free_cols
        .iter()
        .enumerate()
        .map(|(fi, &c)| pass1_candidates(header, &base, c, &col_counts[fi], weight, opts))
        .collect();
    let col_marginals =
        pass1_marginals_sharded(view, &runs, &free_cols, &cands, covered_weight, threads)?;

    let mut level: Vec<Rule> = Vec::new();
    for (fi, cand) in cands.iter().enumerate() {
        stats.generated += cand.generated;
        stats.pruned += cand.pruned;
        stats.counted += cand.rules.len();
        let c = free_cols[fi];
        for rule in &cand.rules {
            let code = rule.code(c) as usize;
            let stat = CandStat {
                count: col_counts[fi][code],
                marginal: col_marginals[fi][code],
                weight: cand.wtab[code],
            };
            counted.insert(rule.clone(), stat);
            if stat.marginal > best_h {
                best_h = stat.marginal;
            }
        }
        level.extend(cand.rules.iter().cloned());
    }

    // ---- Passes 2..: shared a-priori generation, per-shard counting. ----
    let blocks = level_blocks(&level, &base);
    let mut current = level;
    for _pass in 2..=max_size {
        let (next, cand_weights) = generate_level(
            header, &base, &blocks, &current, &counted, weight, opts, best_h, &mut stats,
        );
        if next.is_empty() {
            break;
        }
        stats.passes += 1;
        stats.counted += next.len();

        build_groups(scratch, header, &base, &next, view.len());
        count_level_sharded(view, &runs, scratch, &cand_weights, covered_weight, threads)?;

        for (cand, stat) in next.iter().zip(&scratch.cstats) {
            if stat.marginal > best_h {
                best_h = stat.marginal;
            }
            counted.insert(cand.clone(), *stat);
        }
        current = next;
    }

    Ok(pick_winner(&counted, stats))
}

/// One column's pass-1 unit count over one run, as exact `u64` partials.
/// Raw shards histogram in local code space and scatter through `remap`
/// (integer addition — associative, exact).
fn pass1_unit_counts_run(
    view: &ShardedView,
    run: &ShardRun,
    data: &SegmentData,
    col: usize,
    card: usize,
) -> Vec<u64> {
    let mut counts = vec![0u64; card];
    match data {
        SegmentData::Decoded(seg) => {
            let codes = seg.col(col);
            for pos in run.positions.clone() {
                counts[codes[seg.local(view.row_at(pos))] as usize] += 1;
            }
        }
        SegmentData::Raw(raw) => {
            let rc = raw.col(col);
            let start = raw.span().start;
            let codes = rc.codes();
            let mut lhist = vec![0u64; rc.cardinality()];
            for pos in run.positions.clone() {
                let local = view.row_at(pos) as usize - start;
                lhist[codes.at(local) as usize] += 1;
            }
            for (l, &g) in rc.remap().iter().enumerate() {
                counts[g as usize] += lhist[l];
            }
        }
    }
    counts
}

/// One column's weighted pass-1 count accumulation over one run, in row
/// order (det-order: runs arrive in position order, so the float operation
/// sequence is the monolithic one). Raw shards use the swap-in/swap-out
/// trick (module docs): local
/// accumulators borrow and return the global slots' running values, so the
/// float operation sequence matches the decoded scan exactly.
fn pass1_count_run(
    view: &ShardedView,
    run: &ShardRun,
    data: &SegmentData,
    col: usize,
    counts: &mut [f64],
) {
    match data {
        SegmentData::Decoded(seg) => {
            let codes = seg.col(col);
            for pos in run.positions.clone() {
                counts[codes[seg.local(view.row_at(pos))] as usize] += view.weight_at(pos);
            }
        }
        SegmentData::Raw(raw) => {
            let rc = raw.col(col);
            let start = raw.span().start;
            let codes = rc.codes();
            let remap = rc.remap();
            let mut lacc: Vec<f64> = remap.iter().map(|&g| counts[g as usize]).collect();
            for pos in run.positions.clone() {
                let local = view.row_at(pos) as usize - start;
                lacc[codes.at(local) as usize] += view.weight_at(pos);
            }
            for (l, &g) in remap.iter().enumerate() {
                counts[g as usize] = lacc[l];
            }
        }
    }
}

/// Pass-1 counts per free column.
///
/// Unit-weight views fan out **one task per shard run** — the task fetches
/// its segment data exactly once and counts every free column over it —
/// with private `u64` partials, merged per column in run order by
/// [`exec::reduce_pairwise`]: integer addition is associative, so this is
/// exact and identical to the serial sweep, and at most `threads` segments
/// are pinned at a time. Weighted views thread one `f64` accumulator per
/// column through the runs in order (columns in parallel, runs
/// sequential), reproducing the monolithic float operation order.
fn pass1_counts_sharded(
    view: &ShardedView,
    runs: &[ShardRun],
    free_cols: &[usize],
    threads: usize,
) -> Result<Vec<Vec<f64>>, TableError> {
    let st = view.table();
    if view.weights().is_none() && threads > 1 {
        let per_run: Vec<Result<Vec<Vec<u64>>, TableError>> =
            exec::parallel_map(threads, runs.to_vec(), |run| {
                let data = st.segment_data(run.shard)?;
                Ok(free_cols
                    .iter()
                    .map(|&c| pass1_unit_counts_run(view, &run, &data, c, st.cardinality(c)))
                    .collect())
            });
        // Transpose to per-column partial lists (run order preserved).
        let mut col_parts: Vec<Vec<Vec<u64>>> = (0..free_cols.len())
            .map(|_| Vec::with_capacity(runs.len()))
            .collect();
        for run_out in per_run {
            for (fi, counts) in run_out?.into_iter().enumerate() {
                col_parts[fi].push(counts);
            }
        }
        return Ok(col_parts
            .into_iter()
            .map(|parts| {
                let merged = exec::reduce_pairwise(parts, |a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                });
                merged.into_iter().map(|c| c as f64).collect()
            })
            .collect());
    }

    let mut accs: Vec<(usize, Vec<f64>)> = free_cols
        .iter()
        .enumerate()
        .map(|(fi, &c)| (fi, vec![0.0f64; st.cardinality(c)]))
        .collect();
    for run in runs {
        let data = st.segment_data(run.shard)?;
        accs = exec::parallel_map(threads, accs, |(fi, mut counts)| {
            pass1_count_run(view, run, &data, free_cols[fi], &mut counts);
            (fi, counts)
        });
    }
    Ok(accs.into_iter().map(|(_, c)| c).collect())
}

/// Pass-1 marginal sweep: one shared `f64` accumulator per column, runs in
/// order (columns in parallel) — det-order: the monolithic operation order
/// exactly, one run at a time.
/// Raw shards swap the accumulator and the weight table into local code
/// space for the run (`lw[l] = wtab[remap[l]]` is a pure relabeling).
fn pass1_marginals_sharded(
    view: &ShardedView,
    runs: &[ShardRun],
    free_cols: &[usize],
    cands: &[Pass1Cands],
    covered_weight: &[f64],
    threads: usize,
) -> Result<Vec<Vec<f64>>, TableError> {
    let st = view.table();
    let mut accs: Vec<(usize, Vec<f64>)> = free_cols
        .iter()
        .enumerate()
        .map(|(fi, &c)| (fi, vec![0.0f64; st.cardinality(c)]))
        .collect();
    for run in runs {
        let data = st.segment_data(run.shard)?;
        accs = exec::parallel_map(threads, accs, |(fi, mut marginals)| {
            let wtab = &cands[fi].wtab;
            match &data {
                SegmentData::Decoded(seg) => {
                    let codes = seg.col(free_cols[fi]);
                    for pos in run.positions.clone() {
                        let code = codes[seg.local(view.row_at(pos))] as usize;
                        let w = wtab[code];
                        marginals[code] += view.weight_at(pos) * (w - w.min(covered_weight[pos]));
                    }
                }
                SegmentData::Raw(raw) => {
                    let rc = raw.col(free_cols[fi]);
                    let start = raw.span().start;
                    let codes = rc.codes();
                    let remap = rc.remap();
                    let mut lacc: Vec<f64> = remap.iter().map(|&g| marginals[g as usize]).collect();
                    let lw: Vec<f64> = remap.iter().map(|&g| wtab[g as usize]).collect();
                    for pos in run.positions.clone() {
                        let local = view.row_at(pos) as usize - start;
                        let code = codes.at(local) as usize;
                        let w = lw[code];
                        lacc[code] += view.weight_at(pos) * (w - w.min(covered_weight[pos]));
                    }
                    for (l, &g) in remap.iter().enumerate() {
                        marginals[g as usize] = lacc[l];
                    }
                }
            }
            (fi, marginals)
        });
    }
    Ok(accs.into_iter().map(|(_, m)| m).collect())
}

/// One pass-j group's accumulator, threaded through the shard runs.
enum GroupAcc {
    Dense {
        counts: Vec<f64>,
        marginals: Vec<f64>,
        wvec: Vec<f64>,
    },
    Sparse {
        acc: Vec<(f64, f64)>,
    },
}

/// Counts one level's candidate groups over the sharded view, writing
/// per-candidate stats into `scratch.cstats`. Groups run in parallel; each
/// group's accumulator sees the runs sequentially in order, so the float
/// operation order matches the monolithic [`crate::kernel`] `count_level`.
/// Raw shards premultiply each group column's `remap` by its stride
/// (`lcell[l] = remap[l] * stride`, integers), so dense cell indices — and
/// hence the accumulation sequence — are identical to the decoded scan's.
fn count_level_sharded(
    view: &ShardedView,
    runs: &[ShardRun],
    scratch: &mut SearchScratch,
    cand_weights: &[f64],
    covered_weight: &[f64],
    threads: usize,
) -> Result<(), TableError> {
    let st = view.table();
    let groups: &Vec<Group> = &scratch.groups;
    let mut accs: Vec<(usize, GroupAcc)> = groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let acc = if g.is_dense() {
                let mut wvec = vec![0.0f64; g.cells];
                for &(cell, ci) in &g.cand_cells {
                    wvec[cell] = cand_weights[ci as usize];
                }
                GroupAcc::Dense {
                    counts: vec![0.0; g.cells],
                    marginals: vec![0.0; g.cells],
                    wvec,
                }
            } else {
                GroupAcc::Sparse {
                    acc: vec![(0.0, 0.0); g.order.len()],
                }
            };
            (gi, acc)
        })
        .collect();

    for run in runs {
        let data = st.segment_data(run.shard)?;
        accs = exec::parallel_map(threads, accs, |(gi, mut acc)| {
            let g = &groups[gi];
            count_group_run(view, run, &data, g, &mut acc, cand_weights, covered_weight);
            (gi, acc)
        });
    }

    let cstats = &mut scratch.cstats;
    cstats.clear();
    cstats.extend(cand_weights.iter().map(|&w| CandStat {
        count: 0.0,
        marginal: 0.0,
        weight: w,
    }));
    for (gi, acc) in accs {
        let g = &groups[gi];
        match acc {
            GroupAcc::Dense {
                counts, marginals, ..
            } => {
                for &(cell, ci) in &g.cand_cells {
                    let s = &mut cstats[ci as usize];
                    s.count = counts[cell];
                    s.marginal = marginals[cell];
                }
            }
            GroupAcc::Sparse { acc } => {
                for (&ci, (c, m)) in g.order.iter().zip(acc) {
                    let s = &mut cstats[ci as usize];
                    s.count = c;
                    s.marginal = m;
                }
            }
        }
    }
    Ok(())
}

/// One group × one run of the pass-j count, over either segment form.
fn count_group_run(
    view: &ShardedView,
    run: &ShardRun,
    data: &SegmentData,
    g: &Group,
    acc: &mut GroupAcc,
    cand_weights: &[f64],
    covered_weight: &[f64],
) {
    match acc {
        GroupAcc::Dense {
            counts,
            marginals,
            wvec,
        } => match data {
            SegmentData::Decoded(seg) => {
                for pos in run.positions.clone() {
                    let local = seg.local(view.row_at(pos));
                    let mut cell = 0usize;
                    for (&c, &stride) in g.cols.iter().zip(&g.strides) {
                        cell += seg.col(c)[local] as usize * stride;
                    }
                    let w_t = view.weight_at(pos);
                    let w = wvec[cell];
                    counts[cell] += w_t;
                    marginals[cell] += w_t * (w - w.min(covered_weight[pos]));
                }
            }
            SegmentData::Raw(raw) => {
                let start = raw.span().start;
                // Premultiplied per-column cell contributions in local code
                // space: cell = Σ remap[l] * stride, computed once per
                // (shard-local code) instead of once per row.
                let lcells: Vec<Vec<usize>> = g
                    .cols
                    .iter()
                    .zip(&g.strides)
                    .map(|(&c, &stride)| {
                        raw.col(c)
                            .remap()
                            .iter()
                            .map(|&gcode| gcode as usize * stride)
                            .collect()
                    })
                    .collect();
                let lcodes: Vec<&LocalCodes> = g.cols.iter().map(|&c| raw.col(c).codes()).collect();
                for pos in run.positions.clone() {
                    let local = view.row_at(pos) as usize - start;
                    let mut cell = 0usize;
                    for (lc, codes) in lcells.iter().zip(&lcodes) {
                        cell += lc[codes.at(local) as usize];
                    }
                    let w_t = view.weight_at(pos);
                    let w = wvec[cell];
                    counts[cell] += w_t;
                    marginals[cell] += w_t * (w - w.min(covered_weight[pos]));
                }
            }
        },
        GroupAcc::Sparse { acc } => {
            let mut wide: Vec<u32> = Vec::new();
            match data {
                SegmentData::Decoded(seg) => {
                    for pos in run.positions.clone() {
                        let local = seg.local(view.row_at(pos));
                        if let Some(p) = g.probe(&mut wide, |gc| seg.col(g.cols[gc])[local]) {
                            let w = cand_weights[g.order[p] as usize];
                            let w_t = view.weight_at(pos);
                            let slot = &mut acc[p];
                            slot.0 += w_t;
                            slot.1 += w_t * (w - w.min(covered_weight[pos]));
                        }
                    }
                }
                SegmentData::Raw(raw) => {
                    let start = raw.span().start;
                    let cols_raw: Vec<&RawColumn> = g.cols.iter().map(|&c| raw.col(c)).collect();
                    for pos in run.positions.clone() {
                        let local = view.row_at(pos) as usize - start;
                        if let Some(p) = g.probe(&mut wide, |gc| cols_raw[gc].global_at(local)) {
                            let w = cand_weights[g.order[p] as usize];
                            let w_t = view.weight_at(pos);
                            let slot = &mut acc[p];
                            slot.0 += w_t;
                            slot.1 += w_t * (w - w.min(covered_weight[pos]));
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Drill-downs
// ---------------------------------------------------------------------------

/// Rule drill-down over a sharded view — twin of [`crate::drill_down_with`].
pub fn drill_down_sharded(brs: &Brs<'_>, view: &ShardedView, base: &Rule, k: usize) -> BrsResult {
    let filtered = filter_to_rule_sharded(view, base);
    brs.run_sharded_with_base(&filtered, Some(base.clone()), k)
}

/// Star drill-down over a sharded view — twin of
/// [`crate::star_drill_down_with`].
///
/// # Panics
/// If `base` already instantiates `column`.
pub fn star_drill_down_sharded(
    brs: &Brs<'_>,
    view: &ShardedView,
    base: &Rule,
    column: usize,
    k: usize,
) -> BrsResult {
    assert!(
        base.is_star(column),
        "star drill-down requires a ? in the clicked column"
    );
    let filtered = filter_to_rule_sharded(view, base);
    let wrapped = RequireColumn::new(brs.weight_fn(), column);
    let inner = Brs::new(&wrapped).inherit_config(brs);
    inner.run_sharded_with_base(&filtered, Some(base.clone()), k)
}

/// The tail shared by the sharded BRS runner: display sort + scoring.
pub(crate) fn finish_sharded_brs(
    view: &ShardedView,
    weight: &dyn WeightFn,
    selection: Vec<Rule>,
    stats: SearchStats,
) -> BrsResult {
    let display = sort_by_weight_desc_sharded(view.table(), weight, &selection);
    let scored = score_list_sharded(view, weight, &display);
    BrsResult {
        rules: scored
            .rules
            .into_iter()
            .map(|rs| ScoredRule {
                rule: rs.rule,
                weight: rs.weight,
                count: rs.count,
                mcount: rs.mcount,
            })
            .collect(),
        selection_order: selection,
        total_score: scored.total,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{covered_rows, find_best_marginal_rule, SizeWeight};
    use sdd_table::{Schema, ShardConfig, Table, TableView};

    fn t() -> Table {
        let mut rows: Vec<[&str; 3]> = Vec::new();
        rows.extend(std::iter::repeat_n(["a", "x", "0"], 4));
        rows.extend(std::iter::repeat_n(["a", "y", "1"], 3));
        rows.extend(std::iter::repeat_n(["b", "x", "0"], 2));
        rows.push(["c", "z", "1"]);
        Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &rows).unwrap()
    }

    fn sharded(table: &Table, shards: usize) -> Arc<ShardedTable> {
        Arc::new(ShardedTable::from_table(table, &ShardConfig::in_memory(shards)).unwrap())
    }

    /// A spilling layout with a budget of 1: every scan runs against the
    /// raw (pushdown) path except the single resident shard.
    fn spilled(table: &Table, shards: usize) -> Arc<ShardedTable> {
        Arc::new(
            ShardedTable::from_table(
                table,
                &ShardConfig::spilling(shards, 1, std::env::temp_dir()),
            )
            .unwrap(),
        )
    }

    #[test]
    fn covered_rows_matches_monolithic_for_every_shard_count() {
        let table = t();
        for rule in [
            Rule::trivial(3),
            Rule::from_pairs(&table, &[("A", "a")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "a"), ("B", "x")]).unwrap(),
        ] {
            let expect = covered_rows(&table, &rule);
            for shards in 1..=5 {
                let st = sharded(&table, shards);
                assert_eq!(covered_rows_sharded(&st, &rule), expect, "{shards} shards");
            }
        }
    }

    #[test]
    fn pushdown_covered_rows_matches_monolithic_on_spilled_storage() {
        let table = t();
        for rule in [
            Rule::trivial(3),
            Rule::from_pairs(&table, &[("A", "a")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "a"), ("B", "x")]).unwrap(),
            // "c"/"z" occur only in the last row: every earlier shard takes
            // the remap-absence skip.
            Rule::from_pairs(&table, &[("A", "c")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "c"), ("B", "z")]).unwrap(),
        ] {
            let expect = covered_rows(&table, &rule);
            for shards in 1..=6 {
                let st = spilled(&table, shards);
                assert_eq!(
                    try_covered_rows_sharded(&st, &rule).unwrap(),
                    expect,
                    "{shards} spilled shards"
                );
                if shards > 1 && rule.instantiated_columns().next().is_some() {
                    assert!(st.loads() > 0, "spilled scan must read spill files");
                }
            }
        }
    }

    #[test]
    fn covered_rows_range_matches_filtered_full_scan() {
        let table = t();
        let n = table.n_rows();
        for rule in [
            Rule::trivial(3),
            Rule::from_pairs(&table, &[("A", "a")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "c"), ("B", "z")]).unwrap(),
        ] {
            let full = covered_rows(&table, &rule);
            for shards in [1, 3, 5] {
                for st in [sharded(&table, shards), spilled(&table, shards)] {
                    // Every (lo, hi) window — boundary and interior alike.
                    for lo in 0..=n {
                        for hi in lo..=n {
                            let want: Vec<RowId> = full
                                .iter()
                                .copied()
                                .filter(|&r| (lo as RowId..hi as RowId).contains(&r))
                                .collect();
                            let got = try_covered_rows_sharded_range(&st, &rule, lo..hi).unwrap();
                            assert_eq!(got, want, "rule {rule:?} range {lo}..{hi}");
                        }
                    }
                    // Out-of-bounds ranges clamp instead of panicking.
                    assert_eq!(
                        try_covered_rows_sharded_range(&st, &rule, 0..n + 7).unwrap(),
                        full
                    );
                    assert!(try_covered_rows_sharded_range(&st, &rule, n + 1..n + 5)
                        .unwrap()
                        .is_empty());
                }
            }
        }
    }

    #[test]
    fn covered_positions_on_subset_views() {
        let table = t();
        let st = sharded(&table, 3);
        let view = ShardedView::with_rows(st, vec![9, 0, 4, 8, 1]);
        let rule = Rule::from_pairs(&table, &[("A", "a")]).unwrap();
        // Rows 0 (a), 4 (a), 1 (a) are covered → positions 1, 2, 4.
        assert_eq!(covered_positions_sharded(&view, &rule), vec![1, 2, 4]);
    }

    #[test]
    fn covered_positions_on_subset_views_spilled() {
        let table = t();
        let st = spilled(&table, 3);
        let view = ShardedView::with_rows(st, vec![9, 0, 4, 8, 1]);
        let rule = Rule::from_pairs(&table, &[("A", "a")]).unwrap();
        assert_eq!(
            try_covered_positions_sharded(&view, &rule).unwrap(),
            vec![1, 2, 4]
        );
    }

    #[test]
    fn search_matches_monolithic_bitwise() {
        let table = t();
        let view = table.view();
        let cov: Vec<f64> = (0..view.len()).map(|i| (i % 3) as f64 * 0.7).collect();
        let mut opts = SearchOptions::new(2.0);
        opts.parallel = false;
        let mono = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts).unwrap();
        for shards in 1..=6 {
            let st = sharded(&table, shards);
            let sv = ShardedView::all(st);
            let mut scratch = SearchScratch::new();
            let got = find_best_marginal_rule_sharded(&sv, &SizeWeight, &cov, &opts, &mut scratch)
                .unwrap();
            assert_eq!(got.rule, mono.rule, "{shards} shards");
            assert_eq!(
                got.marginal_value.to_bits(),
                mono.marginal_value.to_bits(),
                "{shards} shards"
            );
            assert_eq!(got.count.to_bits(), mono.count.to_bits());
            assert_eq!(got.stats, mono.stats, "work counters must match too");
        }
    }

    #[test]
    fn pushdown_search_matches_monolithic_bitwise_on_spilled_storage() {
        let table = t();
        let view = table.view();
        let cov: Vec<f64> = (0..view.len()).map(|i| (i % 3) as f64 * 0.7).collect();
        let mut opts = SearchOptions::new(2.0);
        opts.parallel = false;
        let mono = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts).unwrap();
        for shards in 1..=6 {
            let st = spilled(&table, shards);
            let sv = ShardedView::all(st);
            let mut scratch = SearchScratch::new();
            let got =
                try_find_best_marginal_rule_sharded(&sv, &SizeWeight, &cov, &opts, &mut scratch)
                    .unwrap()
                    .unwrap();
            assert_eq!(got.rule, mono.rule, "{shards} spilled shards");
            assert_eq!(got.marginal_value.to_bits(), mono.marginal_value.to_bits());
            assert_eq!(got.count.to_bits(), mono.count.to_bits());
            assert_eq!(got.stats, mono.stats);
        }
    }

    #[test]
    fn pushdown_weighted_subset_search_matches_monolithic_bitwise() {
        let table = t();
        let rows: Vec<RowId> = vec![0, 2, 3, 5, 6, 7, 9];
        let weights: Vec<f64> = rows.iter().map(|&r| 0.25 + r as f64 * 0.5).collect();
        let cov: Vec<f64> = rows.iter().map(|&r| (r % 4) as f64 * 0.3).collect();
        let mview = TableView::with_rows_and_weights(&table, rows.clone(), weights.clone());
        let mut opts = SearchOptions::new(4.0);
        opts.parallel = false;
        let mono = find_best_marginal_rule(&mview, &SizeWeight, &cov, &opts).unwrap();
        for shards in [2, 3, 5] {
            let st = spilled(&table, shards);
            let sv = ShardedView::with_rows_and_weights(st, rows.clone(), weights.clone());
            let mut scratch = SearchScratch::new();
            let got =
                try_find_best_marginal_rule_sharded(&sv, &SizeWeight, &cov, &opts, &mut scratch)
                    .unwrap()
                    .unwrap();
            assert_eq!(got.rule, mono.rule, "{shards} spilled shards");
            assert_eq!(got.marginal_value.to_bits(), mono.marginal_value.to_bits());
            assert_eq!(got.count.to_bits(), mono.count.to_bits());
        }
    }

    #[test]
    fn brs_matches_monolithic_bitwise() {
        let table = t();
        let mono = Brs::new(&SizeWeight)
            .with_max_weight(2.0)
            .run(&table.view(), 3);
        for shards in [1, 2, 4, 7] {
            let st = sharded(&table, shards);
            let got = Brs::new(&SizeWeight)
                .with_max_weight(2.0)
                .with_parallel(false)
                .run_sharded(&ShardedView::all(st), 3);
            assert_eq!(got.rules_only(), mono.rules_only(), "{shards} shards");
            assert_eq!(got.total_score.to_bits(), mono.total_score.to_bits());
            for (a, b) in got.rules.iter().zip(&mono.rules) {
                assert_eq!(a.count.to_bits(), b.count.to_bits());
                assert_eq!(a.mcount.to_bits(), b.mcount.to_bits());
            }
        }
    }

    #[test]
    fn brs_matches_monolithic_bitwise_on_spilled_storage() {
        let table = t();
        let mono = Brs::new(&SizeWeight)
            .with_max_weight(2.0)
            .run(&table.view(), 3);
        for shards in [2, 4, 7] {
            let st = spilled(&table, shards);
            let got = Brs::new(&SizeWeight)
                .with_max_weight(2.0)
                .with_parallel(false)
                .run_sharded(&ShardedView::all(st), 3);
            assert_eq!(
                got.rules_only(),
                mono.rules_only(),
                "{shards} spilled shards"
            );
            assert_eq!(got.total_score.to_bits(), mono.total_score.to_bits());
            for (a, b) in got.rules.iter().zip(&mono.rules) {
                assert_eq!(a.count.to_bits(), b.count.to_bits());
                assert_eq!(a.mcount.to_bits(), b.mcount.to_bits());
            }
        }
    }

    #[test]
    fn drill_down_filters_to_base() {
        let table = t();
        let st = sharded(&table, 4);
        let base = Rule::from_pairs(&table, &[("A", "a")]).unwrap();
        let mono = crate::drill_down(&table.view(), &SizeWeight, &base, 2);
        let got = drill_down_sharded(
            &Brs::new(&SizeWeight).with_parallel(false),
            &ShardedView::all(st),
            &base,
            2,
        );
        assert_eq!(got.rules_only(), mono.rules_only());
    }

    #[test]
    fn count_rules_matches_refresh_semantics() {
        let table = t();
        for st in [sharded(&table, 3), spilled(&table, 3)] {
            let rules = vec![
                Rule::trivial(3),
                Rule::from_pairs(&table, &[("A", "a")]).unwrap(),
                Rule::from_pairs(&table, &[("B", "x")]).unwrap(),
                Rule::from_pairs(&table, &[("A", "c"), ("B", "z")]).unwrap(),
            ];
            let counts = try_count_rules_sharded(&st, &rules).unwrap();
            for (rule, &count) in rules.iter().zip(&counts) {
                assert_eq!(count, crate::rule_count(&table.view(), rule), "{rule:?}");
            }
        }
    }

    #[test]
    fn corrupt_spill_surfaces_through_try_variants() {
        let table = t();
        let st = spilled(&table, 3);
        let rule = Rule::from_pairs(&table, &[("A", "a")]).unwrap();
        let path = st.spill_path(0).unwrap().to_path_buf();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            try_covered_rows_sharded(&st, &rule),
            Err(TableError::Corrupt(_))
        ));
        assert!(try_count_rules_sharded(&st, std::slice::from_ref(&rule)).is_err());
        let sv = ShardedView::all(st.clone());
        let mut scratch = SearchScratch::new();
        let mut opts = SearchOptions::new(2.0);
        opts.parallel = false;
        let cov = vec![0.0; sv.len()];
        assert!(
            try_find_best_marginal_rule_sharded(&sv, &SizeWeight, &cov, &opts, &mut scratch)
                .is_err()
        );
        // Restore: scans recover (errors are not sticky).
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            try_covered_rows_sharded(&st, &rule).unwrap(),
            covered_rows(&table, &rule)
        );
    }
}
