//! Sharded compute: the drill-down hot paths over [`ShardedTable`] /
//! [`ShardedView`] storage (see `sdd_table::shard` for the substrate).
//!
//! Every function here is a **bit-compatible twin** of its monolithic
//! counterpart. The contract rests on two facts:
//!
//! 1. the shard layout partitions the row range in order, so iterating
//!    shards in index order visits rows (or view positions) in exactly the
//!    monolithic order;
//! 2. every float accumulator is updated **shard-after-shard into one
//!    shared accumulator** — the same operation sequence the monolithic
//!    scan performs — while parallelism comes from *disjoint* accumulators
//!    (one per column or candidate group, threaded through the shard loop
//!    by [`crate::exec::parallel_map`], which returns them in job order).
//!    Integer quantities additionally fan out per (column × shard) with
//!    private `u64` partials merged by the chunk-ordered
//!    [`crate::exec::reduce_pairwise`] — associative, hence still exact.
//!
//! Consequently the sharded search, BRS, coverage scans, and scoring are
//! **bit-identical to the monolithic path for any shard count and any
//! resident budget** — eviction and spill reload only change when bytes
//! are in memory, never which bytes. The same holds for *how the storage
//! was built* (`ShardedTable::from_table` vs the streaming
//! `ShardBuilder`) and for the *eviction policy* (`Residency::Lru` vs
//! `Sweep`): a stream-built table holds byte-identical segments and the
//! policy only reorders spill traffic. Segment `Arc`s these scans hold
//! in flight are **pinned** in the residency cache (they count against
//! the budget rather than escaping it), which throttles memory, never
//! results. `tests/shard_parity.rs` asserts all of this end to end
//! (search winners, sample stores, server transcripts) across shard
//! counts 1..=8 × both builds, including budgets that force spill.

use crate::brs::{Brs, BrsResult, ScoredRule};
use crate::exec;
use crate::kernel::{
    build_groups, generate_level, level_blocks, pass1_candidates, pick_winner, CandStat, Group,
    Pass1Cands, SearchScratch,
};
use crate::marginal::{BestMarginal, SearchOptions, SearchStats};
use crate::score::ListScore;
use crate::weight::RequireColumn;
use crate::{Rule, WeightFn};
use rustc_hash::FxHashMap;
use sdd_table::{RowId, ShardRun, ShardedTable, ShardedView};

/// All row ids of `table` covered by `rule` (ascending) — the sharded twin
/// of [`crate::covered_rows`]: shards are filtered in index order and the
/// per-shard hit lists concatenate, so the output is byte-identical to the
/// monolithic scan on any shard count.
pub fn covered_rows_sharded(table: &ShardedTable, rule: &Rule) -> Vec<RowId> {
    let cols: Vec<usize> = rule.instantiated_columns().collect();
    let n = table.n_rows();
    if cols.is_empty() {
        return (0..n as RowId).collect();
    }
    let mut out: Vec<RowId> = Vec::new();
    for i in 0..table.n_shards() {
        let seg = table.segment(i);
        let start = seg.span().start as RowId;
        let (&first, rest) = cols.split_first().expect("non-empty");
        let want = rule.code(first);
        let mut rows: Vec<RowId> = Vec::new();
        for (j, &code) in seg.col(first).iter().enumerate() {
            if code == want {
                rows.push(start + j as RowId);
            }
        }
        for &c in rest {
            let codes = seg.col(c);
            let want = rule.code(c);
            rows.retain(|&r| codes[(r - start) as usize] == want);
        }
        out.extend(rows);
    }
    out
}

/// View positions (ascending) whose rows are covered by `rule` — the
/// sharded twin of [`crate::covered_positions`]. Byte-identical output.
pub fn covered_positions_sharded(view: &ShardedView, rule: &Rule) -> Vec<u32> {
    let cols: Vec<usize> = rule.instantiated_columns().collect();
    if cols.is_empty() {
        return (0..view.len() as u32).collect();
    }
    let st = view.table();
    let mut out: Vec<u32> = Vec::new();
    for run in view.shard_runs() {
        let seg = st.segment(run.shard);
        for pos in run.positions.clone() {
            let local = seg.local(view.row_at(pos));
            if cols.iter().all(|&c| seg.col(c)[local] == rule.code(c)) {
                out.push(pos as u32);
            }
        }
    }
    out
}

/// Filters `view` to the positions covered by `base` — the sharded twin of
/// [`crate::filter_to_rule`]. Row order and weights are preserved.
pub fn filter_to_rule_sharded(view: &ShardedView, base: &Rule) -> ShardedView {
    let positions = covered_positions_sharded(view, base);
    let rows: Vec<RowId> = positions.iter().map(|&p| view.row_at(p as usize)).collect();
    match view.weights() {
        Some(_) => {
            let weights: Vec<f64> = positions
                .iter()
                .map(|&p| view.weight_at(p as usize))
                .collect();
            ShardedView::with_rows_and_weights(view.table().clone(), rows, weights)
        }
        None => ShardedView::with_rows(view.table().clone(), rows),
    }
}

/// Exact counts of every rule in one pass over the sharded table — the scan
/// behind the explorer's sharded `refresh`. Counts are unit additions in
/// row order, identical to the monolithic single-pass refresh.
pub fn count_rules_sharded(table: &ShardedTable, rules: &[Rule]) -> Vec<f64> {
    let mut counts = vec![0.0f64; rules.len()];
    let n_cols = table.n_columns();
    let mut codes: Vec<u32> = Vec::with_capacity(n_cols);
    for i in 0..table.n_shards() {
        let seg = table.segment(i);
        for local in 0..seg.span().len() {
            codes.clear();
            codes.extend((0..n_cols).map(|c| seg.col(c)[local]));
            for (ri, rule) in rules.iter().enumerate() {
                if rule.covers_codes(&codes) {
                    counts[ri] += 1.0;
                }
            }
        }
    }
    counts
}

/// The (weighted) `Count` of one rule over a sharded view — twin of
/// [`crate::rule_count`].
pub fn rule_count_sharded(view: &ShardedView, rule: &Rule) -> f64 {
    covered_positions_sharded(view, rule)
        .into_iter()
        .map(|p| view.weight_at(p as usize))
        .sum()
}

/// Sorts rules in descending weight order — twin of
/// [`crate::sort_by_weight_desc`]; weights come from the always-resident
/// header (same dictionaries and cardinalities as the monolithic table).
pub fn sort_by_weight_desc_sharded(
    table: &ShardedTable,
    weight: &dyn WeightFn,
    rules: &[Rule],
) -> Vec<Rule> {
    let header = table.header();
    let mut keyed: Vec<(f64, &Rule)> = rules
        .iter()
        .map(|r| (weight.weight(r, header), r))
        .collect();
    keyed.sort_by(|(wa, ra), (wb, rb)| {
        wb.partial_cmp(wa)
            .expect("weights must be finite")
            .then_with(|| ra.codes().cmp(rb.codes()))
    });
    keyed.into_iter().map(|(_, r)| r.clone()).collect()
}

/// Scores `rules` in the given order against a sharded view — twin of
/// [`crate::score_list`]: positions are visited in order (shard runs
/// partition them in order), so every accumulator receives the same
/// additions in the same order as the monolithic scan.
pub fn score_list_sharded(view: &ShardedView, weight: &dyn WeightFn, rules: &[Rule]) -> ListScore {
    let st = view.table();
    let header = st.header();
    let weights: Vec<f64> = rules.iter().map(|r| weight.weight(r, header)).collect();
    let mut counts = vec![0.0f64; rules.len()];
    let mut mcounts = vec![0.0f64; rules.len()];
    let mut uncovered = 0.0f64;

    let n_cols = st.n_columns();
    let mut codes: Vec<u32> = Vec::with_capacity(n_cols);
    for run in view.shard_runs() {
        let seg = st.segment(run.shard);
        for pos in run.positions.clone() {
            let local = seg.local(view.row_at(pos));
            codes.clear();
            codes.extend((0..n_cols).map(|c| seg.col(c)[local]));
            let w = view.weight_at(pos);
            let mut assigned = false;
            for (i, rule) in rules.iter().enumerate() {
                if rule.covers_codes(&codes) {
                    counts[i] += w;
                    if !assigned {
                        mcounts[i] += w;
                        assigned = true;
                    }
                }
            }
            if !assigned {
                uncovered += w;
            }
        }
    }

    let total = weights.iter().zip(&mcounts).map(|(w, m)| w * m).sum();
    let rules = rules
        .iter()
        .zip(weights)
        .zip(counts.iter().zip(&mcounts))
        .map(
            |((rule, weight), (&count, &mcount))| crate::score::RuleScore {
                rule: rule.clone(),
                weight,
                count,
                mcount,
            },
        )
        .collect();
    ListScore {
        rules,
        total,
        uncovered,
    }
}

/// Runs Algorithm 2 over a sharded view — the per-shard counting kernel.
///
/// Candidate generation, pruning, group layout, and winner selection are
/// the exact code the monolithic kernel runs
/// ([`crate::kernel`] shares them); only the row scans differ, and those
/// follow the determinism contract in the module docs — so the result is
/// bit-identical to [`crate::find_best_marginal_rule`] on the equivalent
/// monolithic view, for any shard count, resident budget, and thread count.
pub fn find_best_marginal_rule_sharded(
    view: &ShardedView,
    weight: &dyn WeightFn,
    covered_weight: &[f64],
    opts: &SearchOptions,
    scratch: &mut SearchScratch,
) -> Option<BestMarginal> {
    assert_eq!(
        covered_weight.len(),
        view.len(),
        "covered_weight must align with view"
    );
    let st = view.table();
    let header = st.header();
    let n_cols = st.n_columns();
    let base = opts.base.clone().unwrap_or_else(|| Rule::trivial(n_cols));
    let free_cols: Vec<usize> = (0..n_cols).filter(|&c| base.is_star(c)).collect();
    let max_size = opts
        .max_rule_size
        .unwrap_or(free_cols.len())
        .min(free_cols.len());
    if max_size == 0 || view.is_empty() {
        return None;
    }

    let runs = view.shard_runs();
    let threads = if cfg!(feature = "parallel")
        && opts.parallel
        && view.len() >= opts.parallel_min_rows.max(1)
    {
        exec::worker_threads()
    } else {
        1
    };

    let mut stats = SearchStats::default();
    let mut counted: FxHashMap<Rule, CandStat> = FxHashMap::default();
    let mut best_h = 0.0f64;

    // ---- Pass 1: per-shard columnar counting. ----
    stats.passes = 1;
    let col_counts = pass1_counts_sharded(view, &runs, &free_cols, threads);
    let cands: Vec<Pass1Cands> = free_cols
        .iter()
        .enumerate()
        .map(|(fi, &c)| pass1_candidates(header, &base, c, &col_counts[fi], weight, opts))
        .collect();
    let col_marginals =
        pass1_marginals_sharded(view, &runs, &free_cols, &cands, covered_weight, threads);

    let mut level: Vec<Rule> = Vec::new();
    for (fi, cand) in cands.iter().enumerate() {
        stats.generated += cand.generated;
        stats.pruned += cand.pruned;
        stats.counted += cand.rules.len();
        let c = free_cols[fi];
        for rule in &cand.rules {
            let code = rule.code(c) as usize;
            let stat = CandStat {
                count: col_counts[fi][code],
                marginal: col_marginals[fi][code],
                weight: cand.wtab[code],
            };
            counted.insert(rule.clone(), stat);
            if stat.marginal > best_h {
                best_h = stat.marginal;
            }
        }
        level.extend(cand.rules.iter().cloned());
    }

    // ---- Passes 2..: shared a-priori generation, per-shard counting. ----
    let blocks = level_blocks(&level, &base);
    let mut current = level;
    for _pass in 2..=max_size {
        let (next, cand_weights) = generate_level(
            header, &base, &blocks, &current, &counted, weight, opts, best_h, &mut stats,
        );
        if next.is_empty() {
            break;
        }
        stats.passes += 1;
        stats.counted += next.len();

        build_groups(scratch, header, &base, &next, view.len());
        count_level_sharded(view, &runs, scratch, &cand_weights, covered_weight, threads);

        for (cand, stat) in next.iter().zip(&scratch.cstats) {
            if stat.marginal > best_h {
                best_h = stat.marginal;
            }
            counted.insert(cand.clone(), *stat);
        }
        current = next;
    }

    pick_winner(&counted, stats)
}

/// Pass-1 counts per free column.
///
/// Unit-weight views fan out **one task per shard run** — the task fetches
/// its segment exactly once and counts every free column over it — with
/// private `u64` partials, merged per column in run order by
/// [`exec::reduce_pairwise`]: integer addition is associative, so this is
/// exact and identical to the serial sweep, and at most `threads` segments
/// are pinned at a time. Weighted views thread one `f64` accumulator per
/// column through the runs in order (columns in parallel, runs
/// sequential), reproducing the monolithic float operation order.
fn pass1_counts_sharded(
    view: &ShardedView,
    runs: &[ShardRun],
    free_cols: &[usize],
    threads: usize,
) -> Vec<Vec<f64>> {
    let st = view.table();
    if view.weights().is_none() && threads > 1 {
        let per_run: Vec<Vec<Vec<u64>>> = exec::parallel_map(threads, runs.to_vec(), |run| {
            let seg = st.segment(run.shard);
            free_cols
                .iter()
                .map(|&c| {
                    let codes = seg.col(c);
                    let mut counts = vec![0u64; st.cardinality(c)];
                    for pos in run.positions.clone() {
                        counts[codes[seg.local(view.row_at(pos))] as usize] += 1;
                    }
                    counts
                })
                .collect()
        });
        // Transpose to per-column partial lists (run order preserved).
        let mut col_parts: Vec<Vec<Vec<u64>>> = (0..free_cols.len())
            .map(|_| Vec::with_capacity(runs.len()))
            .collect();
        for run_out in per_run {
            for (fi, counts) in run_out.into_iter().enumerate() {
                col_parts[fi].push(counts);
            }
        }
        return col_parts
            .into_iter()
            .map(|parts| {
                let merged = exec::reduce_pairwise(parts, |a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                });
                merged.into_iter().map(|c| c as f64).collect()
            })
            .collect();
    }

    let mut accs: Vec<(usize, Vec<f64>)> = free_cols
        .iter()
        .enumerate()
        .map(|(fi, &c)| (fi, vec![0.0f64; st.cardinality(c)]))
        .collect();
    for run in runs {
        let seg = st.segment(run.shard);
        accs = exec::parallel_map(threads, accs, |(fi, mut counts)| {
            let codes = seg.col(free_cols[fi]);
            for pos in run.positions.clone() {
                counts[codes[seg.local(view.row_at(pos))] as usize] += view.weight_at(pos);
            }
            (fi, counts)
        });
    }
    accs.into_iter().map(|(_, c)| c).collect()
}

/// Pass-1 marginal sweep: one shared `f64` accumulator per column, runs in
/// order (columns in parallel) — the monolithic operation order exactly.
fn pass1_marginals_sharded(
    view: &ShardedView,
    runs: &[ShardRun],
    free_cols: &[usize],
    cands: &[Pass1Cands],
    covered_weight: &[f64],
    threads: usize,
) -> Vec<Vec<f64>> {
    let st = view.table();
    let mut accs: Vec<(usize, Vec<f64>)> = free_cols
        .iter()
        .enumerate()
        .map(|(fi, &c)| (fi, vec![0.0f64; st.cardinality(c)]))
        .collect();
    for run in runs {
        let seg = st.segment(run.shard);
        accs = exec::parallel_map(threads, accs, |(fi, mut marginals)| {
            let codes = seg.col(free_cols[fi]);
            let wtab = &cands[fi].wtab;
            for pos in run.positions.clone() {
                let code = codes[seg.local(view.row_at(pos))] as usize;
                let w = wtab[code];
                marginals[code] += view.weight_at(pos) * (w - w.min(covered_weight[pos]));
            }
            (fi, marginals)
        });
    }
    accs.into_iter().map(|(_, m)| m).collect()
}

/// One pass-j group's accumulator, threaded through the shard runs.
enum GroupAcc {
    Dense {
        counts: Vec<f64>,
        marginals: Vec<f64>,
        wvec: Vec<f64>,
    },
    Sparse {
        acc: Vec<(f64, f64)>,
    },
}

/// Counts one level's candidate groups over the sharded view, writing
/// per-candidate stats into `scratch.cstats`. Groups run in parallel; each
/// group's accumulator sees the runs sequentially in order, so the float
/// operation order matches the monolithic [`crate::kernel`] `count_level`.
fn count_level_sharded(
    view: &ShardedView,
    runs: &[ShardRun],
    scratch: &mut SearchScratch,
    cand_weights: &[f64],
    covered_weight: &[f64],
    threads: usize,
) {
    let st = view.table();
    let groups: &Vec<Group> = &scratch.groups;
    let mut accs: Vec<(usize, GroupAcc)> = groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let acc = if g.is_dense() {
                let mut wvec = vec![0.0f64; g.cells];
                for &(cell, ci) in &g.cand_cells {
                    wvec[cell] = cand_weights[ci as usize];
                }
                GroupAcc::Dense {
                    counts: vec![0.0; g.cells],
                    marginals: vec![0.0; g.cells],
                    wvec,
                }
            } else {
                GroupAcc::Sparse {
                    acc: vec![(0.0, 0.0); g.order.len()],
                }
            };
            (gi, acc)
        })
        .collect();

    for run in runs {
        let seg = st.segment(run.shard);
        accs = exec::parallel_map(threads, accs, |(gi, mut acc)| {
            let g = &groups[gi];
            match &mut acc {
                GroupAcc::Dense {
                    counts,
                    marginals,
                    wvec,
                } => {
                    for pos in run.positions.clone() {
                        let local = seg.local(view.row_at(pos));
                        let mut cell = 0usize;
                        for (&c, &stride) in g.cols.iter().zip(&g.strides) {
                            cell += seg.col(c)[local] as usize * stride;
                        }
                        let w_t = view.weight_at(pos);
                        let w = wvec[cell];
                        counts[cell] += w_t;
                        marginals[cell] += w_t * (w - w.min(covered_weight[pos]));
                    }
                }
                GroupAcc::Sparse { acc } => {
                    let mut wide: Vec<u32> = Vec::new();
                    for pos in run.positions.clone() {
                        let local = seg.local(view.row_at(pos));
                        if let Some(p) = g.probe(&mut wide, |gc| seg.col(g.cols[gc])[local]) {
                            let w = cand_weights[g.order[p] as usize];
                            let w_t = view.weight_at(pos);
                            let slot = &mut acc[p];
                            slot.0 += w_t;
                            slot.1 += w_t * (w - w.min(covered_weight[pos]));
                        }
                    }
                }
            }
            (gi, acc)
        });
    }

    let cstats = &mut scratch.cstats;
    cstats.clear();
    cstats.extend(cand_weights.iter().map(|&w| CandStat {
        count: 0.0,
        marginal: 0.0,
        weight: w,
    }));
    for (gi, acc) in accs {
        let g = &groups[gi];
        match acc {
            GroupAcc::Dense {
                counts, marginals, ..
            } => {
                for &(cell, ci) in &g.cand_cells {
                    let s = &mut cstats[ci as usize];
                    s.count = counts[cell];
                    s.marginal = marginals[cell];
                }
            }
            GroupAcc::Sparse { acc } => {
                for (&ci, (c, m)) in g.order.iter().zip(acc) {
                    let s = &mut cstats[ci as usize];
                    s.count = c;
                    s.marginal = m;
                }
            }
        }
    }
}

/// Rule drill-down over a sharded view — twin of [`crate::drill_down_with`].
pub fn drill_down_sharded(brs: &Brs<'_>, view: &ShardedView, base: &Rule, k: usize) -> BrsResult {
    let filtered = filter_to_rule_sharded(view, base);
    brs.run_sharded_with_base(&filtered, Some(base.clone()), k)
}

/// Star drill-down over a sharded view — twin of
/// [`crate::star_drill_down_with`].
///
/// # Panics
/// If `base` already instantiates `column`.
pub fn star_drill_down_sharded(
    brs: &Brs<'_>,
    view: &ShardedView,
    base: &Rule,
    column: usize,
    k: usize,
) -> BrsResult {
    assert!(
        base.is_star(column),
        "star drill-down requires a ? in the clicked column"
    );
    let filtered = filter_to_rule_sharded(view, base);
    let wrapped = RequireColumn::new(brs.weight_fn(), column);
    let inner = Brs::new(&wrapped).inherit_config(brs);
    inner.run_sharded_with_base(&filtered, Some(base.clone()), k)
}

/// The tail shared by the sharded BRS runner: display sort + scoring.
pub(crate) fn finish_sharded_brs(
    view: &ShardedView,
    weight: &dyn WeightFn,
    selection: Vec<Rule>,
    stats: SearchStats,
) -> BrsResult {
    let display = sort_by_weight_desc_sharded(view.table(), weight, &selection);
    let scored = score_list_sharded(view, weight, &display);
    BrsResult {
        rules: scored
            .rules
            .into_iter()
            .map(|rs| ScoredRule {
                rule: rs.rule,
                weight: rs.weight,
                count: rs.count,
                mcount: rs.mcount,
            })
            .collect(),
        selection_order: selection,
        total_score: scored.total,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{covered_rows, find_best_marginal_rule, SizeWeight};
    use sdd_table::{Schema, ShardConfig, Table};
    use std::sync::Arc;

    fn t() -> Table {
        let mut rows: Vec<[&str; 3]> = Vec::new();
        rows.extend(std::iter::repeat_n(["a", "x", "0"], 4));
        rows.extend(std::iter::repeat_n(["a", "y", "1"], 3));
        rows.extend(std::iter::repeat_n(["b", "x", "0"], 2));
        rows.push(["c", "z", "1"]);
        Table::from_rows(Schema::new(["A", "B", "C"]).unwrap(), &rows).unwrap()
    }

    fn sharded(table: &Table, shards: usize) -> Arc<ShardedTable> {
        Arc::new(ShardedTable::from_table(table, &ShardConfig::in_memory(shards)).unwrap())
    }

    #[test]
    fn covered_rows_matches_monolithic_for_every_shard_count() {
        let table = t();
        for rule in [
            Rule::trivial(3),
            Rule::from_pairs(&table, &[("A", "a")]).unwrap(),
            Rule::from_pairs(&table, &[("A", "a"), ("B", "x")]).unwrap(),
        ] {
            let expect = covered_rows(&table, &rule);
            for shards in 1..=5 {
                let st = sharded(&table, shards);
                assert_eq!(covered_rows_sharded(&st, &rule), expect, "{shards} shards");
            }
        }
    }

    #[test]
    fn covered_positions_on_subset_views() {
        let table = t();
        let st = sharded(&table, 3);
        let view = ShardedView::with_rows(st, vec![9, 0, 4, 8, 1]);
        let rule = Rule::from_pairs(&table, &[("A", "a")]).unwrap();
        // Rows 0 (a), 4 (a), 1 (a) are covered → positions 1, 2, 4.
        assert_eq!(covered_positions_sharded(&view, &rule), vec![1, 2, 4]);
    }

    #[test]
    fn search_matches_monolithic_bitwise() {
        let table = t();
        let view = table.view();
        let cov: Vec<f64> = (0..view.len()).map(|i| (i % 3) as f64 * 0.7).collect();
        let mut opts = SearchOptions::new(2.0);
        opts.parallel = false;
        let mono = find_best_marginal_rule(&view, &SizeWeight, &cov, &opts).unwrap();
        for shards in 1..=6 {
            let st = sharded(&table, shards);
            let sv = ShardedView::all(st);
            let mut scratch = SearchScratch::new();
            let got = find_best_marginal_rule_sharded(&sv, &SizeWeight, &cov, &opts, &mut scratch)
                .unwrap();
            assert_eq!(got.rule, mono.rule, "{shards} shards");
            assert_eq!(
                got.marginal_value.to_bits(),
                mono.marginal_value.to_bits(),
                "{shards} shards"
            );
            assert_eq!(got.count.to_bits(), mono.count.to_bits());
            assert_eq!(got.stats, mono.stats, "work counters must match too");
        }
    }

    #[test]
    fn brs_matches_monolithic_bitwise() {
        let table = t();
        let mono = Brs::new(&SizeWeight)
            .with_max_weight(2.0)
            .run(&table.view(), 3);
        for shards in [1, 2, 4, 7] {
            let st = sharded(&table, shards);
            let got = Brs::new(&SizeWeight)
                .with_max_weight(2.0)
                .with_parallel(false)
                .run_sharded(&ShardedView::all(st), 3);
            assert_eq!(got.rules_only(), mono.rules_only(), "{shards} shards");
            assert_eq!(got.total_score.to_bits(), mono.total_score.to_bits());
            for (a, b) in got.rules.iter().zip(&mono.rules) {
                assert_eq!(a.count.to_bits(), b.count.to_bits());
                assert_eq!(a.mcount.to_bits(), b.mcount.to_bits());
            }
        }
    }

    #[test]
    fn drill_down_filters_to_base() {
        let table = t();
        let st = sharded(&table, 4);
        let base = Rule::from_pairs(&table, &[("A", "a")]).unwrap();
        let mono = crate::drill_down(&table.view(), &SizeWeight, &base, 2);
        let got = drill_down_sharded(
            &Brs::new(&SizeWeight).with_parallel(false),
            &ShardedView::all(st),
            &base,
            2,
        );
        assert_eq!(got.rules_only(), mono.rules_only());
    }

    #[test]
    fn count_rules_matches_refresh_semantics() {
        let table = t();
        let st = sharded(&table, 3);
        let rules = vec![
            Rule::trivial(3),
            Rule::from_pairs(&table, &[("A", "a")]).unwrap(),
            Rule::from_pairs(&table, &[("B", "x")]).unwrap(),
        ];
        let counts = count_rules_sharded(&st, &rules);
        for (rule, &count) in rules.iter().zip(&counts) {
            assert_eq!(count, crate::rule_count(&table.view(), rule), "{rule:?}");
        }
    }
}
